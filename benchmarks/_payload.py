"""Shared helpers for benchmark JSON payloads and output paths.

Two concerns the bench scripts used to mishandle:

* **Baseline clobbering** — bare runs overwrote the committed
  ``BENCH_*.json`` files even when the box was noisy.  Scripts now write
  to a scratch path (``benchmarks/reports/<name>.latest.json``) unless
  ``--json`` is passed explicitly, which promotes the run to the
  committed baseline (or to the path given after the flag).
* **Provenance** — payloads record the python version and git commit, so
  a committed baseline says what produced it.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from typing import Any

_HERE = os.path.dirname(os.path.abspath(__file__))
REPORTS_DIR = os.path.join(_HERE, "reports")


def environment() -> dict[str, str]:
    """Provenance stamp: python version plus (when available) git commit."""
    env = {"python_version": platform.python_version()}
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_HERE,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if probe.returncode == 0 and probe.stdout.strip():
            env["commit"] = probe.stdout.strip()
    except OSError:
        pass
    return env


def resolve_json_path(argv: list[str], benchmark: str) -> tuple[str, bool]:
    """(output path, promoted?) for one bench invocation.

    Without ``--json`` the run lands in the scratch path; ``--json``
    promotes it to the committed ``BENCH_<benchmark>.json`` baseline, and
    ``--json PATH`` to an explicit path.
    """
    if "--json" not in argv:
        return os.path.join(REPORTS_DIR, f"{benchmark}.latest.json"), False
    index = argv.index("--json")
    if index + 1 < len(argv) and not argv[index + 1].startswith("-"):
        return os.path.normpath(argv[index + 1]), True
    return (
        os.path.normpath(os.path.join(_HERE, "..", f"BENCH_{benchmark}.json")),
        True,
    )


def write_payload(path: str, payload: dict[str, Any]) -> str:
    """Write ``payload`` (stamped with :func:`environment`) to ``path``."""
    stamped = dict(payload)
    stamped.setdefault("environment", environment())
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(stamped, handle, indent=2)
        handle.write("\n")
    return path
