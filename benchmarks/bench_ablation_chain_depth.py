"""A6 — ablation: pattern-chain depth vs read-path cost.

The paper composes design patterns ("several put together describe how to
translate a query against the g-tree into one against the database") but
never asks what composition costs.  This sweep stacks 1–4 patterns and
measures naive-reconstruction latency and plan size: each layer adds a
bounded number of algebra operators, so read cost grows roughly linearly
with chain depth — composition is affordable.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit_report
from repro.patterns import (
    AuditPattern,
    EncodingPattern,
    LookupPattern,
    MultivaluePattern,
    PatternChain,
    VersionedPattern,
)
from repro.relational import Database, DataType, TableSchema

SCHEMAS = {
    "screen": TableSchema.build(
        "screen",
        [
            ("record_id", DataType.INTEGER),
            ("checked", DataType.BOOLEAN),
            ("category", DataType.TEXT),
            ("tags", DataType.TEXT),
        ],
        primary_key=["record_id"],
    ),
}

N_ROWS = 300

#: Cumulative stacks: depth k uses the first k patterns.
_LAYERS = [
    lambda: MultivaluePattern("screen", "tags", "screen_tags"),
    lambda: LookupPattern({("screen", "category"): "category_codes"}),
    lambda: EncodingPattern({("screen", "checked"): {True: "Y", False: "N"}}),
    lambda: AuditPattern(),
]


def _chain(depth: int) -> PatternChain:
    return PatternChain(SCHEMAS, [factory() for factory in _LAYERS[:depth]])


def _rows():
    for record_id in range(1, N_ROWS + 1):
        yield {
            "record_id": record_id,
            "checked": record_id % 2 == 0,
            "category": ("Never", "Current", "Previous")[record_id % 3],
            "tags": "a;b" if record_id % 2 else None,
        }


def _populate(chain: PatternChain) -> Database:
    db = Database("bench")
    chain.deploy(db)
    for row in _rows():
        chain.write(db, "screen", row)
    return db


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_read_at_depth(benchmark, depth):
    chain = _chain(depth)
    db = _populate(chain)
    back = benchmark(lambda: chain.read_naive(db, "screen"))
    assert len(back) == N_ROWS


def test_a6_report(benchmark):
    def sweep():
        rows = []
        for depth in (1, 2, 3, 4):
            chain = _chain(depth)
            db = _populate(chain)
            plan = chain.plan_for("screen")
            plan_ops = sum(1 for _ in plan.walk())
            started = time.perf_counter()
            back = chain.read_naive(db, "screen")
            read_ms = (time.perf_counter() - started) * 1000
            assert len(back) == N_ROWS
            rows.append(
                {
                    "chain_depth": depth,
                    "patterns": " + ".join(p.name for p in chain.patterns),
                    "plan_operators": plan_ops,
                    "physical_tables": len(chain.physical_schemas),
                    "read_ms": round(read_ms, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Plan size grows with depth but stays small (composition is bounded).
    ops = [row["plan_operators"] for row in rows]
    assert ops == sorted(ops)
    assert ops[-1] < 40
    emit_report(
        "A6 / ablation — pattern-chain depth vs read-path cost",
        rows,
        notes="each pattern layer adds a bounded number of algebra "
        "operators; reconstruction stays lossless at every depth",
    )
