"""A4 — §6 future work: data cleaning in the classifier language.

"We want to extend the classifier language to allow data cleaning, since
analysts may also choose to discard data based on the needs of the
particular study."  The experiment runs Study 2 with two DISCARD rules —
a record-scoped protocol exclusion and a study-scoped unclassified-data
guard — and shows the quarantine accounting for every removed record,
with the compiled ETL cleaning identically.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis import build_study2
from repro.etl import compile_study
from repro.multiclass import CleaningRule
from repro.relational import Database


def _cleaned_study(world):
    study = build_study2(world, "ever")
    # Record-scoped rules speak each source's own g-tree vocabulary.
    for rule_source, condition in (
        ("cori_warehouse_feed", "packs_per_day >= 3"),
        ("endopro_clinic", "cigarettes_per_day >= 60"),
        ("medscribe_clinic", "packs_daily >= 3"),
    ):
        study.add_cleaning_rule(
            "Procedure",
            CleaningRule.of(
                f"heavy_smokers_excluded_{rule_source.split('_')[0]}",
                condition,
                reason="study protocol excludes very heavy smokers",
                source=rule_source,
            ),
        )
    study.add_cleaning_rule(
        "Procedure",
        CleaningRule.of(
            "unclassified_smoking",
            "ExSmoker_flag IS NULL",
            reason="smoking question unanswered; cannot place in cohort",
            scope="study",
        ),
    )
    return study


def test_a4_cleaning_cost(benchmark, world):
    study = _cleaned_study(world)
    result = benchmark(study.run)
    assert result.count("Procedure") < world.procedure_count


def test_a4_report(benchmark, world):
    def run_both():
        study = _cleaned_study(world)
        direct = study.run()
        workflow = compile_study(study, Database("wh"))
        outputs, _ = workflow.run()
        return study, direct, outputs, workflow

    study, direct, outputs, workflow = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    baseline = build_study2(world, "ever").run()
    kept = direct.count("Procedure")
    quarantined = len(direct.quarantine)
    assert kept + quarantined == baseline.count("Procedure")

    # The ETL pipeline cleans identically.
    key = lambda r: (r["source"], r["record_id"])
    assert sorted(outputs["Procedure__load"], key=key) == sorted(
        direct.rows("Procedure"), key=key
    )
    etl_quarantine = workflow.context["quarantine"]
    assert etl_quarantine.counts() == direct.quarantine.counts()

    rows = [
        {
            "measure": "procedures before cleaning",
            "count": baseline.count("Procedure"),
        },
        {"measure": "procedures kept", "count": kept},
    ]
    for rule_name, count in sorted(direct.quarantine.counts().items()):
        rule = next(
            r for rules in study.cleaning.values() for r in rules if r.name == rule_name
        )
        rows.append(
            {
                "measure": f"discarded by {rule_name} ({rule.scope})",
                "count": count,
            }
        )
    rows.append(
        {
            "measure": "ETL quarantine matches direct",
            "count": etl_quarantine.counts() == direct.quarantine.counts(),
        }
    )
    emit_report(
        "A4 / §6 — DISCARD WHEN data cleaning with quarantine accounting",
        rows,
        notes="every discarded record is quarantined with its rule and "
        "reason; kept + discarded = original",
    )
