"""A7 — classifier coverage linting over the real corpus.

Hypothesis 2 wants analysts to extract "only and all relevant data"; a
classifier with a coverage gap quietly drops records instead.  The linter
enumerates each classifier's reachable input space (using g-tree context:
option lists, checkbox defaults, enablement gates) and reports every
answer combination left unclassified — before real data ever hits it.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis.classifiers import vendor_classifiers_for
from repro.multiclass import lint_all


def _corpus(source):
    vendor = vendor_classifiers_for(source)
    return vendor, vendor.base + [
        vendor.habits_cancer,
        vendor.habits_chemistry,
        vendor.ex_smoker_1y,
        vendor.ex_smoker_10y,
        vendor.ex_smoker_ever,
    ]


def test_a7_lint_cost(benchmark, world):
    source = world.source("cori_warehouse_feed")
    vendor, classifiers = _corpus(source)
    tree = source.gtree(vendor.entity_classifier.form)
    reports = benchmark(lambda: lint_all(classifiers, tree))
    assert len(reports) == len(classifiers)


def test_a7_report(benchmark, world):
    def lint_everything():
        rows = []
        for source in world.sources:
            vendor, classifiers = _corpus(source)
            tree = source.gtree(vendor.entity_classifier.form)
            reports = lint_all(classifiers, tree)
            exhaustive = sum(1 for r in reports if r.is_exhaustive and r.checked_combinations)
            gapped = [r for r in reports if r.gaps]
            unenumerable = sum(
                1 for r in reports if not r.checked_combinations
            )
            example = gapped[0].gaps[0].describe() if gapped else "-"
            rows.append(
                {
                    "source": source.name,
                    "classifiers": len(reports),
                    "exhaustive": exhaustive,
                    "with_gaps": len(gapped),
                    "not_enumerable": unenumerable,
                    "example_gap": example,
                }
            )
        return rows

    rows = benchmark.pedantic(lint_everything, rounds=1, iterations=1)
    # The linter must find the genuine unanswered-question gaps on the two
    # vendors whose smoking history spans several gated controls.
    by_source = {row["source"]: row for row in rows}
    assert by_source["endopro_clinic"]["with_gaps"] >= 1
    assert by_source["medscribe_clinic"]["with_gaps"] >= 1
    emit_report(
        "A7 — classifier coverage linting (reachable-input enumeration)",
        rows,
        notes="gaps are answer combinations a clinician could save that no "
        "rule classifies; each is a review item, not necessarily a bug "
        "(unclassified is the safe outcome)",
    )
