"""A1 — §4.2 ablation: materialization strategies.

Full vs selective (often-used only) vs derived (algebraic relationship):
the storage / query-latency trade-off behind the paper's "if the
classifiers/domains ratio is high, a comprehensive materialized study
schema may be too large to manage".
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit_report
from repro.analysis.classifiers import vendor_classifiers_for
from repro.analysis.schema import build_endoscopy_schema
from repro.warehouse import (
    DerivationRule,
    DerivedStrategy,
    FullStrategy,
    MaterializationJob,
    SelectiveStrategy,
    Warehouse,
)


def _job(world) -> MaterializationJob:
    source = world.source("cori_warehouse_feed")
    vendor = vendor_classifiers_for(source)
    return MaterializationJob(
        schema=build_endoscopy_schema(),
        entity="Procedure",
        sources=[source],
        entity_classifiers={source.name: vendor.entity_classifier},
        classifiers=[
            vendor.habits_cancer,
            vendor.habits_chemistry,
            vendor.ex_smoker_1y,
            vendor.ex_smoker_10y,
            vendor.ex_smoker_ever,
        ],
    )


def _strategies(job, warehouse_factory):
    # The derived strategy stores habits_cancer and computes the chemistry
    # variant as an algebraic recode of it — the paper's "classifier A and
    # classifier B share a simple algebraic relationship" case.
    return {
        "full": FullStrategy(job, warehouse_factory()),
        "selective(2 hot)": SelectiveStrategy(
            job, warehouse_factory(), ["cori_habits_cancer", "cori_ex_smoker_ever"]
        ),
        "derived(recode)": DerivedStrategy(
            job,
            warehouse_factory(),
            [
                DerivationRule.of(
                    "cori_habits_chemistry",
                    "cori_habits_cancer",
                    "IIF(base = 'Moderate', 'Heavy', IIF(base = 'Light', 'Moderate', base))",
                )
            ],
        ),
    }


@pytest.mark.parametrize("strategy_name", ["full", "selective(2 hot)", "derived(recode)"])
def test_build_cost(benchmark, world, strategy_name):
    job = _job(world)

    def build():
        strategy = _strategies(job, Warehouse)[strategy_name]
        strategy.build()
        return strategy

    strategy = benchmark(build)
    assert strategy.storage_cells() > 0


def test_ablation_report(benchmark, world):
    job = _job(world)
    hot = ["cori_habits_cancer", "cori_ex_smoker_ever"]
    cold = [c.name for c in job.classifiers]

    def measure():
        rows = []
        for name, strategy in _strategies(job, Warehouse).items():
            started = time.perf_counter()
            strategy.build()
            build_seconds = time.perf_counter() - started

            started = time.perf_counter()
            strategy.fetch(hot)
            hot_seconds = time.perf_counter() - started

            started = time.perf_counter()
            strategy.fetch(cold)
            cold_seconds = time.perf_counter() - started

            rows.append(
                {
                    "strategy": name,
                    "storage_cells": strategy.storage_cells(),
                    "build_ms": round(build_seconds * 1000, 2),
                    "hot_query_ms": round(hot_seconds * 1000, 2),
                    "all_columns_query_ms": round(cold_seconds * 1000, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    by_name = {row["strategy"]: row for row in rows}
    # The expected shape: full stores the most; selective stores less but
    # pays on cold queries; derived sits between on storage.
    assert by_name["full"]["storage_cells"] > by_name["selective(2 hot)"]["storage_cells"]
    assert by_name["full"]["storage_cells"] > by_name["derived(recode)"]["storage_cells"]
    assert (
        by_name["selective(2 hot)"]["all_columns_query_ms"]
        > by_name["full"]["all_columns_query_ms"]
    )
    emit_report(
        "A1 / §4.2 ablation — materialization strategies",
        rows,
        notes="full: max storage, cheapest queries; selective: recomputes "
        "cold classifiers from sources; derived: computes related "
        "classifiers algebraically from a stored base",
    )
