"""A5 — §3.1: vocabulary-assisted classifier suggestions.

"Controlled vocabularies or ontology, or other automated schema matching
tools may be useful in conjunction with GUAVA to assist the user."  The
experiment drafts classifiers for every Procedure target against each
vendor's g-tree and scores the drafts against the hand-written corpus:
a draft *agrees* when its top suggestion reads the same g-tree nodes as
the analyst's classifier for that target.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis import build_endoscopy_schema
from repro.analysis.classifiers import vendor_classifiers_for
from repro.multiclass import suggest_all


def test_a5_suggestion_cost(benchmark, world):
    schema = build_endoscopy_schema()
    source = world.source("cori_warehouse_feed")
    tree = source.gtree("procedure")
    found = benchmark(lambda: suggest_all(tree, schema, "Procedure"))
    assert found


def test_a5_report(benchmark, world):
    schema = build_endoscopy_schema()

    def score_all():
        rows = []
        for source in world.sources:
            vendor = vendor_classifiers_for(source)
            tree = source.gtree(vendor.entity_classifier.form)
            handwritten = {
                (c.target_attribute, c.target_domain): c for c in vendor.base
            }
            drafts = suggest_all(tree, schema, "Procedure")
            agreements = 0
            comparable = 0
            for target, classifier in handwritten.items():
                suggestion_list = drafts.get(target)
                if suggestion_list is None:
                    continue
                comparable += 1
                top = suggestion_list[0]
                if top.classifier.input_nodes() <= classifier.input_nodes():
                    agreements += 1
            rows.append(
                {
                    "source": source.name,
                    "targets": len(handwritten),
                    "drafted": len(
                        [t for t in drafts if t in handwritten]
                    ),
                    "top_draft_agrees_with_analyst": f"{agreements}/{comparable}",
                }
            )
        return rows

    rows = benchmark.pedantic(score_all, rounds=1, iterations=1)
    # The assistant must draft something useful for every source, and the
    # drafts must mostly point at the nodes the analyst used.
    for row in rows:
        assert row["drafted"] > 0
        agreed, comparable = map(int, row["top_draft_agrees_with_analyst"].split("/"))
        assert comparable == 0 or agreed / comparable >= 0.5
    emit_report(
        "A5 / §3.1 — vocabulary-assisted classifier drafting",
        rows,
        notes="drafts are reviewable suggestions (confidence + rationale), "
        "never silently adopted; agreement = top draft reads the same "
        "g-tree nodes as the hand-written classifier",
    )
