"""A2 — §6 future work: classifier propagation across tool versions.

A new CORI version ships with (a) no relevant changes, (b) an extended
option list, and (c) a renamed control.  The experiment propagates the
full CORI classifier corpus across each upgrade and reports how many
classifiers survive automatically, how many are flagged for review, and
how many break (with rename suggestions).
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis.classifiers import vendor_classifiers_for
from repro.clinical import build_cori_tool
from repro.guava import derive_gtree
from repro.multiclass import propagate_classifiers
from repro.ui import DropDown, Form, NumericBox, ReportingTool


def _upgraded_tool(kind: str) -> ReportingTool:
    """CORI v2 variants: identical / extended options / renamed control."""
    tool = build_cori_tool(version="2.0")
    if kind == "identical":
        return tool
    form = tool.form("procedure")
    new_controls = []
    for control in form.controls:
        new_controls.append(control)
    if kind == "extended_options":
        history = form.control("alcohol")
        # Replace the alcohol drop-down with one more option.
        _replace_control(
            form,
            "alcohol",
            DropDown(
                "alcohol",
                history.question,
                choices=["None", "Light", "Heavy", "Binge"],
                free_text=True,
            ),
        )
    elif kind == "renamed_control":
        packs = form.control("packs_per_day")
        _replace_control(
            form,
            "packs_per_day",
            NumericBox(
                "smoking_frequency",
                packs.question,  # same wording => rename suggestion works
                integer=False,
                minimum=0,
                maximum=20,
                enabled_when="smoking IS NOT NULL AND smoking != 'Never'",
            ),
        )
    return ReportingTool("cori", "2.0", forms=[Form(form.name, form.title, form.controls)] + tool.forms[1:])


def _replace_control(form: Form, name: str, replacement) -> None:
    for container in form.iter_controls():
        for index, child in enumerate(container.children):
            if child.name == name:
                container.children[index] = replacement
                return
    for index, child in enumerate(form.controls):
        if child.name == name:
            form.controls[index] = replacement
            return


def _classifiers(world):
    vendor = vendor_classifiers_for(world.source("cori_warehouse_feed"))
    return vendor.base + [
        vendor.habits_cancer,
        vendor.habits_chemistry,
        vendor.ex_smoker_1y,
        vendor.ex_smoker_10y,
        vendor.ex_smoker_ever,
    ]


def test_a2_propagation_cost(benchmark, world):
    old = world.source("cori_warehouse_feed").gtree("procedure")
    new = derive_gtree(_upgraded_tool("identical"), "procedure")
    classifiers = _classifiers(world)
    report = benchmark(lambda: propagate_classifiers(old, new, classifiers))
    assert len(report.propagated) == len(classifiers)


def test_a2_report(benchmark, world):
    old = world.source("cori_warehouse_feed").gtree("procedure")
    classifiers = _classifiers(world)

    def run_all():
        rows = []
        for kind in ("identical", "extended_options", "renamed_control"):
            new = derive_gtree(_upgraded_tool(kind), "procedure")
            report = propagate_classifiers(old, new, classifiers)
            suggestions = [
                change.suggestion
                for _, changes in report.broken
                for change in changes
                if change.suggestion
            ]
            rows.append(
                {
                    "upgrade": kind,
                    "classifiers": report.total,
                    "propagated": len(report.propagated),
                    "flagged": len(report.flagged),
                    "broken": len(report.broken),
                    "rename_suggestions": sorted(set(suggestions)) or "-",
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_kind = {row["upgrade"]: row for row in rows}
    assert by_kind["identical"]["propagated"] == len(classifiers)
    assert by_kind["extended_options"]["flagged"] >= 1
    assert by_kind["renamed_control"]["broken"] >= 1
    assert "smoking_frequency" in by_kind["renamed_control"]["rename_suggestions"]
    emit_report(
        "A2 / §6 — classifier propagation across CORI tool versions",
        rows,
        notes="classifiers whose input nodes are unchanged propagate; option "
        "changes flag for review; renames break with a suggestion from "
        "matching question wording",
    )
