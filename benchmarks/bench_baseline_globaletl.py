"""A3 — §1 baseline: classic single global ETL vs per-study classifiers.

"An ETL workflow, once defined, encapsulates only one set of decisions
about how to integrate various source databases."  The experiment freezes
one ex-smoker classification at warehouse-load time (the classic design)
and scores every study definition against ground truth; MultiClass
re-classifies per study and never inherits the frozen choice's errors.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis import global_etl_ex_smokers


def test_a3_cost(benchmark, world):
    comparisons = benchmark(lambda: global_etl_ex_smokers(world))
    assert len(comparisons) == 3


def test_a3_report(benchmark, world):
    comparisons = benchmark.pedantic(
        lambda: global_etl_ex_smokers(world, global_definition="ever"),
        rounds=1,
        iterations=1,
    )
    rows = [c.as_row() for c in comparisons]
    by_definition = {c.definition: c for c in comparisons}

    # Shape: the frozen global label is only right for the study whose
    # definition happens to match it; MultiClass is right for all.
    assert by_definition["ever"].global_etl_errors == 0
    assert by_definition["1y"].global_etl_errors > 0
    assert by_definition["10y"].global_etl_errors > 0
    assert all(c.multiclass_errors == 0 for c in comparisons)

    emit_report(
        "A3 / §1 baseline — one frozen global ETL vs per-study classifiers",
        rows,
        notes="global warehouse label frozen as 'quit ever'; studies needing "
        "stricter definitions silently inherit mislabels, MultiClass does not",
    )
