"""Durability benchmark: WAL overhead, snapshot cost, recovery time.

Four questions, one ingest-shaped workload (bulk inserts with periodic
updates and group commits — the write path the ETL pipeline drives):

* ``du_etl_wal_off`` vs ``du_etl_wal_on`` — the same workload against a
  bare :class:`~repro.relational.Database` and a
  :class:`~repro.storage.DurableStore` (fsync per commit).  The ratio is
  the price of durability on the hot mutation path; the bench asserts it
  stays under :data:`MAX_WAL_OVERHEAD` (and the committed baseline gates
  drift per case on top).
* ``du_snapshot_write`` — one columnar checkpoint of the ingested table.
* ``du_recover_snapshot`` vs ``du_recover_replay`` — cold-start recovery
  of identical state from a snapshot versus from pure WAL replay, the
  two ends of the checkpoint spectrum.

Also reports recovery time vs table size (``du_recover_replay_<n>``)
for the EXPERIMENTS.md scaling table.

Runs two ways:

* ``pytest benchmarks/bench_durability.py`` — a fast correctness smoke
  (recovered state bit-identical, overhead sane) on a small workload;
* ``python benchmarks/bench_durability.py`` — standalone timing mode
  writing ``benchmarks/reports/durability.latest.json``; pass ``--json``
  to promote to the committed ``BENCH_durability.json`` baseline.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

try:  # package import under pytest, bare import as a standalone script
    from benchmarks._payload import resolve_json_path, write_payload
except ImportError:  # pragma: no cover - script mode
    from _payload import resolve_json_path, write_payload

from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.storage.engine import DurableStore, state_fingerprint

ROWS = 20_000
COMMIT_EVERY = 500
ROUNDS = 5
SCALE_STEPS = (5_000, 10_000, 20_000)

#: The acceptance bar: WAL-on ingest may cost at most this multiple of
#: WAL-off.  Checked on the best-of-rounds times, where scheduler noise
#: is smallest.
MAX_WAL_OVERHEAD = 1.3

KINDS = ("admit", "discharge", "transfer", "observe", "operate")


def _schema() -> TableSchema:
    return TableSchema(
        "events",
        (
            Column("id", DataType.INTEGER, nullable=False),
            Column("kind", DataType.TEXT),
            Column("severity", DataType.INTEGER),
            Column("score", DataType.FLOAT),
        ),
        primary_key=("id",),
    )


def ingest(db: Database, rows: int, commit=None) -> None:
    """The ETL-shaped write workload: batched inserts + periodic updates."""
    table = db.create_table(_schema())
    for i in range(rows):
        table.insert(
            {
                "id": i,
                "kind": KINDS[i % len(KINDS)],
                "severity": i % 5 + 1,
                "score": (i % 97) * 0.5,
            }
        )
        if (i + 1) % COMMIT_EVERY == 0:
            table.update(lambda r, lo=i - 9: r["id"] >= lo, {"severity": 5})
            if commit is not None:
                commit()
    if commit is not None:
        commit()


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _ingest_on(rows: int) -> float:
    scratch = Path(tempfile.mkdtemp(prefix="bench-wal-"))
    try:
        store = DurableStore(scratch, fsync="commit")
        elapsed = _timed(lambda: ingest(store.db, rows, commit=store.commit))
        store.close()
        return elapsed
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def bench_wal_overhead(rows: int = ROWS, rounds: int = ROUNDS) -> list[dict]:
    # Warm-up round (imports, allocator, page cache), then paired rounds:
    # the overhead verdict is the *best per-round ratio*, which cancels
    # the slow machine drift that plagues sequential best-of comparisons.
    ingest(Database("bench"), rows)
    _ingest_on(rows)
    best_off = float("inf")
    best_on = float("inf")
    overhead = float("inf")
    for _ in range(rounds):
        off = _timed(lambda: ingest(Database("bench"), rows))
        on = _ingest_on(rows)
        best_off = min(best_off, off)
        best_on = min(best_on, on)
        overhead = min(overhead, on / off)
    assert overhead <= MAX_WAL_OVERHEAD, (
        f"WAL-on ingest is x{overhead:.2f} of WAL-off "
        f"(bar: x{MAX_WAL_OVERHEAD:.2f})"
    )
    return [
        {"case": "du_etl_wal_off", "rows": rows, "ms": round(best_off * 1000, 3)},
        {
            "case": "du_etl_wal_on",
            "rows": rows,
            "ms": round(best_on * 1000, 3),
            "overhead_vs_wal_off": round(overhead, 3),
        },
    ]


def bench_snapshot_and_recovery(rows: int = ROWS, rounds: int = ROUNDS) -> list[dict]:
    results: list[dict] = []
    replay_dir = Path(tempfile.mkdtemp(prefix="bench-replay-"))
    snap_dir = Path(tempfile.mkdtemp(prefix="bench-snap-"))
    try:
        store = DurableStore(replay_dir, fsync="never")
        ingest(store.db, rows, commit=store.commit)
        expected = state_fingerprint(store.db)
        store.close()

        # Same state, checkpointed: recovery loads columns, replays nothing.
        shutil.copytree(replay_dir, snap_dir, dirs_exist_ok=True)
        store = DurableStore(snap_dir)
        best_snapshot_write = float("inf")
        for _ in range(rounds):
            best_snapshot_write = min(best_snapshot_write, _timed(store.snapshot))
        store.close()
        results.append(
            {
                "case": "du_snapshot_write",
                "rows": rows,
                "ms": round(best_snapshot_write * 1000, 3),
            }
        )

        for case, directory in (
            ("du_recover_snapshot", snap_dir),
            ("du_recover_replay", replay_dir),
        ):
            best = float("inf")
            for _ in range(rounds):
                store = DurableStore(directory)
                best = min(best, store.report.duration_s)
                assert state_fingerprint(store.db) == expected
                report = store.report
                store.close(commit=False)
            results.append(
                {
                    "case": case,
                    "rows": rows,
                    "ms": round(best * 1000, 3),
                    "wal_records_replayed": report.replayed,
                }
            )
    finally:
        shutil.rmtree(replay_dir, ignore_errors=True)
        shutil.rmtree(snap_dir, ignore_errors=True)
    return results


def bench_recovery_scaling(rounds: int = 3) -> list[dict]:
    """Recovery time vs table size, pure-replay mode (the worst case)."""
    results: list[dict] = []
    for rows in SCALE_STEPS:
        scratch = Path(tempfile.mkdtemp(prefix="bench-scale-"))
        try:
            store = DurableStore(scratch, fsync="never")
            ingest(store.db, rows, commit=store.commit)
            store.close()
            best = float("inf")
            for _ in range(rounds):
                reopened = DurableStore(scratch)
                best = min(best, reopened.report.duration_s)
                reopened.close(commit=False)
            results.append(
                {
                    "case": f"du_recover_replay_{rows}",
                    "rows": rows,
                    "ms": round(best * 1000, 3),
                }
            )
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
    return results


# -- standalone runner ---------------------------------------------------------


def run(json_path: str | None = None) -> list[dict]:
    results = (
        bench_wal_overhead()
        + bench_snapshot_and_recovery()
        + bench_recovery_scaling()
    )
    for row in results:
        extra = row.get("overhead_vs_wal_off")
        suffix = f"   x{extra:.2f} vs wal_off" if extra is not None else ""
        print(f"{row['case']:<28} {row['ms']:10.3f} ms{suffix}", flush=True)
    if json_path:
        payload = {
            "benchmark": "durability",
            "rows": ROWS,
            "commit_every": COMMIT_EVERY,
            "rounds": ROUNDS,
            "max_wal_overhead": MAX_WAL_OVERHEAD,
            "results": results,
        }
        write_payload(json_path, payload)
        print(f"wrote {json_path}")
    return results


def main(argv: list[str]) -> int:
    json_path, promoted = resolve_json_path(argv, "durability")
    run(json_path)
    if not promoted:
        print("scratch run; pass --json to promote to the committed baseline")
    return 0


# -- pytest smoke case ---------------------------------------------------------


def test_durable_ingest_recovers_bit_identical(tmp_path):
    """Small-scale correctness smoke (timings live in standalone mode)."""
    store = DurableStore(tmp_path)
    ingest(store.db, 600, commit=store.commit)
    expected = state_fingerprint(store.db)
    store.snapshot()
    store.db.table("events").insert(
        {"id": 600, "kind": "late", "severity": 1, "score": 0.0}
    )
    store.commit()
    after = state_fingerprint(store.db)
    store.close()
    reopened = DurableStore(tmp_path)
    assert state_fingerprint(reopened.db) == after != expected
    assert reopened.report.replayed == 2  # the insert + its commit
    reopened.close()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
