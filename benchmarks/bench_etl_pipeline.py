"""ETL pipeline benchmark: serial vs batched/parallel vs incremental.

Two experiments, both against the serial seed paths kept as oracles:

* **pipeline** — one full compiled study (Study-1 elements plus the
  smoking/ex-smoker columns and four cleaning rules) run through
  ``Workflow.run()`` serially and through the batched/parallel engine.
  Modes are interleaved within each round (the measurement noise on a
  shared box dwarfs the ordering effects otherwise) and the best round
  per mode is reported.
* **incremental** — a full CORI materialization versus a warm
  ``build(incremental=True)`` after a small data-entry delta; the
  refresh reclassifies only the changed records, the rebuild starts
  from scratch.

Runs two ways:

* ``pytest benchmarks/bench_etl_pipeline.py`` — a fast equivalence
  check on a small world (the timing numbers come from standalone mode);
* ``python benchmarks/bench_etl_pipeline.py`` — standalone mode (no
  pytest needed, CI-friendly) writing a scratch
  ``benchmarks/reports/etl_pipeline.latest.json``; pass ``--json`` to
  promote the run to the committed ``BENCH_etl_pipeline.json`` baseline.
"""

from __future__ import annotations

import sys

try:  # package import under pytest, bare import as a standalone script
    from benchmarks._payload import resolve_json_path, write_payload
except ImportError:  # pragma: no cover - script mode
    from _payload import resolve_json_path, write_payload
import time

from repro.analysis.classifiers import vendor_classifiers_for
from repro.analysis.schema import build_endoscopy_schema
from repro.analysis.studies import STUDY1_ELEMENTS, build_cohort_study
from repro.clinical import build_world
from repro.clinical.cori import cori_procedure_values
from repro.clinical.ground_truth import generate_truths
from repro.etl import compile_study
from repro.multiclass import CleaningRule
from repro.relational import Database
from repro.warehouse import FullStrategy, MaterializationJob, Warehouse

WORLD_SIZE = 1_500
SEED = 7
ROUNDS = 12
BATCH_SIZE = 512
PARALLELISM = 4
DELTA_RECORDS = 5

ELEMENTS = STUDY1_ELEMENTS + [("Smoking", "habits4"), ("ExSmoker", "flag")]

CLEANING_RULES = (
    ("cori_warehouse_feed", "packs_per_day >= 3"),
    ("endopro_clinic", "cigarettes_per_day >= 60"),
    ("medscribe_clinic", "packs_daily >= 3"),
)


# -- workloads -----------------------------------------------------------------


def build_pipeline_study(world):
    study = build_cohort_study("bench_pipeline", world, ELEMENTS)
    for rule_source, condition in CLEANING_RULES:
        study.add_cleaning_rule(
            "Procedure",
            CleaningRule.of(
                f"heavy_{rule_source.split('_')[0]}",
                condition,
                reason="study protocol excludes very heavy smokers",
                source=rule_source,
            ),
        )
    study.add_cleaning_rule(
        "Procedure",
        CleaningRule.of(
            "unclassified_smoking",
            "ExSmoker_flag IS NULL",
            reason="smoking question unanswered",
            scope="study",
        ),
    )
    return study


def run_pipeline(study, **kwargs):
    workflow = compile_study(study, Database("wh"))
    return workflow.run(**kwargs)


def make_materialization_job(world, source):
    vendor = vendor_classifiers_for(source)
    return MaterializationJob(
        schema=build_endoscopy_schema(),
        entity="Procedure",
        sources=[source],
        entity_classifiers={source.name: vendor.entity_classifier},
        classifiers=[
            vendor.habits_cancer,
            vendor.habits_chemistry,
            vendor.ex_smoker_ever,
        ],
    )


def enter_delta(world, source, count, seed):
    existing = len(world.truths_by_source[source.name])
    session = source.session(first_record_id=existing + 1 + seed * count)
    for truth in generate_truths(count, seed=seed):
        session.enter("procedure", cori_procedure_values(truth))


# -- experiments ---------------------------------------------------------------


def bench_pipeline(world) -> list[dict]:
    study = build_pipeline_study(world)
    modes = [
        ("serial", {}),
        ("batched", {"batch_size": BATCH_SIZE}),
        (
            "parallel_batched",
            {"parallelism": PARALLELISM, "batch_size": BATCH_SIZE},
        ),
    ]
    oracle, _ = run_pipeline(study)
    best = {name: float("inf") for name, _ in modes}
    outputs = {}
    for _ in range(2):  # warm-up: caches, imports, compiled closures
        for name, kwargs in modes:
            run_pipeline(study, **kwargs)
    for _ in range(ROUNDS):
        for name, kwargs in modes:
            started = time.perf_counter()
            outputs[name], _ = run_pipeline(study, **kwargs)
            best[name] = min(best[name], time.perf_counter() - started)
    for name, _ in modes:
        assert outputs[name] == oracle, f"mode {name} diverged from serial"
    serial_s = best["serial"]
    return [
        {
            "case": f"pipeline_{name}",
            "mode": name,
            "ms": round(best[name] * 1000, 3),
            "speedup_vs_serial": round(serial_s / best[name], 2),
        }
        for name, _ in modes
    ]


def bench_incremental(world) -> list[dict]:
    source = world.source("cori_warehouse_feed")
    warehouse = Warehouse()
    FullStrategy(make_materialization_job(world, source), warehouse).build()

    best_full = float("inf")
    best_incremental = float("inf")
    for round_no in range(ROUNDS):
        # Full rebuild: a fresh job per round, else the base-records cache
        # (the thing the satellite added) would flatter the full path too.
        job = make_materialization_job(world, source)
        strategy = FullStrategy(job, warehouse)
        started = time.perf_counter()
        strategy.build()
        best_full = min(best_full, time.perf_counter() - started)

        # Warm refresh: enter a small delta, then rebuild incrementally.
        enter_delta(world, source, DELTA_RECORDS, seed=100 + round_no)
        strategy = FullStrategy(make_materialization_job(world, source), warehouse)
        started = time.perf_counter()
        strategy.build(incremental=True)
        best_incremental = min(best_incremental, time.perf_counter() - started)

    # The refreshed table must equal a from-scratch rebuild.
    reference = Warehouse()
    FullStrategy(make_materialization_job(world, source), reference).build()
    key = lambda r: (r["source"], r["record_id"])  # noqa: E731
    refreshed = sorted(warehouse.table("mat_procedure").rows(), key=key)
    rebuilt = sorted(reference.table("mat_procedure").rows(), key=key)
    assert refreshed == rebuilt, "incremental refresh diverged from full rebuild"

    return [
        {
            "case": "materialize_full_rebuild",
            "mode": "full",
            "ms": round(best_full * 1000, 3),
            "speedup_vs_full": 1.0,
        },
        {
            "case": f"materialize_incremental_delta{DELTA_RECORDS}",
            "mode": "incremental",
            "ms": round(best_incremental * 1000, 3),
            "speedup_vs_full": round(best_full / best_incremental, 2),
        },
    ]


# -- standalone runner ---------------------------------------------------------


def run(json_path: str | None = None) -> list[dict]:
    world = build_world(WORLD_SIZE, seed=SEED)
    results = bench_pipeline(world) + bench_incremental(world)
    for row in results:
        ratio = row.get("speedup_vs_serial", row.get("speedup_vs_full"))
        print(f"{row['case']:<36} {row['ms']:10.3f} ms   x{ratio:6.2f}", flush=True)
    if json_path:
        payload = {
            "benchmark": "etl_pipeline",
            "world_size": WORLD_SIZE,
            "seed": SEED,
            "rounds": ROUNDS,
            "batch_size": BATCH_SIZE,
            "parallelism": PARALLELISM,
            "delta_records": DELTA_RECORDS,
            "results": results,
        }
        write_payload(json_path, payload)
        print(f"wrote {json_path}")
    return results


def main(argv: list[str]) -> int:
    json_path, promoted = resolve_json_path(argv, "etl_pipeline")
    run(json_path)
    if not promoted:
        print("scratch run; pass --json to promote to the committed baseline")
    return 0


# -- pytest smoke case ---------------------------------------------------------


def test_engine_and_incremental_agree_with_serial():
    """Small-world equivalence smoke test (timings live in standalone mode)."""
    world = build_world(80, seed=SEED)
    study = build_pipeline_study(world)
    serial, _ = run_pipeline(study)
    engine, _ = run_pipeline(study, parallelism=2, batch_size=32)
    assert engine == serial

    source = world.source("cori_warehouse_feed")
    warehouse = Warehouse()
    FullStrategy(make_materialization_job(world, source), warehouse).build()
    enter_delta(world, source, 3, seed=101)
    FullStrategy(make_materialization_job(world, source), warehouse).build(
        incremental=True
    )
    reference = Warehouse()
    FullStrategy(make_materialization_job(world, source), reference).build()
    key = lambda r: (r["source"], r["record_id"])  # noqa: E731
    assert sorted(warehouse.table("mat_procedure").rows(), key=key) == sorted(
        reference.table("mat_procedure").rows(), key=key
    )


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
