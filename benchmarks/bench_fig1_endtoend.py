"""F1 — Figure 1: the full architecture, end to end.

Three contributors with different GUIs and physical layouts flow through
g-trees, classifiers, and study schemas into two studies.  The benchmark
times the complete pipeline (compile + execute both studies) and the
report shows the integrated row counts per source — the paper's
"MultiClass simply unions together the results" step made concrete.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis import build_study1, build_study2
from repro.etl import compile_study
from repro.relational import Database


def test_fig1_full_pipeline(benchmark, world):
    def run_both():
        warehouse = Database("wh")
        results = {}
        for study in (build_study1(world), build_study2(world, "10y")):
            outputs, _ = compile_study(study, warehouse).run()
            results[study.name] = outputs["Procedure__load"]
        return results

    results = benchmark(run_both)
    study1_rows = results["study1_hypoxia_interventions"]
    study2_rows = results["study2_exsmokers_10y"]
    assert len(study1_rows) == world.procedure_count
    assert len(study2_rows) == world.procedure_count

    per_source = []
    for source in world.sources:
        per_source.append(
            {
                "contributor": source.name,
                "tool": f"{source.tool.name} v{source.tool.version}",
                "gtree_nodes": sum(
                    t.node_count() for t in source.gtrees.values()
                ),
                "physical_tables": len(source.db.table_names()),
                "study1_rows": sum(
                    1 for r in study1_rows if r["source"] == source.name
                ),
                "study2_rows": sum(
                    1 for r in study2_rows if r["source"] == source.name
                ),
            }
        )
    per_source.append(
        {
            "contributor": "TOTAL (union)",
            "tool": "-",
            "gtree_nodes": sum(r["gtree_nodes"] for r in per_source),
            "physical_tables": sum(r["physical_tables"] for r in per_source),
            "study1_rows": len(study1_rows),
            "study2_rows": len(study2_rows),
        }
    )
    emit_report(
        "F1 / Figure 1 — three contributors integrated into two studies",
        per_source,
        notes="same study schema, per-study classifier choices; both studies "
        "compiled to ETL and loaded into the warehouse",
    )


def test_fig1_source_build_cost(benchmark, small_world):
    """Time to stand up one full contributor (tool + chain + data entry)."""
    from repro.clinical import build_cori_source

    truths = small_world.truths_by_source["cori_warehouse_feed"]

    def build():
        return build_cori_source(truths, name="bench_cori")

    source = benchmark(build)
    assert len(source.chain.read_naive(source.db, "procedure")) == len(truths)
