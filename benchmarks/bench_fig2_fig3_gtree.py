"""F2 + F3 — Figures 2 and 3: the example dialog, its g-tree, and node context.

F2 derives the g-tree from the Figure 2 form and checks its structure:
a node for every control including group boxes, and the frequency node
re-parented under smoking because of the enablement dependency.  F3 emits
the three Figure 3 node-context boxes (alcohol, smoking, frequency).
Benchmarks time g-tree derivation — the operation Hypothesis 1 wants an
IDE to run on every build — and XML round-tripping.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.guava import derive_gtree, gtree_from_xml, gtree_to_xml
from tests.conftest import build_fig2_form
from repro.ui import ReportingTool


def _tool() -> ReportingTool:
    return ReportingTool("cori_like", "1.0", forms=[build_fig2_form()])


def test_fig2_gtree_derivation(benchmark):
    tool = _tool()
    tree = benchmark(lambda: derive_gtree(tool, "procedure"))

    assert tree.node_count() == 10  # form + 9 controls, incl. 2 group boxes
    assert tree.parent_of("frequency").name == "smoking"  # enablement edge
    assert tree.parent_of("hypoxia").name == "complications"

    rows = []
    for node in tree.iter_nodes():
        parent = tree.parent_of(node.name)
        rows.append(
            {
                "node": node.name,
                "control": node.control_type,
                "parent": parent.name if parent else "-",
                "stores_data": node.stores_data,
                "edge": (
                    "enablement"
                    if node.enablement is not None
                    else ("containment" if parent else "root")
                ),
            }
        )
    emit_report(
        "F2 / Figure 2 — g-tree of the example dialog",
        rows,
        notes="frequency hangs under smoking via the enablement edge, exactly "
        "as the paper's figure shows",
    )


def test_fig3_node_context(benchmark):
    tool = _tool()
    tree = derive_gtree(tool, "procedure")

    def context_boxes():
        return {
            name: tree.node(name).context_summary()
            for name in ("alcohol", "smoking", "frequency")
        }

    boxes = benchmark.pedantic(context_boxes, rounds=1, iterations=1)
    # Figure 3a: alcohol drop-down with free text.
    assert "free text" in boxes["alcohol"].lower()
    # Figure 3b: smoking radio starts unselected.
    assert "unselected" in boxes["smoking"].lower()
    # Figure 3c: frequency enabled only once smoking is answered.
    assert "smoking" in boxes["frequency"].lower()

    rows = [
        {
            "figure": f"3{letter}",
            "node": name,
            "context": boxes[name].replace("\n", " | "),
        }
        for letter, name in (("a", "alcohol"), ("b", "smoking"), ("c", "frequency"))
    ]
    emit_report(
        "F3 / Figure 3 — node context boxes",
        rows,
        notes="question wording, options, unselected state, free-text, and "
        "enablement all captured per node",
    )


def test_gtree_xml_roundtrip(benchmark, world):
    """Serialization cost for every g-tree in the clinical world."""
    trees = [
        tree for source in world.sources for tree in source.gtrees.values()
    ]

    def roundtrip_all():
        return [gtree_from_xml(gtree_to_xml(tree)) for tree in trees]

    restored = benchmark(roundtrip_all)
    assert all(a.root == b.root for a, b in zip(restored, trees))
