"""F4 + F5 — Figures 4 and 5: the study schema and the example classifiers.

F4 reproduces the study schema (Procedure atop a has-a tree with Finding
and New Medication, multi-domain attributes).  F5 executes the figure's
four classifiers — Habits (Cancer), Habits (Chemistry), Tumor Size, and
the Relevant Procedures entity classifier — and shows the two Habits
classifiers disagreeing exactly on the packs-per-day interval [1, 5).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_report
from repro.analysis import build_endoscopy_schema
from repro.multiclass import Classifier, EntityClassifier, Rule
from repro.multiclass.domain import Domain

HABITS = Domain.categorical("habits", ["None", "Light", "Moderate", "Heavy"])


def habits_cancer() -> Classifier:
    return Classifier(
        name="Habits (Cancer)",
        target_entity="Procedure",
        target_attribute="Smoking",
        target_domain="habits",
        rules=[
            Rule.of("'None'", "PacksPerDay = 0"),
            Rule.of("'Light'", "0 < PacksPerDay AND PacksPerDay < 2"),
            Rule.of("'Moderate'", "2 <= PacksPerDay AND PacksPerDay < 5"),
            Rule.of("'Heavy'", "PacksPerDay >= 5"),
        ],
        description="Classifies packs per day according to conversations "
        "with cancer study on 5/3/02",
    )


def habits_chemistry() -> Classifier:
    return Classifier(
        name="Habits (Chemistry)",
        target_entity="Procedure",
        target_attribute="Smoking",
        target_domain="habits",
        rules=[
            Rule.of("'None'", "PacksPerDay = 0"),
            Rule.of("'Light'", "0 < PacksPerDay AND PacksPerDay < 1"),
            Rule.of("'Moderate'", "1 <= PacksPerDay AND PacksPerDay < 2"),
            Rule.of("'Heavy'", "PacksPerDay >= 2"),
        ],
        description="Classifies packs per day according to flier from "
        "chemical studies",
    )


def tumor_size() -> Classifier:
    return Classifier(
        name="Tumor Size",
        target_entity="Finding",
        target_attribute="TumorVolume",
        target_domain="cubic_mm",
        rules=[
            Rule.of(
                "TumorX * TumorY * TumorZ * 0.52",
                "TumorX > 0 AND TumorY > 0 AND TumorZ > 0",
            )
        ],
        description="Estimates tumor volume based on dimensions in 3-space. "
        "Assumes 52% occupancy from sphere-to-cube ratio.",
    )


def relevant_procedures() -> EntityClassifier:
    return EntityClassifier(
        name="Relevant Procedures",
        target_entity="Procedure",
        form="Procedure",
        condition="SurgeryPerformed = TRUE",
        description="Only consider procedures where surgery was performed",
    )


def test_fig4_study_schema(benchmark):
    schema = benchmark(build_endoscopy_schema)
    assert schema.primary.name == "Procedure"
    assert schema.parent_of("Finding").name == "Procedure"
    assert schema.parent_of("NewMedication").name == "Procedure"
    smoking = schema.entity("Procedure").attribute("Smoking")
    assert len(smoking.domains) == 3

    rows = []
    for entity in schema.entities():
        for attribute in entity.attributes.values():
            rows.append(
                {
                    "entity": entity.name,
                    "attribute": attribute.name,
                    "domains": " | ".join(attribute.domains),
                }
            )
    emit_report(
        "F4 / Figure 4 — study schema (has-a tree, multi-domain attributes)",
        rows,
        notes=f"{schema.attribute_count()} attributes, "
        f"{schema.domain_count()} domains across "
        f"{len(schema.entities())} entities",
    )


def test_fig5_classifiers(benchmark):
    cancer, chemistry = habits_cancer(), habits_chemistry()
    volume = tumor_size()
    relevant = relevant_procedures()
    packs_grid = [0, 0.5, 1, 1.5, 2, 3, 5, 7]

    def run_all():
        rows = []
        for packs in packs_grid:
            env = {"PacksPerDay": packs}
            rows.append(
                {
                    "packs_per_day": packs,
                    "habits_cancer": cancer.classify(env, HABITS),
                    "habits_chemistry": chemistry.classify(env, HABITS),
                }
            )
        return rows

    rows = benchmark(run_all)
    for row in rows:
        agree = row["habits_cancer"] == row["habits_chemistry"]
        row["agree"] = agree
        # The disagreement region is exactly [1, 5).
        assert agree == (not (1 <= row["packs_per_day"] < 5))
    emit_report(
        "F5 / Figure 5a — two classifiers, same domain, different cutoffs",
        rows,
        notes="disagreement confined to packs/day in [1, 5) — both remain "
        "valid, per-study choices",
    )

    assert volume.classify({"TumorX": 2, "TumorY": 3, "TumorZ": 4}) == pytest.approx(
        12.48
    )
    assert relevant.admits({"SurgeryPerformed": True})
    assert not relevant.admits({"SurgeryPerformed": False})
    emit_report(
        "F5 / Figure 5b,c — arithmetic classifier and entity classifier",
        [
            {
                "classifier": "Tumor Size",
                "input": "TumorX=2, TumorY=3, TumorZ=4",
                "output": 12.48,
            },
            {
                "classifier": "Relevant Procedures",
                "input": "SurgeryPerformed=TRUE",
                "output": "admitted",
            },
            {
                "classifier": "Relevant Procedures",
                "input": "SurgeryPerformed=FALSE",
                "output": "rejected",
            },
        ],
    )
