"""F6 — Figure 6: translating GUAVA + MultiClass artifacts into ETL.

Compiles Study 1 into the three-stage pipeline, checks the stage layout
matches the figure (Source -> ETL -> temp DB -> ETL -> temp DB -> ETL ->
Study), verifies compiled output equals direct evaluation, and emits the
generated SQL + Datalog + XQuery artifacts' sizes.  Benchmarks separate
compile cost from execution cost.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis import build_study1
from repro.etl import compile_study
from repro.guava.query import GTreeQuery
from repro.guava.translate import translate_query
from repro.multiclass import study_to_datalog, study_to_xquery
from repro.relational import Database, to_sql


def test_fig6_compile_cost(benchmark, world):
    study = build_study1(world)
    workflow = benchmark(lambda: compile_study(study, Database("wh")))
    assert workflow.stages() == ["extract", "classify", "study"]


def test_fig6_execute_cost(benchmark, world):
    study = build_study1(world)
    warehouse = Database("wh")
    workflow = compile_study(study, warehouse)
    outputs, _ = benchmark(workflow.run)
    assert len(outputs["Procedure__load"]) == world.procedure_count


def test_fig6_report(benchmark, world):
    study = build_study1(world)

    def build_artifacts():
        warehouse = Database("wh")
        workflow = compile_study(study, warehouse)
        outputs, report = workflow.run()
        direct = study.run().rows("Procedure")
        sqls = []
        for binding in study.bindings:
            ec = binding.entity_classifiers["Procedure"]
            plan = translate_query(
                GTreeQuery(binding.source.gtree(ec.form)).where(ec.condition),
                binding.source.chain,
            )
            sqls.append((binding.source.name, to_sql(plan)))
        return workflow, report, outputs, direct, sqls

    workflow, report, outputs, direct, sqls = benchmark.pedantic(
        build_artifacts, rounds=1, iterations=1
    )
    key = lambda r: (r["source"], r["record_id"])
    assert sorted(outputs["Procedure__load"], key=key) == sorted(direct, key=key)

    stage_rows = []
    for stage in workflow.stages():
        steps = [s for s in report.steps if s.stage == stage]
        stage_rows.append(
            {
                "stage": stage,
                "steps": len(steps),
                "rows_out_total": sum(s.rows_out for s in steps),
                "figure6_role": {
                    "extract": "Source -> ETL -> Temporary DB (GUAVA translation)",
                    "classify": "Temporary DB -> ETL -> Temporary DB (classifiers)",
                    "study": "Temporary DB -> ETL -> Study (union/filter/load)",
                }[stage],
            }
        )
    emit_report(
        "F6 / Figure 6 — study compiled to the three-stage ETL pipeline",
        stage_rows,
        notes="compiled ETL output equals direct study evaluation "
        "(Hypothesis 3 equivalence)",
    )

    datalog = study_to_datalog(study)
    xquery = study_to_xquery(study)
    emit_report(
        "F6 — generated query artifacts per contributor",
        [
            {"artifact": f"SQL ({name})", "lines": sql.count("\n") + 1}
            for name, sql in sqls
        ]
        + [
            {"artifact": "Datalog (whole study)", "lines": datalog.count("\n") + 1},
            {"artifact": "XQuery (whole study)", "lines": xquery.count("\n") + 1},
        ],
        notes="the paper hand-translated classifiers to XQuery and Datalog; "
        "here both are generated",
    )
