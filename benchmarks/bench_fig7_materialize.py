"""F7 — Figure 7: the fully-materialized study schema.

Reproduces the figure's table shape (one column per classifier) and runs
the parameter sweep the paper's §4.2 worry implies: storage grows linearly
with the classifiers/domains ratio, so "a comprehensive materialized study
schema may be too large to manage" once analysts accumulate many
classifiers per domain.  Benchmarks compare build cost of full
materialization against query-time cost of the selective alternative.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_report
from repro.analysis.classifiers import vendor_classifiers_for
from repro.analysis.schema import build_endoscopy_schema
from repro.multiclass import Classifier, Rule
from repro.warehouse import (
    FullStrategy,
    MaterializationJob,
    SelectiveStrategy,
    Warehouse,
)


def _variant_classifiers(count: int) -> list[Classifier]:
    """``count`` habits classifiers with shifted cutoffs — the accumulation
    of per-study definitions the sweep models."""
    variants = []
    for index in range(count):
        low = 0.5 + index * 0.25
        high = low + 2.0
        variants.append(
            Classifier(
                name=f"habits_variant_{index}",
                target_entity="Procedure",
                target_attribute="Smoking",
                target_domain="habits4",
                rules=[
                    Rule.of("'None'", "smoking = 'Never' OR packs_per_day = 0"),
                    Rule.of("'Light'", f"packs_per_day > 0 AND packs_per_day < {low}"),
                    Rule.of(
                        "'Moderate'",
                        f"packs_per_day >= {low} AND packs_per_day < {high}",
                    ),
                    Rule.of("'Heavy'", f"packs_per_day >= {high}"),
                ],
                description=f"study-specific cutoffs #{index}",
            )
        )
    return variants


def _job(world, classifier_count: int) -> MaterializationJob:
    source = world.source("cori_warehouse_feed")
    vendor = vendor_classifiers_for(source)
    return MaterializationJob(
        schema=build_endoscopy_schema(),
        entity="Procedure",
        sources=[source],
        entity_classifiers={source.name: vendor.entity_classifier},
        classifiers=_variant_classifiers(classifier_count),
    )


@pytest.mark.parametrize("classifier_count", [1, 2, 4, 8, 16])
def test_fig7_sweep_storage(benchmark, world, classifier_count):
    """Build cost and footprint as classifiers accumulate per domain."""
    job = _job(world, classifier_count)

    def build():
        warehouse = Warehouse()
        strategy = FullStrategy(job, warehouse)
        strategy.build()
        return strategy

    strategy = benchmark(build)
    assert strategy.storage_cells() > 0


def test_fig7_report(benchmark, world):
    def sweep():
        rows = []
        for count in (1, 2, 4, 8, 16):
            job = _job(world, count)
            warehouse = Warehouse()
            strategy = FullStrategy(job, warehouse)
            strategy.build()
            table = warehouse.table(job.table_name())
            rows.append(
                {
                    "classifiers_per_domain": count,
                    "table_columns": len(table.schema.columns),
                    "table_rows": len(table),
                    "storage_cells": strategy.storage_cells(),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Storage must grow linearly with the classifier count (the paper's
    # "too large to manage" trajectory).
    cells = [row["storage_cells"] for row in rows]
    assert all(b > a for a, b in zip(cells, cells[1:]))
    base_rows = rows[0]["table_rows"]
    expected_16 = base_rows * (16 + 2)
    assert rows[-1]["storage_cells"] == expected_16
    emit_report(
        "F7 / Figure 7 — fully-materialized study schema sweep",
        rows,
        notes="one stored column per classifier: storage grows linearly in "
        "the classifiers/domains ratio, motivating the §4.2 alternatives",
    )


def test_fig7_selective_query_cost(benchmark, world):
    """The trade-off: selective materialization pays at query time."""
    job = _job(world, 8)
    warehouse = Warehouse()
    strategy = SelectiveStrategy(job, warehouse, ["habits_variant_0"])
    strategy.build()
    cold = [c.name for c in job.classifiers]

    rows = benchmark(lambda: strategy.fetch(cold))
    assert rows and all(name in rows[0] for name in cold)
