"""H1 — Hypothesis 1: automatic g-tree + mapping generation.

"It is possible to automatically generate a g-tree and database mappings
using an IDE."  The experiment derives g-trees for every form of every
tool in the clinical world and measures coverage: every control gets a
node, every data node maps to a naive-schema column, and the pattern
chain extends the mapping to the physical database — 100% automatic.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.guava import derive_all
from repro.ui.form import naive_schema


def test_h1_derive_all_tools(benchmark, world):
    tools = [source.tool for source in world.sources]

    def derive_everything():
        return {tool.name: derive_all(tool) for tool in tools}

    derived = benchmark(derive_everything)
    assert sum(len(trees) for trees in derived.values()) == sum(
        len(tool.forms) for tool in tools
    )


def test_h1_coverage_report(benchmark, world):
    def measure():
        rows = []
        for source in world.sources:
            trees = derive_all(source.tool)
            for form in source.tool.forms:
                tree = trees[form.name]
                controls = list(form.iter_controls())
                data_controls = form.data_controls()
                schema = naive_schema(form)
                mapped = sum(
                    1
                    for node in tree.data_nodes()
                    if schema.has_column(node.name)
                )
                physical = source.chain.plan_for(form.name)
                rows.append(
                    {
                        "tool": source.tool.name,
                        "form": form.name,
                        "controls": len(controls),
                        "gtree_nodes": tree.node_count() - 1,  # minus form root
                        "data_nodes_mapped": f"{mapped}/{len(data_controls)}",
                        "physical_plan_ops": sum(1 for _ in physical.walk()),
                        "coverage": "100%",
                    }
                )
                assert tree.node_count() - 1 == len(controls)
                assert mapped == len(data_controls)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit_report(
        "H1 / Hypothesis 1 — automatic g-tree + database mapping generation",
        rows,
        notes="every control of every form in every tool gets a node, and "
        "every data node lowers to a physical plan through the pattern chain",
    )
