"""H2 — Hypothesis 2: analysts extract only and all relevant data.

"Usability testing will include measuring precision and recall; analysts
should be able to extract only and all relevant data from contributors
without technical help."  The experiment measures precision/recall of
smoking-status extraction against ground truth for (a) GUAVA+MultiClass
with context-aware per-source classifiers and (b) a context-blind reader
who knows every physical layout but interprets columns by name — the
paper's §1 "a 1 in the field smoker" trap.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis import compare_smoking_extraction
from repro.analysis.baseline import context_blind_smoking, guava_smoking


def test_h2_guava_extraction_cost(benchmark, world):
    extraction = benchmark(lambda: guava_smoking(world))
    assert extraction.current or extraction.ex or extraction.never


def test_h2_context_blind_extraction_cost(benchmark, world):
    extraction = benchmark(lambda: context_blind_smoking(world))
    assert extraction.current or extraction.ex or extraction.never


def test_h2_report(benchmark, world):
    comparisons = benchmark.pedantic(
        lambda: compare_smoking_extraction(world), rounds=1, iterations=1
    )
    rows = [row for c in comparisons for row in c.as_rows()]
    by_method = {c.method: c for c in comparisons}
    guava = by_method["guava+multiclass"]
    blind = by_method["context-blind"]

    # The paper's predicted shape: GUAVA perfect, context-blind degraded
    # exactly where UI semantics diverge from column naming.
    for pr in (guava.current, guava.ex, guava.never):
        assert pr.precision == 1.0 and pr.recall == 1.0
    assert blind.current.precision < 1.0
    assert blind.ex.recall < 1.0
    assert blind.never.precision == 1.0 and blind.never.recall == 1.0

    emit_report(
        "H2 / Hypothesis 2 — precision/recall of smoking-status extraction",
        rows,
        notes="context-blind misreads MedScribe's EVER-smoked checkbox as "
        "current smoking (the paper's §1 example); GUAVA's g-tree context "
        "yields P=R=1.0",
    )
