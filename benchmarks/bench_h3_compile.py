"""H3 — Hypothesis 3: studies compile into ETL workflows.

Two halves: (a) every study in the suite compiles to a workflow whose
output equals direct classifier evaluation; (b) the classifier language's
guards all normalize to unions of conjunctive queries — "we believe that
the classifier language as specified here is equivalent in expressive
power to conjunctive queries with union", checked over the entire real
classifier corpus via DNF normalization.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis import build_study1, build_study2
from repro.analysis.classifiers import vendor_classifiers_for
from repro.etl import compile_study
from repro.expr.analysis import to_dnf
from repro.relational import Database


def _studies(world):
    return [
        build_study1(world),
        build_study2(world, "1y"),
        build_study2(world, "10y"),
        build_study2(world, "ever"),
    ]


def test_h3_compile_all_studies(benchmark, world):
    studies = _studies(world)

    def compile_all():
        return [compile_study(study, Database("wh")) for study in studies]

    workflows = benchmark(compile_all)
    assert all(wf.stages() == ["extract", "classify", "study"] for wf in workflows)


def test_h3_equivalence_report(benchmark, world):
    studies = _studies(world)

    def verify_all():
        rows = []
        for study in studies:
            direct = study.run().rows("Procedure")
            outputs, _ = compile_study(study, Database("wh")).run()
            etl = outputs["Procedure__load"]
            key = lambda r: (r["source"], r["record_id"])
            equivalent = sorted(etl, key=key) == sorted(direct, key=key)
            rows.append(
                {
                    "study": study.name,
                    "sources": len(study.bindings),
                    "elements": len(study.elements),
                    "rows": len(etl),
                    "etl_equals_direct": equivalent,
                }
            )
        return rows

    rows = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert all(row["etl_equals_direct"] for row in rows)
    emit_report(
        "H3 / Hypothesis 3 — every study compiles to an equivalent ETL workflow",
        rows,
    )


def test_h3_ucq_corpus_report(benchmark, world):
    """The expressiveness half: all real guards are unions of conjunctions."""

    def analyze():
        rows = []
        for source in world.sources:
            vendor = vendor_classifiers_for(source)
            classifiers = vendor.base + [
                vendor.habits_cancer,
                vendor.habits_chemistry,
                vendor.ex_smoker_1y,
                vendor.ex_smoker_10y,
                vendor.ex_smoker_ever,
            ]
            guards = [rule.guard for c in classifiers for rule in c.rules]
            clause_counts = [len(to_dnf(guard)) for guard in guards]
            rows.append(
                {
                    "source": source.name,
                    "classifiers": len(classifiers),
                    "rules": len(guards),
                    "all_union_of_conjunctions": all(
                        c.is_union_of_conjunctions() for c in classifiers
                    ),
                    "max_dnf_clauses": max(clause_counts),
                }
            )
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert all(row["all_union_of_conjunctions"] for row in rows)
    emit_report(
        "H3 — classifier language is within conjunctive queries with union",
        rows,
        notes="every guard in the real classifier corpus normalizes to DNF "
        "with a small clause count",
    )
