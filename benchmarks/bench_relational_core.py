"""Core-engine microbenchmarks: streaming/compiled/optimized vs interpreted.

Times the relational substrate's hot paths twice per case — once through
``optimize(plan, db).execute(db)`` (streaming operators, compiled
predicates, index lowering) and once through
:func:`repro.relational.interpret.execute_interpreted`, the seed executor
preserved as the reference implementation.  The speedup column is therefore
an honest before/after of this engine revision, measured in-process.

Runs two ways:

* ``pytest benchmarks/bench_relational_core.py`` — pytest-benchmark cases
  plus a summary table through the shared report channel;
* ``python benchmarks/bench_relational_core.py`` — standalone mode (no
  pytest needed, CI-friendly) writing a scratch
  ``benchmarks/reports/relational_core.latest.json``; pass ``--json`` to
  promote the run to the committed ``BENCH_relational_core.json``
  baseline.
"""

from __future__ import annotations

import sys

try:  # package import under pytest, bare import as a standalone script
    from benchmarks._payload import resolve_json_path, write_payload
except ImportError:  # pragma: no cover - script mode
    from _payload import resolve_json_path, write_payload
import os
import time

from repro.expr.ast import BinaryOp, Identifier, Literal
from repro.patterns import (
    AuditPattern,
    EncodingPattern,
    LookupPattern,
    MultivaluePattern,
    PatternChain,
)
from repro.relational import (
    AggregateSpec,
    Aggregate,
    Compute,
    Database,
    DataType,
    HashPartitioning,
    Join,
    Limit,
    RangePartitioning,
    Scan,
    Select,
    Sort,
    TableSchema,
    Vectorized,
    execute_interpreted,
    optimize,
    set_costing_enabled,
    set_statistics_enabled,
)

N_ROWS = 3_000
N_VISITS = 6_000
N_VITALS_COLUMNS = 12
CHAIN_ROWS = 300
CHAIN_DEPTH = 4

# -- partitioned / parallel (PP) tier ------------------------------------------
# A million-row tier sized so partition pruning and morsel parallelism are
# measured where they matter; REPRO_PP_ROWS scales it down for quick local
# iterations (the committed baseline is produced at the default).
PP_ROWS = int(os.environ.get("REPRO_PP_ROWS", "1000000"))
PP_LAB_ROWS = max(1, PP_ROWS // 4)
PP_PARTITIONS = 64
PP_PATIENTS = max(1, PP_ROWS // 500)
PP_WORKERS = 4

# -- cost-based (CB) tier ------------------------------------------------------
# Sized so the three cost-based decisions are measured at the scale where
# they pay: a 10^3-row probe set against the 10^6-row ``readings`` table
# for the build-side flip, and a fact table big enough that join order
# and conjunct order dominate wall time.
CB_COHORT_ROWS = 1_000
CB_FACT_ROWS = max(1, PP_ROWS // 8)


# -- fixture data --------------------------------------------------------------


def build_database() -> Database:
    db = Database("bench_core")
    db.create_table(
        TableSchema.build(
            "patients",
            [
                ("patient_id", DataType.INTEGER),
                ("age", DataType.INTEGER),
                ("name", DataType.TEXT),
                ("site", DataType.TEXT),
            ],
            primary_key=["patient_id"],
        )
    )
    db.create_table(
        TableSchema.build(
            "visits",
            [
                ("visit_id", DataType.INTEGER),
                ("patient_id", DataType.INTEGER),
                ("score", DataType.INTEGER),
            ],
            primary_key=["visit_id"],
        )
    )
    db.insert(
        "patients",
        (
            {
                "patient_id": i,
                "age": 20 + (i * 7) % 60,
                "name": f"p{i:05d}",
                "site": f"site{i % 40}",
            }
            for i in range(N_ROWS)
        ),
    )
    db.insert(
        "visits",
        (
            {"visit_id": i, "patient_id": i % N_ROWS, "score": (i * 13) % 100}
            for i in range(N_VISITS)
        ),
    )
    db.create_table(
        TableSchema.build(
            "vitals",
            [("patient_id", DataType.INTEGER)]
            + [(f"m{j}", DataType.INTEGER) for j in range(N_VITALS_COLUMNS)],
            primary_key=["patient_id"],
        )
    )
    db.insert(
        "vitals",
        (
            {"patient_id": i, **{f"m{j}": (i * (j + 3)) % 100 for j in range(N_VITALS_COLUMNS)}}
            for i in range(N_ROWS)
        ),
    )
    db.table("patients").create_index(("site",))
    return db


_PP_DB: Database | None = None


def build_pp_database() -> Database:
    """The PP-tier database, built once per process (it is large).

    ``events``: PP_ROWS rows hash-partitioned on ``patient_id`` — the
    clinical access pattern is per-patient point lookups.  ``labs``:
    PP_ROWS/4 rows range-partitioned on ``day`` by week — time-banded
    study windows.
    """
    global _PP_DB
    if _PP_DB is not None:
        return _PP_DB
    db = Database("bench_pp")
    db.create_table(
        TableSchema.build(
            "events",
            [
                ("patient_id", DataType.INTEGER),
                ("day", DataType.INTEGER),
                ("value", DataType.INTEGER),
            ],
            partition_by=HashPartitioning("patient_id", PP_PARTITIONS),
        )
    )
    db.insert(
        "events",
        (
            {
                # Knuth-style scramble so patients spread over partitions.
                "patient_id": (i * 2654435761) % PP_PATIENTS,
                "day": i % 365,
                "value": (i * 13) % 1000,
            }
            for i in range(PP_ROWS)
        ),
    )
    db.create_table(
        TableSchema.build(
            "labs",
            [("day", DataType.INTEGER), ("value", DataType.INTEGER)],
            partition_by=RangePartitioning("day", tuple(range(7, 365, 7))),
        )
    )
    db.insert(
        "labs",
        (
            {"day": (i * 7919) % 365, "value": (i * 31) % 1000}
            for i in range(PP_LAB_ROWS)
        ),
    )
    # ``readings``: PP_ROWS rows, deliberately UNpartitioned — the zone-map
    # tier measures chunk skipping where partition pruning cannot help.
    # ``seq`` is clustered (insertion order), so a narrow range touches few
    # chunks; ``vendor`` is 8 distinct strings, the dictionary sweet spot.
    db.create_table(
        TableSchema.build(
            "readings",
            [
                ("seq", DataType.INTEGER),
                ("vendor", DataType.TEXT),
                ("value", DataType.INTEGER),
            ],
        )
    )
    vendors = tuple(f"vendor{j}" for j in range(8))
    db.insert(
        "readings",
        (
            {"seq": i, "vendor": vendors[i % 8], "value": (i * 13) % 1000}
            for i in range(PP_ROWS)
        ),
    )
    # -- CB-tier fixtures: cost-based planning ---------------------------------
    # ``cohort``: a tiny probe set against the 10^6-row ``readings`` — the
    # build-side-flip case.  ``facts`` + three PK dimensions sized so the
    # authored join order is the worst one — the chain-reorder case.
    db.create_table(
        TableSchema.build(
            "cohort",
            [("seq", DataType.INTEGER), ("tag", DataType.TEXT)],
            primary_key=["seq"],
        )
    )
    stride = max(1, PP_ROWS // CB_COHORT_ROWS)
    db.insert(
        "cohort",
        ({"seq": i * stride, "tag": f"c{i}"} for i in range(CB_COHORT_ROWS)),
    )
    db.create_table(
        TableSchema.build(
            "facts",
            [
                ("a", DataType.INTEGER),
                ("b", DataType.INTEGER),
                ("c", DataType.INTEGER),
                ("x", DataType.INTEGER),
                ("v", DataType.INTEGER),
                ("note", DataType.TEXT),
            ],
        )
    )
    db.insert(
        "facts",
        (
            # ``note`` is unique, so the dictionary refuses it and LIKE
            # stays a genuine per-row regex — the expensive conjunct the
            # reorder case hoists a cheap equality above.  ``v`` is the
            # selective probe column: unclustered on purpose, so zone
            # maps cannot pre-skip its chunks for either conjunct order.
            {
                "a": i % 50,
                "b": i % 300,
                "c": i % 900,
                "x": i,
                "v": (i * 37) % 10_000,
                "note": f"note-{i}",
            }
            for i in range(CB_FACT_ROWS)
        ),
    )
    # d_c keeps every fact (900/900 c-values), d_a keeps 80%, d_b keeps
    # 10% — so "d_c first" (as authored) is maximally wasteful and the
    # greedy reorder should run d_b, then d_a, then d_c.
    for dim, column, count in (("d_a", "a", 40), ("d_b", "b", 30), ("d_c", "c", 900)):
        db.create_table(
            TableSchema.build(
                dim,
                [(column, DataType.INTEGER), (f"p_{column}", DataType.TEXT)],
                primary_key=[column],
            )
        )
        db.insert(dim, ({column: i, f"p_{column}": f"{dim}{i}"} for i in range(count)))
    _PP_DB = db
    return db


def build_chain() -> tuple[PatternChain, Database]:
    """The A6 depth-4 pattern chain over the 'screen' schema."""
    schemas = {
        "screen": TableSchema.build(
            "screen",
            [
                ("record_id", DataType.INTEGER),
                ("checked", DataType.BOOLEAN),
                ("category", DataType.TEXT),
                ("tags", DataType.TEXT),
            ],
            primary_key=["record_id"],
        )
    }
    chain = PatternChain(
        schemas,
        [
            MultivaluePattern("screen", "tags", "screen_tags"),
            LookupPattern({("screen", "category"): "category_codes"}),
            EncodingPattern({("screen", "checked"): {True: "Y", False: "N"}}),
            AuditPattern(),
        ][:CHAIN_DEPTH],
    )
    db = Database("bench_chain")
    chain.deploy(db)
    for record_id in range(1, CHAIN_ROWS + 1):
        chain.write(
            db,
            "screen",
            {
                "record_id": record_id,
                "checked": record_id % 2 == 0,
                "category": ("Never", "Current", "Previous")[record_id % 3],
                "tags": "a;b" if record_id % 2 else None,
            },
        )
    return chain, db


# -- cases ---------------------------------------------------------------------


def _filtered_scan_plan():
    return Select(
        Scan("patients"),
        BinaryOp(
            "AND",
            BinaryOp(">=", Identifier.of("age"), Literal(40)),
            BinaryOp("<", Identifier.of("age"), Literal(60)),
        ),
    )


def _indexed_lookup_plan():
    return Select(
        Scan("patients"), BinaryOp("=", Identifier.of("site"), Literal("site7"))
    )


def _join_aggregate_plan():
    return Aggregate(
        Select(
            Join(Scan("patients"), Scan("visits"), (("patient_id", "patient_id"),)),
            BinaryOp(">=", Identifier.of("score"), Literal(50)),
        ),
        ("site",),
        (
            AggregateSpec("COUNT", None, "n"),
            AggregateSpec("AVG", "score", "mean_score"),
        ),
    )


def _topk_plan():
    return Limit(Sort(Scan("visits"), (("score", False),)), 25)


def _wide_scan_plan():
    """Filter + derive over the 13-column table: the columnar sweet spot."""
    return Compute(
        Select(Scan("vitals"), BinaryOp(">=", Identifier.of("m0"), Literal(10))),
        (("mix", BinaryOp("+", Identifier.of("m1"), Identifier.of("m2"))),),
    )


def _join_aggregate_vectorized_plan():
    """Fully kernel-supported join→compute→aggregate (no index fallback)."""
    return Aggregate(
        Compute(
            Join(Scan("patients"), Scan("visits"), (("patient_id", "patient_id"),)),
            (("band", BinaryOp("%", Identifier.of("score"), Literal(10))),),
        ),
        ("site", "band"),
        (
            AggregateSpec("COUNT", None, "n"),
            AggregateSpec("MAX", "score", "top_score"),
        ),
    )


def make_cases():
    db = build_database()
    chain, chain_db = build_chain()
    chain_plan = chain.plan_for("screen")
    cases = [
        ("scan", db, Scan("patients")),
        ("filtered_scan", db, _filtered_scan_plan()),
        ("indexed_lookup", db, _indexed_lookup_plan()),
        ("join_aggregate", db, _join_aggregate_plan()),
        ("join_aggregate_vectorized", db, _join_aggregate_vectorized_plan()),
        ("topk", db, _topk_plan()),
        ("wide_scan", db, _wide_scan_plan()),
        (f"pattern_chain_depth{CHAIN_DEPTH}", chain_db, chain_plan),
    ]
    return cases


def _pp_point_plan():
    return Select(
        Scan("events"),
        BinaryOp("=", Identifier.of("patient_id"), Literal(123)),
    )


def _pp_range_plan():
    return Select(
        Scan("labs"),
        BinaryOp(
            "AND",
            BinaryOp(">=", Identifier.of("day"), Literal(210)),
            BinaryOp("<", Identifier.of("day"), Literal(217)),
        ),
    )


def _pp_aggregate_plan():
    return Aggregate(
        Select(
            Scan("events"),
            BinaryOp(">=", Identifier.of("value"), Literal(500)),
        ),
        ("day",),
        (
            AggregateSpec("COUNT", None, "n"),
            AggregateSpec("AVG", "value", "mean_value"),
        ),
    )


def _pp_worker_utilization(plan, db) -> list[dict]:
    """Per-worker utilization from one traced parallel run of ``plan``."""
    from repro.obs import explain_analyze

    report = explain_analyze(plan, db, executor="parallel", workers=PP_WORKERS)
    for _, span in report.node_spans():
        utilization = span.attrs.get("worker_utilization")
        if utilization is not None:
            return list(utilization)
    return []


def run_pp() -> list[dict]:
    """The PP tier: pruning vs full batch scans, serial vs parallel.

    The comparison partner here is NOT the interpreter (at 10^6 rows it
    only inflates speedups); pruning cases are measured against the same
    predicate on the unpruned batch path, and the parallel aggregate
    against its own serial batch execution — honest numbers for exactly
    the change each case isolates.
    """
    db = build_pp_database()
    results = []

    for name, plan in (("pp_point_pruned", _pp_point_plan()), ("pp_range_pruned", _pp_range_plan())):
        pruned = optimize(plan, db)
        unpruned = Vectorized(plan)
        rows = pruned.execute(db)
        assert rows == unpruned.execute(db), f"{name}: pruned and unpruned disagree"
        base_s = _time(lambda: unpruned.execute(db), repeats=3)
        fast_s = _time(lambda: pruned.execute(db), repeats=3)
        results.append(
            {
                "case": name,
                "rows_out": len(rows),
                "baseline_ms": round(base_s * 1000, 3),
                "optimized_ms": round(fast_s * 1000, 3),
                "speedup": round(base_s / fast_s, 2),
            }
        )
        print(
            f"{name:<28} full batch  {base_s * 1000:9.3f} ms   "
            f"pruned    {fast_s * 1000:9.3f} ms   x{base_s / fast_s:6.2f}",
            flush=True,
        )

    agg = optimize(_pp_aggregate_plan(), db)
    serial_rows = agg.execute(db)
    assert serial_rows == agg.execute(db, parallel=PP_WORKERS), (
        "parallel aggregate disagrees with serial"
    )
    serial_s = _time(lambda: agg.execute(db), repeats=3)
    par_s = _time(lambda: agg.execute(db, parallel=PP_WORKERS), repeats=3)
    results.append(
        {
            "case": "pp_scan_aggregate_serial",
            "rows_out": len(serial_rows),
            "optimized_ms": round(serial_s * 1000, 3),
            "speedup": 1.0,
        }
    )
    results.append(
        {
            "case": f"pp_scan_aggregate_parallel{PP_WORKERS}",
            "rows_out": len(serial_rows),
            "baseline_ms": round(serial_s * 1000, 3),
            "optimized_ms": round(par_s * 1000, 3),
            # Honest thread-pool number: ~1.0x under the GIL on CPU-bound
            # kernels; the utilization trace explains where time went.
            "speedup": round(serial_s / par_s, 2),
            "workers": PP_WORKERS,
            "worker_utilization": _pp_worker_utilization(_pp_aggregate_plan(), db),
        }
    )
    print(
        f"{'pp_scan_aggregate':<28} serial     {serial_s * 1000:9.3f} ms   "
        f"parallel{PP_WORKERS} {par_s * 1000:8.3f} ms   x{serial_s / par_s:6.2f}",
        flush=True,
    )
    return results


def _zm_scan_plan():
    lo = PP_ROWS // 2
    width = max(1, PP_ROWS // 64)  # selectivity 1/64 on clustered ``seq``
    return Select(
        Scan("readings"),
        BinaryOp(
            "AND",
            BinaryOp(">=", Identifier.of("seq"), Literal(lo)),
            BinaryOp("<", Identifier.of("seq"), Literal(lo + width)),
        ),
    )


def _zm_groupby_plan():
    # Count-only on purpose: it isolates the coded grouping itself (the
    # Counter fast path); value-collecting specs time the shared
    # ``_aggregate_values`` machinery, which coding does not change.
    return Aggregate(
        Scan("readings"),
        ("vendor",),
        (AggregateSpec("COUNT", None, "n"),),
    )


def _zm_chunks_skipped(plan, db) -> int:
    """chunks_skipped from one traced batch run of ``plan``."""
    from repro.obs import explain_analyze

    report = explain_analyze(plan, db, executor="batch")
    for _, span in report.node_spans():
        skipped = span.attrs.get("chunks_skipped")
        if skipped is not None:
            return int(skipped)
    return 0


def run_zm() -> list[dict]:
    """The ZM tier: zone-map skipping and dictionary-coded kernels.

    Baseline = the identical vectorized plan with statistics disabled
    (:func:`set_statistics_enabled`), so each case isolates exactly the
    statistics layer — same kernels, same batches, stats on vs off.
    """
    db = build_pp_database()
    results = []
    cases = (
        ("zm_selective_scan", _zm_scan_plan()),
        ("zm_groupby_dict", _zm_groupby_plan()),
    )
    for name, plan in cases:
        vectorized = Vectorized(plan)
        rows = vectorized.execute(db)  # also warms the version-keyed caches
        previous = set_statistics_enabled(False)
        try:
            assert rows == vectorized.execute(db), (
                f"{name}: stats-on and stats-off disagree"
            )
            base_s = _time(lambda: vectorized.execute(db), repeats=3)
        finally:
            set_statistics_enabled(previous)
        fast_s = _time(lambda: vectorized.execute(db), repeats=3)
        result = {
            "case": name,
            "rows_out": len(rows),
            "baseline_ms": round(base_s * 1000, 3),
            "optimized_ms": round(fast_s * 1000, 3),
            "speedup": round(base_s / fast_s, 2),
        }
        if name == "zm_selective_scan":
            result["chunks_skipped"] = _zm_chunks_skipped(plan, db)
        results.append(result)
        print(
            f"{name:<28} stats off   {base_s * 1000:9.3f} ms   "
            f"stats on  {fast_s * 1000:9.3f} ms   x{base_s / fast_s:6.2f}",
            flush=True,
        )
    return results


def _cb_flip_plan():
    """Tiny cohort joined against 10^6 readings: left build or bust."""
    return Join(Scan("cohort"), Scan("readings"), (("seq", "seq"),))


def _cb_chain_plan():
    """Three-dimension chain authored worst-first (d_c keeps every row)."""
    return Join(
        Join(
            Join(Scan("facts"), Scan("d_c"), (("c", "c"),)),
            Scan("d_a"),
            (("a", "a"),),
        ),
        Scan("d_b"),
        (("b", "b"),),
    )


def _cb_conjunct_plan():
    """Expensive LIKE authored before a highly selective equality.

    ``note`` is high-cardinality (dictionary refused), so the LIKE is a
    real per-row regex; ``v`` is unclustered, so zone maps cannot skip
    chunks for either order — the case isolates conjunct ordering alone.
    """
    return Select(
        Scan("facts"),
        BinaryOp(
            "AND",
            # Multi-wildcard pattern: the regex backtracks, so each row
            # costs several times an integer equality — exactly the
            # conjunct worth deferring until after the cheap filter.
            BinaryOp("LIKE", Identifier.of("note"), Literal("%n%4%2%")),
            # v = 5577 keeps rows with x ≡ 421 (mod 10000), whose notes
            # ("note-421", "note-10421", …) also match the pattern — the
            # case returns real rows instead of a degenerate empty set.
            BinaryOp("=", Identifier.of("v"), Literal(5577)),
        ),
    )


def run_cb() -> list[dict]:
    """The CB tier: cost-based planning on vs off, same plans, same data.

    Baseline = the identical plan optimized with
    :func:`set_costing_enabled` off — same kernels, same statistics, so
    each case isolates exactly one planning decision (build side, join
    order, conjunct order).
    """
    db = build_pp_database()
    results = []
    cases = (
        ("cb_build_side_flip", _cb_flip_plan()),
        ("cb_join_reorder", _cb_chain_plan()),
        ("cb_conjunct_reorder", _cb_conjunct_plan()),
    )
    for name, plan in cases:
        costed = optimize(plan, db)
        previous = set_costing_enabled(False)
        try:
            uncosted = optimize(plan, db)
        finally:
            set_costing_enabled(previous)
        rows = costed.execute(db)
        assert rows == uncosted.execute(db), f"{name}: costed and uncosted disagree"
        base_s = _time(lambda: uncosted.execute(db), repeats=3)
        fast_s = _time(lambda: costed.execute(db), repeats=3)
        results.append(
            {
                "case": name,
                "rows_out": len(rows),
                "baseline_ms": round(base_s * 1000, 3),
                "optimized_ms": round(fast_s * 1000, 3),
                "speedup": round(base_s / fast_s, 2),
            }
        )
        print(
            f"{name:<28} costing off {base_s * 1000:9.3f} ms   "
            f"costed    {fast_s * 1000:9.3f} ms   x{base_s / fast_s:6.2f}",
            flush=True,
        )
    return results


# -- morsel-process (MP) tier --------------------------------------------------
# Process-pool execution over shared durable segments, measured against the
# same plan's serial batch execution with a *warm* segment (the cold build
# is its own case).  On a single-vCPU runner the process numbers honestly
# sit at or below 1.0x — pickling and queue hops with no second core to pay
# for them; the auto fallback policy exists precisely because of that — so
# the committed baseline gates wall-time, never the speedup column.
MP_ROWS = int(os.environ.get("REPRO_MP_ROWS", "400000"))
MP_PATIENTS = max(1, MP_ROWS // 200)
MP_WORKER_STEPS = (1, 2, 4)


def build_mp_database() -> Database:
    db = Database("bench-mp")
    db.create_table(
        TableSchema.build(
            "mp_events",
            [
                ("patient_id", DataType.INTEGER),
                ("day", DataType.INTEGER),
                ("value", DataType.INTEGER),
            ],
        )
    )
    db.insert(
        "mp_events",
        [
            {
                "patient_id": i % MP_PATIENTS,
                "day": i % 365,
                "value": (i * 37) % 1000,
            }
            for i in range(MP_ROWS)
        ],
    )
    db.create_table(
        TableSchema.build(
            "mp_patients",
            [("patient_id", DataType.INTEGER), ("site", DataType.TEXT)],
        )
    )
    db.insert(
        "mp_patients",
        [{"patient_id": i, "site": f"s{i % 7}"} for i in range(MP_PATIENTS)],
    )
    return db


def _mp_aggregate_plan():
    return Aggregate(
        Select(
            Scan("mp_events"),
            BinaryOp(">=", Identifier.of("value"), Literal(500)),
        ),
        ("day",),
        (
            AggregateSpec("COUNT", None, "n"),
            AggregateSpec("AVG", "value", "mean_value"),
        ),
    )


def _mp_join_plan():
    return Join(
        Select(
            Scan("mp_events"),
            BinaryOp("<", Identifier.of("day"), Literal(120)),
        ),
        Scan("mp_patients"),
        (("patient_id", "patient_id"),),
        how="inner",
    )


def run_mp() -> list[dict]:
    """The MP tier: process workers over shared segments vs serial batch.

    The pool mode is *forced* to ``process`` for the measured runs (the
    auto policy would keep sub-50k-row stages on threads), the shared
    segment is warmed once before timing, and every parallel result is
    asserted bit-identical to its serial partner before the clock starts.
    """
    from repro.relational import available_cores, set_worker_pool_mode
    from repro.relational.procpool import shutdown_worker_pools
    from repro.storage.segments import (
        Segment,
        segment_scratch_dir,
        table_segment,
        write_segment,
    )

    db = build_mp_database()
    table = db.table("mp_events")
    cores = available_cores()
    results = []

    agg = optimize(_mp_aggregate_plan(), db)
    serial_rows = agg.execute(db)
    serial_s = _time(lambda: agg.execute(db), repeats=3)
    results.append(
        {
            "case": "mp_scan_aggregate_serial",
            "rows_out": len(serial_rows),
            "optimized_ms": round(serial_s * 1000, 3),
            "speedup": 1.0,
            "cores": cores,
        }
    )
    print(
        f"{'mp_scan_aggregate_serial':<28} serial     {serial_s * 1000:9.3f} ms"
        f"   ({cores} core{'s' if cores != 1 else ''})",
        flush=True,
    )

    set_worker_pool_mode("process")
    try:
        table_segment(table)  # warm the shared segment once, off the clock
        for workers in MP_WORKER_STEPS:
            assert agg.execute(db, parallel=workers) == serial_rows, (
                f"mp aggregate proc{workers} disagrees with serial"
            )
            par_s = _time(lambda: agg.execute(db, parallel=workers), repeats=3)
            results.append(
                {
                    "case": f"mp_scan_aggregate_proc{workers}",
                    "rows_out": len(serial_rows),
                    "baseline_ms": round(serial_s * 1000, 3),
                    "optimized_ms": round(par_s * 1000, 3),
                    "speedup": round(serial_s / par_s, 2),
                    "workers": workers,
                    "cores": cores,
                }
            )
            print(
                f"{'mp_scan_aggregate_proc' + str(workers):<28} serial     "
                f"{serial_s * 1000:9.3f} ms   proc{workers}     "
                f"{par_s * 1000:9.3f} ms   x{serial_s / par_s:6.2f}",
                flush=True,
            )

        join = optimize(_mp_join_plan(), db)
        join_rows = join.execute(db)
        join_s = _time(lambda: join.execute(db), repeats=3)
        assert join.execute(db, parallel=4) == join_rows, (
            "mp join proc4 disagrees with serial"
        )
        jpar_s = _time(lambda: join.execute(db, parallel=4), repeats=3)
        results.append(
            {
                "case": "mp_join_probe_proc4",
                "rows_out": len(join_rows),
                "baseline_ms": round(join_s * 1000, 3),
                "optimized_ms": round(jpar_s * 1000, 3),
                "speedup": round(join_s / jpar_s, 2),
                "workers": 4,
                "cores": cores,
            }
        )
        print(
            f"{'mp_join_probe_proc4':<28} serial     {join_s * 1000:9.3f} ms   "
            f"proc4     {jpar_s * 1000:9.3f} ms   x{join_s / jpar_s:6.2f}",
            flush=True,
        )
    finally:
        set_worker_pool_mode(None)
        shutdown_worker_pools()

    # Segment amortization: the cold build (columnar encode + CRC frames +
    # fsync + attach) against the warm full read (mmap page-in only).  The
    # fixed target path bypasses the uuid scheme on purpose — Segment() is
    # opened directly, never through the path-keyed attach cache.
    columns = table.column_snapshot()
    names = table.schema.column_names
    dtypes = {name: table.schema.column(name).dtype for name in names}
    target = segment_scratch_dir() / "bench-mp-cold.seg"

    def cold() -> None:
        path = write_segment(target, columns, names, dtypes, table="mp_events")
        Segment(path).close()

    cold_s = _time(cold, repeats=3)
    target.unlink(missing_ok=True)
    warm_segment = table_segment(table)
    warm_s = _time(
        lambda: sum(batch.length for batch in warm_segment.batches()),
        repeats=3,
    )
    results.append(
        {
            "case": "mp_segment_cold",
            "rows_out": MP_ROWS,
            "optimized_ms": round(cold_s * 1000, 3),
            "speedup": 1.0,
        }
    )
    results.append(
        {
            "case": "mp_segment_warm",
            "rows_out": MP_ROWS,
            "baseline_ms": round(cold_s * 1000, 3),
            "optimized_ms": round(warm_s * 1000, 3),
            # Amortization ratio: how many warm reads one cold build buys.
            "speedup": round(cold_s / warm_s, 2),
        }
    )
    print(
        f"{'mp_segment_cold':<28} build      {cold_s * 1000:9.3f} ms",
        flush=True,
    )
    print(
        f"{'mp_segment_warm':<28} cold       {cold_s * 1000:9.3f} ms   "
        f"warm read {warm_s * 1000:9.3f} ms   x{cold_s / warm_s:6.2f}",
        flush=True,
    )
    return results


# -- standalone runner ---------------------------------------------------------


def _time(fn, *, repeats: int = 5, min_runtime: float = 0.2) -> float:
    """Best-of-``repeats`` seconds per call, auto-scaling the loop count."""
    loops = 1
    while True:
        started = time.perf_counter()
        for _ in range(loops):
            fn()
        elapsed = time.perf_counter() - started
        if elapsed >= min_runtime / 2 or loops >= 1 << 16:
            break
        loops *= 2
    best = elapsed / loops
    for _ in range(repeats - 1):
        started = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, (time.perf_counter() - started) / loops)
    return best


def run(json_path: str | None = None) -> list[dict]:
    results = []
    for name, db, plan in make_cases():
        optimized = optimize(plan, db)
        fast = lambda: optimized.execute(db)  # noqa: E731
        slow = lambda: execute_interpreted(plan, db)  # noqa: E731
        assert fast() == slow(), f"case {name}: optimized and interpreted disagree"
        fast_s = _time(fast)
        slow_s = _time(slow)
        results.append(
            {
                "case": name,
                "rows_out": len(fast()),
                "interpreted_ms": round(slow_s * 1000, 3),
                "optimized_ms": round(fast_s * 1000, 3),
                "speedup": round(slow_s / fast_s, 2),
            }
        )
        print(
            f"{name:<28} interpreted {slow_s * 1000:9.3f} ms   "
            f"optimized {fast_s * 1000:9.3f} ms   x{slow_s / fast_s:6.2f}",
            flush=True,
        )
    results.extend(run_pp())
    results.extend(run_zm())
    results.extend(run_cb())
    results.extend(run_mp())
    if json_path:
        from repro.relational import available_cores

        payload = {
            "benchmark": "relational_core",
            "n_rows": N_ROWS,
            "n_visits": N_VISITS,
            "chain_rows": CHAIN_ROWS,
            "chain_depth": CHAIN_DEPTH,
            "pp_rows": PP_ROWS,
            "pp_partitions": PP_PARTITIONS,
            "mp_rows": MP_ROWS,
            # Bench provenance: process-pool speedups only mean anything
            # relative to the cores the producing machine actually had.
            "cores": available_cores(),
            "results": results,
        }
        write_payload(json_path, payload)
        print(f"wrote {json_path}")
    return results


def main(argv: list[str]) -> int:
    json_path, promoted = resolve_json_path(argv, "relational_core")
    run(json_path)
    if not promoted:
        print("scratch run; pass --json to promote to the committed baseline")
    return 0


# -- pytest-benchmark cases ----------------------------------------------------


def _pytest_cases():
    import pytest

    return pytest.mark.parametrize(
        "case_name", [name for name, _, _ in make_cases()]
    )


if "pytest" in sys.modules:  # imported by pytest collection
    import pytest

    _CASES = {name: (db, plan) for name, db, plan in make_cases()}

    @pytest.fixture(params=sorted(_CASES))
    def core_case(request):
        db, plan = _CASES[request.param]
        return request.param, db, plan

    def test_optimized_execution(benchmark, core_case):
        name, db, plan = core_case
        optimized = optimize(plan, db)
        result = benchmark(lambda: optimized.execute(db))
        assert result == execute_interpreted(plan, db)

    def test_interpreted_baseline(benchmark, core_case):
        name, db, plan = core_case
        benchmark(lambda: execute_interpreted(plan, db))

    def test_core_report(benchmark):
        from benchmarks.conftest import emit_report

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        emit_report(
            "core engine — streaming/compiled/optimized vs interpreted",
            rows,
            notes="interpreted = seed executor preserved in "
            "repro.relational.interpret; same plans, same databases",
        )
        by_case = {row["case"]: row["speedup"] for row in rows}
        assert by_case["filtered_scan"] >= 3.0
        assert by_case["indexed_lookup"] >= 3.0
        assert by_case[f"pattern_chain_depth{CHAIN_DEPTH}"] >= 1.5
        assert by_case["join_aggregate_vectorized"] >= 3.0
        # PP tier: pruning must cut scans by an order of magnitude.  The
        # thread-parallel case is deliberately NOT gated on a speedup —
        # under the GIL ~1.0x is the honest expectation; the number is
        # reported, not asserted.
        assert by_case["pp_point_pruned"] >= 10.0
        assert by_case["pp_range_pruned"] >= 10.0
        assert f"pp_scan_aggregate_parallel{PP_WORKERS}" in by_case
        # ZM tier: chunk skipping must dominate a 1/64-selective clustered
        # scan; dictionary-coded grouping must beat value-keyed grouping.
        assert by_case["zm_selective_scan"] >= 5.0
        assert by_case["zm_groupby_dict"] >= 1.5
        scan_row = next(r for r in rows if r["case"] == "zm_selective_scan")
        assert scan_row["chunks_skipped"] > 0
        # CB tier: the build-side flip must dominate a tiny-probe join and
        # conjunct reordering must pay on a selective scan.  The chain
        # reorder is reported but not speedup-gated — its margin depends
        # on dimension fan-out, which REPRO_PP_ROWS rescales.
        assert by_case["cb_build_side_flip"] >= 2.0
        assert by_case["cb_conjunct_reorder"] >= 1.3
        assert "cb_join_reorder" in by_case


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
