"""SC — scalability supplement: end-to-end cost vs world size.

Not a paper artifact, but the natural question about the architecture:
how does per-study cost grow with data volume?  Everything in the
pipeline is a linear pass (extract, classify, union, filter), so study
time should scale linearly in the number of procedures — which the sweep
confirms.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit_report
from repro.analysis import build_study1
from repro.clinical import build_world

SIZES = (100, 300, 900)


@pytest.mark.parametrize("size", SIZES)
def test_study1_at_scale(benchmark, size):
    world = build_world(size, seed=7)
    study = build_study1(world)
    result = benchmark(study.run)
    assert result.count("Procedure") == size


def test_scale_report(benchmark):
    def sweep():
        rows = []
        for size in SIZES:
            started = time.perf_counter()
            world = build_world(size, seed=7)
            build_seconds = time.perf_counter() - started

            study = build_study1(world)
            started = time.perf_counter()
            result = study.run()
            run_seconds = time.perf_counter() - started
            rows.append(
                {
                    "procedures": size,
                    "world_build_ms": round(build_seconds * 1000, 1),
                    "study1_run_ms": round(run_seconds * 1000, 1),
                    "rows_integrated": result.count("Procedure"),
                    "us_per_procedure": round(run_seconds * 1e6 / size, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Linear scaling: per-procedure cost roughly flat (allow 3x drift for
    # constant overheads at the small end).
    per_unit = [row["us_per_procedure"] for row in rows]
    assert max(per_unit) <= 3 * min(per_unit)
    emit_report(
        "SC — end-to-end study cost vs world size",
        rows,
        notes="every pipeline stage is a linear pass; per-procedure cost "
        "stays roughly constant",
    )
