"""S1 — Study 1 (§2): the hypoxia-interventions funnel.

"Of all patients undergoing upper GI endoscopy, how many had the
indication of Asthma-specific ENT/Pulmonary Reflux symptoms?  Of these,
include only those with no history of renal failure and with
cardiopulmonary and abdominal examinations within normal limits.  How many
of these suffered the complication of transient hypoxia?  Of these, how
many required each of the following interventions: surgery, IV fluids, or
oxygen administration?"

The funnel is computed through the full GUAVA + MultiClass pipeline and
must match the ground-truth funnel exactly (extraction is lossless).
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis import build_study1, run_study1, study1_truth_funnel


def test_study1_execution(benchmark, world):
    study = build_study1(world)
    result = benchmark(study.run)
    assert result.count("Procedure") == world.procedure_count


def test_study1_funnel_report(benchmark, world):
    funnel = benchmark.pedantic(
        lambda: run_study1(world), rounds=1, iterations=1
    )
    truth = study1_truth_funnel(world)
    measured_rows = funnel.as_rows()
    truth_rows = truth.as_rows()
    assert measured_rows == truth_rows

    merged = [
        {
            "stage": m["stage"],
            "measured": m["count"],
            "ground_truth": t["count"],
            "match": m["count"] == t["count"],
        }
        for m, t in zip(measured_rows, truth_rows)
    ]
    emit_report(
        "S1 / Study 1 — hypoxia interventions after upper GI endoscopy",
        merged,
        notes="funnel computed from 3 heterogeneous sources through "
        "per-source classifiers; matches ground truth at every stage",
    )
