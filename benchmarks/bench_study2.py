"""S2 — Study 2 (§2): hypoxia among ex-smokers, under three definitions.

"Of all procedures on ex-smokers, how many had a complication of hypoxia?"
The paper's §2 point: "if a study defines an ex-smoker to be someone who
has quit in the last year, but the user interface indicates that an
ex-smoker is anyone who has ever smoked, the data may not be appropriate
to use" — so the definition must be a per-study classifier choice.  The
experiment runs the study under all three definitions and shows the
cohort (and the answer) changing materially while always matching ground
truth.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_report
from repro.analysis import build_study2, run_study2, study2_truth

DEFINITIONS = ("1y", "10y", "ever")


@pytest.mark.parametrize("definition", DEFINITIONS)
def test_study2_execution(benchmark, world, definition):
    study = build_study2(world, definition)
    result = benchmark(study.run)
    assert result.count("Procedure") == world.procedure_count


def test_study2_report(benchmark, world):
    def run_all():
        return {
            definition: (run_study2(world, definition), study2_truth(world, definition))
            for definition in DEFINITIONS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for definition, (measured, truth) in results.items():
        assert measured.ex_smokers == truth.ex_smokers
        assert measured.ex_smokers_with_hypoxia == truth.ex_smokers_with_hypoxia
        rows.append(
            {
                "ex_smoker_definition": f"quit {definition}",
                "ex_smoker_procedures": measured.ex_smokers,
                "with_hypoxia": measured.ex_smokers_with_hypoxia,
                "rate": round(measured.rate, 3),
                "matches_truth": True,
            }
        )
    # Monotone nesting: stricter definitions give smaller cohorts.
    cohort = [row["ex_smoker_procedures"] for row in rows]
    assert cohort[0] <= cohort[1] <= cohort[2]
    assert cohort[0] < cohort[2]
    emit_report(
        "S2 / Study 2 — ex-smokers with hypoxia, per definition",
        rows,
        notes="the answer changes with the definition: exactly why MultiClass "
        "lets each study pick its own classifier",
    )
