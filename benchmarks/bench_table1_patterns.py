"""T1 — Table 1: database design patterns.

Reproduces the pattern table (all 11 implemented patterns, Table 1 five
flagged) and measures, per pattern: write-path throughput, read-path
(naive reconstruction) latency, and round-trip losslessness.  The paper
claims each pattern's data transformation is mechanical; the experiment
confirms every pattern is lossless, with the Generic (EAV) read path
paying the expected pivot cost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_report
from repro.patterns import (
    AuditPattern,
    BlobPattern,
    EncodingPattern,
    GenericPattern,
    LookupPattern,
    MergePattern,
    MultivaluePattern,
    NaivePattern,
    PartitionPattern,
    PatternChain,
    SplitPattern,
    VersionedPattern,
    pattern_summary,
)
from repro.relational import Database, DataType, TableSchema

SCHEMAS = {
    "screen": TableSchema.build(
        "screen",
        [
            ("record_id", DataType.INTEGER),
            ("checked", DataType.BOOLEAN),
            ("category", DataType.TEXT),
            ("amount", DataType.FLOAT),
            ("tags", DataType.TEXT),
        ],
        primary_key=["record_id"],
    ),
    "note": TableSchema.build(
        "note",
        [("record_id", DataType.INTEGER), ("text", DataType.TEXT)],
        primary_key=["record_id"],
    ),
}

N_ROWS = 400


def _rows():
    categories = ("Never", "Current", "Previous")
    for record_id in range(1, N_ROWS + 1):
        yield {
            "record_id": record_id,
            "checked": record_id % 3 == 0,
            "category": categories[record_id % 3],
            "amount": record_id * 0.5,
            "tags": "a;b" if record_id % 2 else None,
        }


def _chain(name: str) -> PatternChain:
    factories = {
        "naive": lambda: [NaivePattern()],
        "merge": lambda: [MergePattern("all_records", ["screen", "note"])],
        "split": lambda: [
            SplitPattern(
                "screen",
                {"part_a": ["checked", "category"], "part_b": ["amount", "tags"]},
            )
        ],
        "generic": lambda: [GenericPattern(["screen", "note"])],
        "audit": lambda: [AuditPattern()],
        "lookup": lambda: [LookupPattern({("screen", "category"): "category_codes"})],
        "encoding": lambda: [
            EncodingPattern({("screen", "checked"): {True: "Y", False: "N"}})
        ],
        "multivalue": lambda: [MultivaluePattern("screen", "tags", "screen_tags")],
        "versioned": lambda: [VersionedPattern("1.0")],
        "blob": lambda: [BlobPattern(["screen"])],
        "partition": lambda: [
            PartitionPattern("screen", "category", {"Current": "p_cur"}, "p_rest")
        ],
    }
    return PatternChain(SCHEMAS, factories[name]())


ALL_PATTERN_NAMES = [
    "naive",
    "merge",
    "split",
    "generic",
    "audit",
    "lookup",
    "encoding",
    "multivalue",
    "versioned",
    "blob",
    "partition",
]


def _populate(chain: PatternChain) -> Database:
    db = Database("bench")
    chain.deploy(db)
    for row in _rows():
        chain.write(db, "screen", row)
    return db


@pytest.mark.parametrize("pattern_name", ALL_PATTERN_NAMES)
def test_write_path(benchmark, pattern_name):
    chain = _chain(pattern_name)
    rows = list(_rows())

    def write_all():
        db = Database("bench")
        chain_local = _chain(pattern_name)
        chain_local.deploy(db)
        for row in rows:
            chain_local.write(db, "screen", row)
        return db

    db = benchmark(write_all)
    assert db.total_rows() >= N_ROWS


@pytest.mark.parametrize("pattern_name", ALL_PATTERN_NAMES)
def test_read_path(benchmark, pattern_name):
    chain = _chain(pattern_name)
    db = _populate(chain)
    back = benchmark(lambda: chain.read_naive(db, "screen"))
    expected = sorted(_rows(), key=lambda r: r["record_id"])
    assert sorted(back, key=lambda r: r["record_id"]) == expected


def test_table1_report(benchmark):
    """Emit the Table 1 reproduction: pattern catalog + round-trip check."""

    def verify_all():
        results = []
        for name in ALL_PATTERN_NAMES:
            chain = _chain(name)
            db = _populate(chain)
            back = sorted(
                chain.read_naive(db, "screen"), key=lambda r: r["record_id"]
            )
            lossless = back == sorted(_rows(), key=lambda r: r["record_id"])
            results.append(
                {
                    "pattern": name,
                    "lossless": lossless,
                    "physical_tables": len(chain.physical_schemas),
                    "physical_rows": db.total_rows(),
                }
            )
        return results

    results = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert all(r["lossless"] for r in results)
    summary = {row["pattern"]: row for row in pattern_summary()}
    merged = [
        {
            "pattern": r["pattern"],
            "in_table_1": summary[r["pattern"]]["in_table_1"],
            "lossless_roundtrip": r["lossless"],
            "physical_tables": r["physical_tables"],
            "physical_rows": r["physical_rows"],
            "read_path": summary[r["pattern"]]["read_path"],
        }
        for r in results
    ]
    emit_report(
        "T1 / Table 1 — design patterns (11 implemented, 5 from the paper's table)",
        merged,
        notes=f"{N_ROWS} screens written through each pattern; every read path "
        "reconstructs the naive relation exactly",
    )
