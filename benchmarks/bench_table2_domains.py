"""T2 — Table 2: three domains for the smoking attribute.

Reproduces the table (domain, elements, description) and its claim —
"There is no way to translate any one representation into another without
losing information" — by checking every ordered domain pair for a lossless
translation, plus measuring cross-domain disagreement empirically on the
clinical world.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.analysis.classifiers import vendor_classifiers_for
from repro.analysis.metrics import translation_is_lossless
from repro.analysis.schema import HABITS4, PACKS_PER_DAY, STATUS3
from repro.guava.query import GTreeQuery

DOMAINS = {
    "packs_per_day": PACKS_PER_DAY,
    "status3": STATUS3,
    "habits4": HABITS4,
}

# The best candidate translations an integrator could plausibly write.
CANDIDATE_TRANSLATIONS = {
    ("status3", "habits4"): {
        "None": "None",
        "Current": "Light",   # forced guess: intensity unknown
        "Previous": "None",   # forced guess: past habits unknown
    },
    ("habits4", "status3"): {
        "None": "None",
        "Light": "Current",
        "Moderate": "Current",
        "Heavy": "Current",
    },
}


def test_table2_losslessness(benchmark):
    def check():
        rows = []
        for src_name, src in DOMAINS.items():
            for dst_name, dst in DOMAINS.items():
                if src_name == dst_name:
                    continue
                mapping = CANDIDATE_TRANSLATIONS.get((src_name, dst_name))
                rows.append(
                    {
                        "from": src_name,
                        "to": dst_name,
                        "candidate": "best-effort map" if mapping else "none possible",
                        "lossless": bool(
                            mapping and translation_is_lossless(src, dst, mapping)
                        ),
                    }
                )
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    assert all(not row["lossless"] for row in rows)
    emit_report(
        "T2 / Table 2 — the three smoking domains",
        [
            {
                "domain": "1 packs_per_day",
                "elements": "positive reals",
                "description": "number of packs smoked per day",
            },
            {
                "domain": "2 status3",
                "elements": ", ".join(STATUS3.categories),
                "description": "no smoking / current / has smoked in the past",
            },
            {
                "domain": "3 habits4",
                "elements": ", ".join(HABITS4.categories),
                "description": "general classification of smoking habits",
            },
        ],
    )
    emit_report(
        "T2 / Table 2 — every cross-domain translation is lossy",
        rows,
        notes="matches the paper: no representation translates into another "
        "without losing information",
    )


def test_domain_classification_throughput(benchmark, world):
    """Classify every CORI record into all three domains (timing)."""
    source = world.source("cori_warehouse_feed")
    vendor = vendor_classifiers_for(source)
    records = source.execute(GTreeQuery(source.gtree("procedure")))
    by_domain = {
        "packs_per_day": next(
            c for c in vendor.base if c.target_domain == "packs_per_day"
        ),
        "status3": next(c for c in vendor.base if c.target_domain == "status3"),
        "habits4": vendor.habits_cancer,
    }

    def classify_all():
        out = {}
        for name, classifier in by_domain.items():
            domain = DOMAINS[name]
            out[name] = [classifier.classify(r, domain) for r in records]
        return out

    labelled = benchmark(classify_all)
    # Empirical lossiness: identical habits4 labels hide distinct packs counts.
    habits = labelled["habits4"]
    packs = labelled["packs_per_day"]
    collapsed: dict[object, set] = {}
    for label, count in zip(habits, packs):
        if label is not None and count is not None:
            collapsed.setdefault(label, set()).add(count)
    assert any(len(values) > 1 for values in collapsed.values())
