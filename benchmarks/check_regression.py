"""CI benchmark-regression gate over the committed BENCH_*.json baselines.

Re-runs the two headline benchmarks in-process and fails (exit 1) when
any headline metric — a case's ``optimized_ms``/``ms`` — regresses more
than the threshold (default 25%) against its committed baseline.  CI
jitter is tolerated by taking the best of N runs (default 3) per case
before comparing; a case present in the baseline but missing from the
current run also fails the gate.

Usage (from the repo root, ``PYTHONPATH=src``)::

    python benchmarks/check_regression.py \\
        BENCH_relational_core.json BENCH_etl_pipeline.json --runs 3

The comparison logic (``merge_best``/``compare``/``gate``) is pure and
takes an injectable runner, so tests can prove the gate trips on a
synthetic 2x slowdown without timing anything.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Callable, Sequence

DEFAULT_THRESHOLD = 1.25
DEFAULT_RUNS = 3

#: Cases every committed baseline of a benchmark must carry: a
#: re-promoted baseline that silently drops a tier (e.g. the partitioned/
#: parallel PP cases) fails the gate instead of shrinking its coverage.
REQUIRED_CASES: dict[str, tuple[str, ...]] = {
    "relational_core": (
        "filtered_scan",
        "indexed_lookup",
        "join_aggregate_vectorized",
        "pp_point_pruned",
        "pp_range_pruned",
        "pp_scan_aggregate_serial",
        "pp_scan_aggregate_parallel4",
        "zm_selective_scan",
        "zm_groupby_dict",
        "cb_build_side_flip",
        "cb_join_reorder",
        "cb_conjunct_reorder",
        "mp_scan_aggregate_serial",
        "mp_scan_aggregate_proc1",
        "mp_scan_aggregate_proc2",
        "mp_scan_aggregate_proc4",
        "mp_join_probe_proc4",
        "mp_segment_cold",
        "mp_segment_warm",
    ),
    "durability": (
        "du_etl_wal_off",
        "du_etl_wal_on",
        "du_snapshot_write",
        "du_recover_snapshot",
        "du_recover_replay",
    ),
}

Payload = dict[str, Any]


def missing_required(name: str, payload: Payload) -> list[str]:
    """Required cases absent from a committed baseline payload."""
    required = REQUIRED_CASES.get(name, ())
    present = {str(row.get("case")) for row in payload.get("results", [])}
    return [case for case in required if case not in present]


def headline_metrics(payload: Payload) -> dict[str, float]:
    """Case name -> headline milliseconds for one benchmark payload.

    The relational benchmark's headline is the optimized execution time;
    the ETL benchmark reports one ``ms`` per mode/case.
    """
    metrics: dict[str, float] = {}
    for row in payload.get("results", []):
        value = row.get("optimized_ms", row.get("ms"))
        if value is not None:
            metrics[str(row["case"])] = float(value)
    return metrics


def merge_best(runs: Sequence[dict[str, float]]) -> dict[str, float]:
    """Per-case minimum across runs — the jitter-tolerant comparison side."""
    best: dict[str, float] = {}
    for run in runs:
        for case, value in run.items():
            if case not in best or value < best[case]:
                best[case] = value
    return best


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Problems (empty = gate passes) comparing current against baseline."""
    problems: list[str] = []
    for case in sorted(baseline):
        base_ms = baseline[case]
        now_ms = current.get(case)
        if now_ms is None:
            problems.append(f"{case}: missing from current run")
            continue
        if base_ms > 0 and now_ms > base_ms * threshold:
            problems.append(
                f"{case}: {now_ms:.3f} ms vs baseline {base_ms:.3f} ms "
                f"(x{now_ms / base_ms:.2f} > x{threshold:.2f})"
            )
    return problems


def gate(
    baselines: dict[str, Payload],
    runner: Callable[[str], dict[str, float]],
    runs: int = DEFAULT_RUNS,
    threshold: float = DEFAULT_THRESHOLD,
) -> dict[str, list[str]]:
    """Benchmark name -> problems, running each benchmark ``runs`` times.

    ``runner(benchmark_name)`` returns one run's headline metrics; it is
    injectable so tests can feed synthetic timings.
    """
    failures: dict[str, list[str]] = {}
    for name, payload in baselines.items():
        problems = [
            f"{case}: required case missing from committed baseline"
            for case in missing_required(name, payload)
        ]
        observed = merge_best([runner(name) for _ in range(max(1, runs))])
        problems.extend(compare(headline_metrics(payload), observed, threshold))
        if problems:
            failures[name] = problems
    return failures


def _run_benchmark(name: str) -> dict[str, float]:
    """Execute one benchmark in-process and return its headline metrics."""
    if name == "relational_core":
        import bench_relational_core

        results = bench_relational_core.run()
    elif name == "etl_pipeline":
        import bench_etl_pipeline

        results = bench_etl_pipeline.run()
    elif name == "durability":
        import bench_durability

        results = bench_durability.run()
    else:
        raise SystemExit(f"unknown benchmark {name!r}")
    return headline_metrics({"results": results})


def main(argv: Sequence[str] | None = None) -> int:
    import argparse
    import os

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baselines",
        nargs="+",
        help="committed BENCH_*.json baseline files to gate against",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=DEFAULT_RUNS,
        help=f"best-of-N jitter tolerance (default {DEFAULT_RUNS})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"failure ratio per case (default {DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    baselines: dict[str, Payload] = {}
    for path in args.baselines:
        with open(path) as handle:
            payload = json.load(handle)
        baselines[str(payload["benchmark"])] = payload

    failures = gate(baselines, _run_benchmark, args.runs, args.threshold)
    if not failures:
        print(f"bench-regress: all headline metrics within x{args.threshold:.2f}")
        return 0
    for name, problems in sorted(failures.items()):
        print(f"bench-regress FAILED: {name}")
        for problem in problems:
            print(f"  {problem}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
