"""Shared fixtures and the experiment-report channel for benchmarks.

Each benchmark regenerates one of the paper's tables/figures (see
DESIGN.md §4).  Besides timing, every experiment emits its reproduced
rows/series through :func:`emit_report`; the collected reports are printed
after the pytest-benchmark table (and written to ``benchmarks/reports/``)
so ``pytest benchmarks/ --benchmark-only`` leaves a complete record.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping

import pytest

from repro.clinical import build_world

_REPORTS: list[tuple[str, str]] = []
_REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def _format_rows(rows: Iterable[Mapping[str, object]]) -> str:
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    widths = {
        column: max(len(str(column)), *(len(str(r.get(column))) for r in rows))
        for column in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    divider = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(str(r.get(c)).ljust(widths[c]) for c in columns) for r in rows
    ]
    return "\n".join([header, divider] + body)


def emit_report(
    title: str, rows: Iterable[Mapping[str, object]], notes: str = ""
) -> None:
    """Record one experiment's reproduced table for the session summary."""
    text = _format_rows(rows)
    if notes:
        text += f"\n  note: {notes}"
    _REPORTS.append((title, text))
    os.makedirs(_REPORT_DIR, exist_ok=True)
    slug = "".join(ch if ch.isalnum() else "_" for ch in title.lower())[:60]
    with open(os.path.join(_REPORT_DIR, f"{slug}.txt"), "w") as handle:
        handle.write(f"{title}\n{'=' * len(title)}\n{text}\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        terminalreporter.write_line("-" * len(title))
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def world():
    """The shared clinical world for all experiments (fixed seed)."""
    return build_world(300, seed=7)


@pytest.fixture(scope="session")
def small_world():
    """A smaller world for per-iteration rebuild benchmarks."""
    return build_world(60, seed=7)
