"""Plan before/after artifact for the cost-based (CB) planning tier.

Renders each CB benchmark case twice through ``explain_analyze`` — once
with :func:`set_costing_enabled` off (the authored plan shape) and once
with costing on (build-side flip, join-chain reorder, conjunct reorder)
— and writes both annotated traces side by side.  The artifact makes the
planning decision itself reviewable in CI: the operator tree changes,
``estimated_rows``/``q_error`` quantify the estimates behind it, and the
row counts prove the rewrite changed nothing but the shape.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/plan_diff.py bench-out/plan_diff_cb.txt

``REPRO_PP_ROWS`` scales the fixture down for quick runs, exactly as it
does for ``bench_relational_core.py``.
"""

from __future__ import annotations

import os
import sys

try:  # package import under pytest, bare import as a standalone script
    from benchmarks.bench_relational_core import (
        _cb_chain_plan,
        _cb_conjunct_plan,
        _cb_flip_plan,
        build_pp_database,
    )
except ImportError:  # pragma: no cover - script mode
    from bench_relational_core import (
        _cb_chain_plan,
        _cb_conjunct_plan,
        _cb_flip_plan,
        build_pp_database,
    )

from repro.obs import explain_analyze
from repro.relational import set_costing_enabled

CASES = (
    ("cb_build_side_flip", _cb_flip_plan),
    ("cb_join_reorder", _cb_chain_plan),
    ("cb_conjunct_reorder", _cb_conjunct_plan),
)


def render_case(name: str, plan, db) -> str:
    previous = set_costing_enabled(False)
    try:
        before = explain_analyze(plan, db)
    finally:
        set_costing_enabled(previous)
    after = explain_analyze(plan, db)
    assert before.rows == after.rows, f"{name}: costing changed the result rows"
    return "\n".join(
        [
            f"==== {name} ====",
            "",
            "---- costing disabled (authored plan shape) ----",
            before.render(),
            "",
            "---- costing enabled ----",
            after.render(),
            "",
        ]
    )


def main(argv: list[str]) -> int:
    out_path = argv[0] if argv else "bench-out/plan_diff_cb.txt"
    db = build_pp_database()
    sections = [render_case(name, build(), db) for name, build in CASES]
    parent = os.path.dirname(out_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
