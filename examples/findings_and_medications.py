"""Traversing the has-a tree: Findings and Medications joined to Procedures.

Figure 4's study schema puts Procedure at the top with Finding and New
Medication beneath it.  This example runs a study over all three
entities, loads them into the warehouse, and answers questions across
the has-a edges with plain select-project-join queries.

Run:  python examples/findings_and_medications.py
"""

from repro.analysis import (
    build_endoscopy_schema,
    cori_finding_classifiers,
    cori_medication_classifiers,
)
from repro.analysis.classifiers import vendor_classifiers_for
from repro.clinical import build_world
from repro.etl import compile_study
from repro.multiclass import Study
from repro.warehouse import StudyTableQuery, Warehouse

world = build_world(300, seed=7)
cori = world.source("cori_warehouse_feed")
vendor = vendor_classifiers_for(cori)

schema = build_endoscopy_schema()
study = Study("per_procedure_detail", schema,
              description="procedures with their findings and medications")
study.add_element("Procedure", "Smoking", "status3")
study.add_element("Procedure", "Indication", "indication")
study.add_element("Finding", "FindingType", "finding_type")
study.add_element("Finding", "SizeMm", "mm")
study.add_element("NewMedication", "Drug", "name")
study.add_element("NewMedication", "DosageMg", "mg")

finding_ec, finding_classifiers = cori_finding_classifiers()
medication_ec, medication_classifiers = cori_medication_classifiers()
wanted = [
    c for c in vendor.base
    if (c.target_attribute, c.target_domain)
    in {("Smoking", "status3"), ("Indication", "indication")}
]
study.bind(
    cori,
    [vendor.entity_classifier, finding_ec, medication_ec],
    wanted + finding_classifiers + medication_classifiers,
)

warehouse = Warehouse()
workflow = compile_study(study, warehouse.db)
outputs, report = workflow.run()
print("Loaded study tables:")
for entity in ("Procedure", "Finding", "NewMedication"):
    table = f"study_per_procedure_detail_{entity}".lower()
    print(f"  {table}: {len(warehouse.table(table))} rows")

print("\nLarge findings (>= 40mm) with the procedure's smoking status:")
rows = (
    StudyTableQuery(warehouse, "study_per_procedure_detail_finding")
    .join_entity(
        "study_per_procedure_detail_procedure",
        prefix="proc",
        on=(("parent_record_id", "record_id"), ("source", "source")),
    )
    .where("SizeMm_mm >= 40")
    .select("FindingType_finding_type", "SizeMm_mm", "proc_Smoking_status3")
    .run()
)
for row in rows[:8]:
    print(" ", row)

print("\nMedications prescribed at reflux-indication procedures:")
rows = (
    StudyTableQuery(warehouse, "study_per_procedure_detail_newmedication")
    .join_entity(
        "study_per_procedure_detail_procedure",
        prefix="proc",
        on=(("parent_record_id", "record_id"), ("source", "source")),
    )
    .where(
        "proc_Indication_indication = 'Asthma-specific ENT/Pulmonary Reflux symptoms'"
    )
    .select("Drug_name", "DosageMg_mg")
    .run()
)
drug_counts: dict[str, int] = {}
for row in rows:
    drug_counts[row["Drug_name"]] = drug_counts.get(row["Drug_name"], 0) + 1
for drug, count in sorted(drug_counts.items(), key=lambda kv: -kv[1]):
    print(f"  {drug:20} {count}")
