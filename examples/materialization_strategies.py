"""Materializing the study schema three ways (paper §4.2 / Figure 7).

Full materialization stores every classifier as a column (Figure 7);
selective stores only often-used classifiers and recomputes the rest from
the sources; derived stores a base classifier and computes related ones
through a simple algebraic relationship.

Run:  python examples/materialization_strategies.py
"""

import time

from repro.analysis import build_endoscopy_schema
from repro.analysis.classifiers import vendor_classifiers_for
from repro.clinical import build_world
from repro.warehouse import (
    DerivationRule,
    DerivedStrategy,
    FullStrategy,
    MaterializationJob,
    SelectiveStrategy,
    StudyTableQuery,
    Warehouse,
)

world = build_world(300, seed=7)
cori = world.source("cori_warehouse_feed")
vendor = vendor_classifiers_for(cori)

job = MaterializationJob(
    schema=build_endoscopy_schema(),
    entity="Procedure",
    sources=[cori],
    entity_classifiers={cori.name: vendor.entity_classifier},
    classifiers=[
        vendor.habits_cancer,
        vendor.habits_chemistry,
        vendor.ex_smoker_1y,
        vendor.ex_smoker_10y,
        vendor.ex_smoker_ever,
    ],
)
all_columns = [c.name for c in job.classifiers]

strategies = {
    "full (Figure 7)": FullStrategy(job, Warehouse()),
    "selective (2 hot columns)": SelectiveStrategy(
        job, Warehouse(), ["cori_habits_cancer", "cori_ex_smoker_ever"]
    ),
    "derived (chemistry from cancer)": DerivedStrategy(
        job,
        Warehouse(),
        [
            DerivationRule.of(
                "cori_habits_chemistry",
                "cori_habits_cancer",
                "IIF(base = 'Moderate', 'Heavy', IIF(base = 'Light', 'Moderate', base))",
            )
        ],
    ),
}

print(f"{'strategy':32} {'cells':>7} {'build ms':>9} {'query-all ms':>13}")
for name, strategy in strategies.items():
    started = time.perf_counter()
    strategy.build()
    build_ms = (time.perf_counter() - started) * 1000
    started = time.perf_counter()
    rows = strategy.fetch(all_columns)
    query_ms = (time.perf_counter() - started) * 1000
    print(
        f"{name:32} {strategy.storage_cells():>7} {build_ms:>9.2f} {query_ms:>13.2f}"
    )

print("\nFigure 7 shape — the fully-materialized table, first rows:")
full = strategies["full (Figure 7)"]
warehouse = full.warehouse
table_rows = (
    StudyTableQuery(warehouse, job.table_name())
    .select("record_id", "cori_habits_cancer", "cori_habits_chemistry",
            "cori_ex_smoker_ever")
    .run()[:5]
)
for row in table_rows:
    print(" ", row)

print(
    "\n\"If the classifiers/domains ratio is high, then a comprehensive\n"
    "materialized study schema may be too large to manage\" — compare the\n"
    "cells column above, and see benchmarks/bench_fig7_materialize.py for\n"
    "the full sweep."
)
