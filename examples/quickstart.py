"""Quickstart: GUAVA + MultiClass in ~80 lines.

Builds a tiny clinical reporting tool, stores its data through an EAV
(Generic) physical layout, derives the g-tree, writes a classifier, and
runs a one-study integration — the whole paper in miniature.

Run:  python examples/quickstart.py
"""

from repro.etl import compile_study
from repro.guava import GuavaSource
from repro.multiclass import (
    Classifier,
    Domain,
    Entity,
    EntityClassifier,
    Rule,
    Study,
    StudySchema,
)
from repro.patterns import AuditPattern, GenericPattern, PatternChain
from repro.relational import Database
from repro.ui import CheckBox, Form, GroupBox, NumericBox, RadioGroup, ReportingTool

# 1. The reporting tool: what the clinician actually sees. --------------------
form = Form(
    "procedure",
    "Procedure Report",
    controls=[
        GroupBox(
            "history",
            "Medical History",
            children=[
                RadioGroup(
                    "smoking",
                    "Does the patient smoke?",
                    choices=["Never", "Current", "Previous"],
                ),
                # The frequency box only enables once smoking is answered —
                # this becomes an edge in the g-tree.
                NumericBox(
                    "packs_per_day",
                    "Packs per day",
                    integer=False,
                    enabled_when="smoking IS NOT NULL AND smoking != 'Never'",
                ),
            ],
        ),
        CheckBox("hypoxia", "Transient hypoxia observed"),
    ],
)
tool = ReportingTool("demo_tool", "1.0", forms=[form])

# 2. The physical layout: a generic EAV table behind an audit sentinel. -------
chain = PatternChain(
    tool.naive_schemas(), [GenericPattern(["procedure"]), AuditPattern()]
)
source = GuavaSource("demo_clinic", tool, chain)
print("Physical layout the analyst never has to read:")
print(chain.describe(), "\n")

# 3. Clinicians enter data through the simulated GUI. --------------------------
session = source.session()
session.enter("procedure", {"smoking": "Current", "packs_per_day": 2.5, "hypoxia": True})
session.enter("procedure", {"smoking": "Never"})
session.enter("procedure", {"smoking": "Previous", "packs_per_day": 0.5, "hypoxia": True})

# 4. The analyst explores the g-tree, not the database. ------------------------
print("The g-tree GUAVA derived from the GUI:")
print(source.gtree("procedure").render(), "\n")
print("Context of the smoking node:")
print(source.gtree("procedure").node("smoking").context_summary(), "\n")

rows = (
    source.query("procedure")
    .where("hypoxia = TRUE")
    .select("smoking", "packs_per_day")
    .run()
)
print("G-tree query 'hypoxia = TRUE' →", rows, "\n")

# 5. A study schema with a multi-domain attribute and a classifier. ------------
procedure = Entity("Procedure")
procedure.add_attribute(
    "Smoking", Domain.categorical("habits", ["None", "Light", "Moderate", "Heavy"])
)
procedure.add_attribute("Hypoxia", Domain.boolean("flag"))
schema = StudySchema("demo", procedure)

habits = Classifier(
    name="habits_cancer_cutoffs",
    target_entity="Procedure",
    target_attribute="Smoking",
    target_domain="habits",
    rules=[
        Rule.of("'None'", "smoking = 'Never' OR packs_per_day = 0"),
        Rule.of("'Light'", "packs_per_day > 0 AND packs_per_day < 2"),
        Rule.of("'Moderate'", "packs_per_day >= 2 AND packs_per_day < 5"),
        Rule.of("'Heavy'", "packs_per_day >= 5"),
    ],
    description="per cancer-study conversation",
)
hypoxia = Classifier(
    name="hypoxia_direct",
    target_entity="Procedure",
    target_attribute="Hypoxia",
    target_domain="flag",
    rules=[Rule.of("hypoxia", "hypoxia IS NOT NULL")],
)
print("The classifier, in the analyst-facing language:")
print(habits.to_source(), "\n")

# 6. Define and run the study; compile it to ETL too. ---------------------------
study = Study("demo_study", schema, description="smokers with hypoxia")
study.add_element("Procedure", "Smoking", "habits")
study.add_element("Procedure", "Hypoxia", "flag")
study.where("Procedure", "Hypoxia_flag = TRUE")
study.bind(
    source,
    [EntityClassifier(name="all", target_entity="Procedure", form="procedure")],
    [habits, hypoxia],
)

direct = study.run()
print("Direct study evaluation:", direct.rows("Procedure"))

warehouse = Database("warehouse")
workflow = compile_study(study, warehouse)
outputs, report = workflow.run()
print("\nCompiled ETL workflow (Figure 6 stages):")
print(report.summary())
assert sorted(map(repr, outputs["Procedure__load"])) == sorted(
    map(repr, direct.rows("Procedure"))
)
print("\nETL output equals direct evaluation — Hypothesis 3 holds here.")
