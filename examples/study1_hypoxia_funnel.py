"""Study 1 (paper §2): the hypoxia-interventions funnel.

Runs the paper's first motivating study over the full synthetic clinical
world — three contributors with different GUIs and physical layouts —
and prints the funnel next to ground truth, plus the generated SQL and
Datalog artifacts for one contributor.

Run:  python examples/study1_hypoxia_funnel.py
"""

from repro.analysis import build_study1, run_study1, study1_truth_funnel
from repro.clinical import build_world
from repro.etl import compile_study
from repro.guava.query import GTreeQuery
from repro.guava.translate import translate_query
from repro.multiclass import study_to_datalog
from repro.relational import Database, to_sql

print("Building the clinical world (300 procedures across 3 contributors)...")
world = build_world(300, seed=7)
for source in world.sources:
    print(
        f"  {source.name}: {len(world.truths_by_source[source.name])} procedures, "
        f"physical tables {source.db.table_names()}"
    )

print("\nStudy 1: of all patients undergoing upper GI endoscopy, how many had")
print("the indication of Asthma-specific ENT/Pulmonary Reflux symptoms? ...")

study = build_study1(world)
funnel = run_study1(world)
truth = study1_truth_funnel(world)

print(f"\n{'stage':40} {'measured':>9} {'truth':>6}")
for measured_row, truth_row in zip(funnel.as_rows(), truth.as_rows()):
    print(f"{measured_row['stage']:40} {measured_row['count']:>9} {truth_row['count']:>6}")

print("\nCompiling the study to its ETL workflow (Figure 6)...")
warehouse = Database("warehouse")
workflow = compile_study(study, warehouse)
outputs, report = workflow.run()
print(report.summary())

print("\nGenerated SQL for the CORI extract stage (EAV layout → naive view):")
binding = study.bindings[0]
entity_classifier = binding.entity_classifiers["Procedure"]
plan = translate_query(
    GTreeQuery(binding.source.gtree(entity_classifier.form)).where(
        entity_classifier.condition
    ),
    binding.source.chain,
)
print(to_sql(plan))

print("\nFirst lines of the study as Datalog:")
print("\n".join(study_to_datalog(study).splitlines()[:12]))
