"""Study 2 (paper §2) and the §1 context trap.

Part 1 runs "of all procedures on ex-smokers, how many had a complication
of hypoxia?" under three ex-smoker definitions — showing why the
definition must be a per-study classifier choice.

Part 2 demonstrates the paper's opening example: "A 1 in the field smoker
might mean that the patient is a current smoker, or instead could mean
that they quit smoking one year ago."  A context-blind reader misreads
MedScribe; GUAVA's g-tree context prevents it.

Run:  python examples/study2_exsmokers.py
"""

from repro.analysis import (
    compare_smoking_extraction,
    run_study2,
    study2_truth,
)
from repro.clinical import build_world

world = build_world(300, seed=7)

print("PART 1 — Study 2 under three ex-smoker definitions")
print(f"{'definition':12} {'ex-smoker procedures':>21} {'with hypoxia':>13} {'rate':>6}")
for definition in ("1y", "10y", "ever"):
    measured = run_study2(world, definition)
    truth = study2_truth(world, definition)
    assert measured.ex_smokers == truth.ex_smokers
    print(
        f"quit {definition:7} {measured.ex_smokers:>21} "
        f"{measured.ex_smokers_with_hypoxia:>13} {measured.rate:>6.3f}"
    )
print("\nSame data, three different answers — the definition is a study")
print("decision, so MultiClass keeps one classifier per definition.\n")

print("PART 2 — the §1 'field named smoker' trap")
endopro = world.source("endopro_clinic")
medscribe = world.source("medscribe_clinic")
print("EndoPro's g-tree says:  ", endopro.gtree("endoscopy_report").node("smoker").question)
print("MedScribe's g-tree says:", medscribe.gtree("visit").node("smoker").question)
print("Same column name, different meanings — only the GUI context tells.\n")

print(f"{'method':18} {'status':8} {'precision':>9} {'recall':>7} {'f1':>6}")
for comparison in compare_smoking_extraction(world):
    for row in comparison.as_rows():
        print(
            f"{row['method']:18} {row['status']:8} "
            f"{row['precision']:>9.3f} {row['recall']:>7.3f} {row['f1']:>6.3f}"
        )
print(
    "\nThe context-blind reader treats every 'smoker=1' as a current smoker\n"
    "and misclassifies every MedScribe ex-smoker; the analyst reading the\n"
    "g-tree writes per-source classifiers and recovers the truth exactly."
)
