"""GUAVA + MultiClass outside the clinic (paper §6).

"Finally, we are interested in exploring whether GUAVA or MultiClass is
able to provide benefits in other domains, such as traffic data and
financial applications."  Nothing in the architecture is
clinical-specific: any domain where data is born in a form-driven tool
and analyzed under shifting definitions fits.  Here: two traffic-incident
reporting tools with the same semantic trap — one agency's `injury`
checkbox means *anyone transported to hospital*, the other's means *any
reported pain* — and a severity definition that differs per study.

Run:  python examples/traffic_domain.py
"""

from repro.guava import GuavaSource
from repro.multiclass import (
    Classifier,
    Domain,
    Entity,
    EntityClassifier,
    Rule,
    Study,
    StudySchema,
)
from repro.patterns import GenericPattern, LookupPattern, PatternChain
from repro.ui import CheckBox, DropDown, Form, NumericBox, ReportingTool

# --- two agencies' incident tools ------------------------------------------------
city_form = Form(
    "incident",
    "City PD Incident Report",
    controls=[
        DropDown("road_type", "Road type",
                 choices=["Residential", "Arterial", "Highway"], required=True),
        NumericBox("vehicles", "Vehicles involved", minimum=1, required=True),
        CheckBox("injury", "Injury crash (anyone transported to hospital)"),
        NumericBox("est_speed", "Estimated speed (mph)", minimum=0),
    ],
)
county_form = Form(
    "crash_record",
    "County Sheriff Crash Record",
    controls=[
        DropDown("roadway", "Roadway class",
                 choices=["Residential", "Arterial", "Highway"], required=True),
        NumericBox("unit_count", "Units involved", minimum=1, required=True),
        CheckBox("injury", "Injury reported (any complaint of pain)"),
        CheckBox("hospitalized", "Anyone hospitalized",
                 enabled_when="injury = TRUE"),
        NumericBox("speed_est", "Speed estimate (mph)", minimum=0),
    ],
)

city = GuavaSource(
    "city_pd",
    ReportingTool("citypd", "4.1", forms=[city_form]),
    PatternChain(
        ReportingTool("citypd", "4.1", forms=[city_form]).naive_schemas(),
        [GenericPattern(["incident"])],
    ),
)
county = GuavaSource(
    "county_sheriff",
    ReportingTool("sheriff", "2.0", forms=[county_form]),
    PatternChain(
        ReportingTool("sheriff", "2.0", forms=[county_form]).naive_schemas(),
        [LookupPattern({("crash_record", "roadway"): "roadway_codes"})],
    ),
)

city_session = city.session()
for values in [
    {"road_type": "Highway", "vehicles": 2, "injury": True, "est_speed": 65},
    {"road_type": "Residential", "vehicles": 1, "injury": False, "est_speed": 25},
    {"road_type": "Arterial", "vehicles": 3, "injury": True, "est_speed": 40},
]:
    city_session.enter("incident", values)
county_session = county.session()
for values in [
    {"roadway": "Highway", "unit_count": 2, "injury": True,
     "hospitalized": True, "speed_est": 70},
    {"roadway": "Arterial", "unit_count": 2, "injury": True,
     "hospitalized": False, "speed_est": 35},
    {"roadway": "Residential", "unit_count": 1, "injury": False, "speed_est": 20},
]:
    county_session.enter("crash_record", values)

print("The same column-name trap as the clinic:")
print("  City PD g-tree:  ", city.gtree("incident").node("injury").question)
print("  Sheriff g-tree:  ", county.gtree("crash_record").node("injury").question)

# --- one study schema, per-study severity definitions ------------------------------
incident = Entity("Incident")
incident.add_attribute(
    "RoadType", Domain.categorical("road3", ["Residential", "Arterial", "Highway"])
)
incident.add_attribute("HospitalInjury", Domain.boolean("flag"))
incident.add_attribute("SpeedMph", Domain.real("mph", minimum=0))
schema = StudySchema("traffic", incident)

city_classifiers = [
    Classifier(name="city_road", target_entity="Incident", target_attribute="RoadType",
               target_domain="road3",
               rules=[Rule.of("road_type", "road_type IS NOT NULL")]),
    # City PD's injury box already means hospital transport.
    Classifier(name="city_hospital", target_entity="Incident",
               target_attribute="HospitalInjury", target_domain="flag",
               rules=[Rule.of("injury", "injury IS NOT NULL")]),
    Classifier(name="city_speed", target_entity="Incident",
               target_attribute="SpeedMph", target_domain="mph",
               rules=[Rule.of("est_speed", "est_speed IS NOT NULL")]),
]
county_classifiers = [
    Classifier(name="county_road", target_entity="Incident", target_attribute="RoadType",
               target_domain="road3",
               rules=[Rule.of("roadway", "roadway IS NOT NULL")]),
    # The Sheriff's injury box is any pain: hospital transport lives in
    # the dependent checkbox the g-tree exposes.
    Classifier(name="county_hospital", target_entity="Incident",
               target_attribute="HospitalInjury", target_domain="flag",
               rules=[
                   Rule.of("hospitalized", "injury = TRUE"),
                   Rule.of("FALSE", "injury = FALSE"),
               ]),
    Classifier(name="county_speed", target_entity="Incident",
               target_attribute="SpeedMph", target_domain="mph",
               rules=[Rule.of("speed_est", "speed_est IS NOT NULL")]),
]

study = Study("hospitalizing_crashes", schema,
              description="hospital-transport crashes by road type")
study.add_element("Incident", "RoadType", "road3")
study.add_element("Incident", "HospitalInjury", "flag")
study.add_element("Incident", "SpeedMph", "mph")
study.where("Incident", "HospitalInjury_flag = TRUE")
study.bind(city, [EntityClassifier(name="city_all", target_entity="Incident",
                                   form="incident")], city_classifiers)
study.bind(county, [EntityClassifier(name="county_all", target_entity="Incident",
                                     form="crash_record")], county_classifiers)

result = study.run()
print("\nHospital-transport crashes across both agencies:")
for row in result.rows("Incident"):
    print(" ", row)
print(
    "\nA context-blind union of the two `injury` columns would have\n"
    "counted the Sheriff's pain-only crash as a hospitalization; the\n"
    "per-source classifiers, written against the g-trees, do not."
)
