"""Onboarding a new vendor and surviving a tool upgrade.

Scenario (paper §2): "several commercial reporting tool vendors have
expressed an interest in contributing data to CORI's clinical data
warehouse.  Each new vendor necessitates a new ETL workflow, potentially
for each study."  With GUAVA + MultiClass, onboarding is: describe the
GUI, declare the storage patterns, write classifiers against the g-tree —
and existing studies pick the new source up.  When the vendor ships v2,
classifier propagation reports what survives.

Run:  python examples/vendor_onboarding.py
"""

from repro.analysis import build_endoscopy_schema
from repro.analysis.classifiers import standard_bindings
from repro.clinical import build_world
from repro.guava import GuavaSource, derive_gtree
from repro.multiclass import (
    Classifier,
    EntityClassifier,
    Rule,
    Study,
    propagate_classifiers,
)
from repro.patterns import LookupPattern, PatternChain, VersionedPattern
from repro.ui import CheckBox, DropDown, Form, NumericBox, ReportingTool

# --- the established world -----------------------------------------------------
world = build_world(200, seed=7)
schema = build_endoscopy_schema()
study = Study("hypoxia_watch", schema, description="ongoing hypoxia surveillance")
study.add_element("Procedure", "AnyHypoxia", "flag")
study.add_element("Procedure", "Smoking", "status3")
standard_bindings(study, world.sources)
print(f"Existing study over {len(study.bindings)} contributors:",
      study.run().count("Procedure"), "procedures\n")

# --- the new vendor: 'ScopeWriter' ----------------------------------------------
print("Onboarding vendor 'ScopeWriter'...")
scopewriter_form = Form(
    "exam_record",
    "ScopeWriter Exam Record",
    controls=[
        NumericBox("patient_no", "Patient number", required=True),
        DropDown(
            "exam_type",
            "Exam",
            choices=["Upper GI endoscopy", "Colonoscopy"],
            required=True,
        ),
        CheckBox("o2_desat", "Oxygen desaturation during exam"),
        DropDown(
            "tobacco",
            "Tobacco use (currently / formerly / never)",
            choices=["currently", "formerly", "never"],
        ),
        NumericBox(
            "daily_packs",
            "Daily packs (if currently using)",
            integer=False,
            enabled_when="tobacco = 'currently'",
        ),
    ],
)
scopewriter = ReportingTool("scopewriter", "1.0", forms=[scopewriter_form])
chain = PatternChain(
    scopewriter.naive_schemas(),
    [
        LookupPattern({("exam_record", "tobacco"): "tobacco_codes"}),
        VersionedPattern("1.0"),
    ],
)
source = GuavaSource("scopewriter_clinic", scopewriter, chain)

# Simulate a few reports from this clinic.
session = source.session()
session.enter("exam_record", {"patient_no": 901, "exam_type": "Upper GI endoscopy",
                              "o2_desat": True, "tobacco": "currently", "daily_packs": 1.5})
session.enter("exam_record", {"patient_no": 902, "exam_type": "Colonoscopy",
                              "o2_desat": False, "tobacco": "never"})
session.enter("exam_record", {"patient_no": 903, "exam_type": "Colonoscopy",
                              "o2_desat": True, "tobacco": "formerly"})

print("Its g-tree (what the analyst reads instead of the schema):")
print(source.gtree("exam_record").render())

# The analyst writes classifiers against the g-tree, with full context.
hypoxia = Classifier(
    name="scopewriter_hypoxia",
    target_entity="Procedure",
    target_attribute="AnyHypoxia",
    target_domain="flag",
    rules=[Rule.of("o2_desat", "o2_desat IS NOT NULL")],
    description="ScopeWriter records desaturation as one checkbox",
)
status = Classifier(
    name="scopewriter_status3",
    target_entity="Procedure",
    target_attribute="Smoking",
    target_domain="status3",
    rules=[
        Rule.of("'Current'", "tobacco = 'currently'"),
        Rule.of("'Previous'", "tobacco = 'formerly'"),
        Rule.of("'None'", "tobacco = 'never'"),
    ],
)
study.bind(
    source,
    [EntityClassifier(name="scopewriter_exams", target_entity="Procedure",
                      form="exam_record")],
    [hypoxia, status],
)
result = study.run()
print(f"\nStudy now integrates {len(study.bindings)} contributors:",
      result.count("Procedure"), "procedures")
print("ScopeWriter rows:",
      [r for r in result.rows("Procedure") if r["source"] == "scopewriter_clinic"])

# --- the vendor ships version 2 -----------------------------------------------
print("\nScopeWriter ships v2.0: 'tobacco' gains a 'vaping only' option and")
print("'daily_packs' is renamed to 'packs_count'...")
v2_form = Form(
    "exam_record",
    "ScopeWriter Exam Record",
    controls=[
        NumericBox("patient_no", "Patient number", required=True),
        DropDown("exam_type", "Exam",
                 choices=["Upper GI endoscopy", "Colonoscopy"], required=True),
        CheckBox("o2_desat", "Oxygen desaturation during exam"),
        DropDown("tobacco", "Tobacco use (currently / formerly / never)",
                 choices=["currently", "formerly", "never", "vaping only"]),
        NumericBox("packs_count", "Daily packs (if currently using)",
                   integer=False, enabled_when="tobacco = 'currently'"),
    ],
)
v2 = ReportingTool("scopewriter", "2.0", forms=[v2_form])
report = propagate_classifiers(
    source.gtree("exam_record"),
    derive_gtree(v2, "exam_record"),
    [hypoxia, status],
)
print("\nPropagation report:", report.summary())
for classifier, changes in report.flagged:
    for change in changes:
        print(f"  FLAGGED {classifier.name}: {change.kind} — {change.detail}")
for classifier, changes in report.broken:
    for change in changes:
        suggestion = f" (suggest: {change.suggestion})" if change.suggestion else ""
        print(f"  BROKEN  {classifier.name}: {change.detail}{suggestion}")
