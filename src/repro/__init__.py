"""Context-Sensitive Clinical Data Integration — GUAVA + MultiClass.

A full reproduction of Terwilliger, Delcambre & Logan (EDBT 2006 Ph.D.
Workshop).  Layering, bottom to top:

* :mod:`repro.expr`       — the shared expression language
* :mod:`repro.relational` — in-memory relational engine (substrate)
* :mod:`repro.ui`         — declarative reporting-tool GUIs (substrate)
* :mod:`repro.patterns`   — the 11 database design patterns
* :mod:`repro.guava`      — g-trees and GUI-as-view query translation
* :mod:`repro.multiclass` — study schemas, domains, classifiers, studies
* :mod:`repro.etl`        — ETL components and the study compiler
* :mod:`repro.warehouse`  — study-schema materialization strategies
* :mod:`repro.clinical`   — the synthetic CORI world (substrate)
* :mod:`repro.analysis`   — the paper's studies, metrics, and baselines
"""

__version__ = "1.0.0"

from repro.guava import GuavaSource
from repro.multiclass import (
    Classifier,
    Domain,
    Entity,
    EntityClassifier,
    Rule,
    Study,
    StudySchema,
)
from repro.patterns import PatternChain
from repro.relational import Database
from repro.ui import Form, ReportingTool

__all__ = [
    "Classifier",
    "Database",
    "Domain",
    "Entity",
    "EntityClassifier",
    "Form",
    "GuavaSource",
    "PatternChain",
    "ReportingTool",
    "Rule",
    "Study",
    "StudySchema",
    "__version__",
]
