"""Experiment harness: the paper's studies, metrics, and baselines."""

from repro.analysis.metrics import (
    PrecisionRecall,
    domain_translation_report,
    precision_recall,
)
from repro.analysis.schema import build_endoscopy_schema
from repro.analysis.classifiers import (
    cori_classifiers,
    cori_entity_classifier,
    endopro_classifiers,
    endopro_entity_classifier,
    medscribe_classifiers,
    medscribe_entity_classifier,
    standard_bindings,
)
from repro.analysis.studies import (
    build_cohort_study,
    build_study1,
    build_study2,
    run_study1,
    run_study2,
    study1_truth_funnel,
    study2_truth,
)
from repro.analysis.baseline import (
    compare_smoking_extraction,
    context_blind_smoking,
    global_etl_ex_smokers,
    guava_smoking,
)
from repro.analysis.classifiers import (
    cori_finding_classifiers,
    cori_medication_classifiers,
    vendor_classifiers_for,
)

__all__ = [
    "PrecisionRecall",
    "build_cohort_study",
    "build_study1",
    "build_study2",
    "compare_smoking_extraction",
    "cori_finding_classifiers",
    "cori_medication_classifiers",
    "study1_truth_funnel",
    "study2_truth",
    "vendor_classifiers_for",
    "build_endoscopy_schema",
    "context_blind_smoking",
    "cori_classifiers",
    "cori_entity_classifier",
    "domain_translation_report",
    "endopro_classifiers",
    "endopro_entity_classifier",
    "global_etl_ex_smokers",
    "guava_smoking",
    "medscribe_classifiers",
    "medscribe_entity_classifier",
    "precision_recall",
    "run_study1",
    "run_study2",
    "standard_bindings",
]
