"""Baselines the paper argues against.

* **Context-blind extraction** (Hypothesis 2's comparison point): a
  technical expert who can read every physical layout but lacks the UI
  context interprets columns by name with one global dictionary.  The
  paper's §1 example — "A 1 in the field smoker might mean that the
  patient is a current smoker, or instead could mean that they quit
  smoking one year ago" — plays out literally: EndoPro's ``smoker`` means
  *current*, MedScribe's means *ever*, and the context-blind reader must
  pick one meaning for both.

* **Global single ETL** (§1): a classic warehouse fixes one
  classification at load time.  Studies whose definitions differ from the
  global choice silently inherit wrong labels; MultiClass re-classifies
  per study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.classifiers import vendor_classifiers_for
from repro.analysis.metrics import PrecisionRecall, precision_recall
from repro.clinical.sources import ClinicalWorld
from repro.guava.query import GTreeQuery
from repro.ui.form import RECORD_ID

Row = dict[str, object]

#: (source name, record id) — a unique key across the federation.
RecordKey = tuple[str, int]


@dataclass
class SmokingExtraction:
    """Predicted record sets per smoking status."""

    current: set[RecordKey]
    ex: set[RecordKey]
    never: set[RecordKey]


def _procedure_form(source) -> str:
    """The procedure-level form of a clinical-world source."""
    return source.tool.forms[0].name


def truth_smoking_sets(world: ClinicalWorld) -> SmokingExtraction:
    """Ground-truth record sets."""
    current: set[RecordKey] = set()
    ex: set[RecordKey] = set()
    never: set[RecordKey] = set()
    for source_name, truths in world.truths_by_source.items():
        for index, truth in enumerate(truths):
            key = (source_name, index + 1)
            status = truth.patient.smoking.status
            {"current": current, "ex": ex, "never": never}[status].add(key)
    return SmokingExtraction(current, ex, never)


def guava_smoking(world: ClinicalWorld) -> SmokingExtraction:
    """Context-aware extraction: per-source status3 classifiers via GUAVA."""
    current: set[RecordKey] = set()
    ex: set[RecordKey] = set()
    never: set[RecordKey] = set()
    for source in world.sources:
        vendor = vendor_classifiers_for(source)
        status3 = next(
            c
            for c in vendor.base
            if c.target_attribute == "Smoking" and c.target_domain == "status3"
        )
        form = vendor.entity_classifier.form
        for record in source.execute(GTreeQuery(source.gtree(form))):
            key = (source.name, int(record[RECORD_ID]))
            label = status3.classify(record)
            if label == "Current":
                current.add(key)
            elif label == "Previous":
                ex.add(key)
            elif label == "None":
                never.add(key)
    return SmokingExtraction(current, ex, never)


def context_blind_smoking(world: ClinicalWorld) -> SmokingExtraction:
    """Context-blind extraction: one global column-name dictionary.

    The reader reconstructs each source's record layout (we are generous:
    they know the design patterns) but interprets columns *by name*:

    * boolean ``smoker``-like column  => current smoker when true,
    * boolean ``former_smoker``       => ex-smoker when true,
    * text ``smoking`` status column  => its value taken literally.

    The dictionary is exactly right for EndoPro and CORI and exactly wrong
    for MedScribe's ever-smoked checkbox.
    """
    current: set[RecordKey] = set()
    ex: set[RecordKey] = set()
    never: set[RecordKey] = set()
    for source in world.sources:
        form = _procedure_form(source)
        for record in source.chain.read_naive(source.db, form):
            key = (source.name, int(record[RECORD_ID]))
            smoker_flag = _first_bool(record, ("smoker",))
            former_flag = _first_bool(record, ("former_smoker",))
            status_text = record.get("smoking")
            if status_text is not None:
                if status_text == "Current":
                    current.add(key)
                elif status_text == "Previous":
                    ex.add(key)
                elif status_text == "Never":
                    never.add(key)
                continue
            if smoker_flag is True:
                current.add(key)  # the §1 misreading for MedScribe
            elif former_flag is True:
                ex.add(key)
            elif smoker_flag is False:
                never.add(key)
    return SmokingExtraction(current, ex, never)


def _first_bool(record: Row, names: tuple[str, ...]) -> bool | None:
    for name in names:
        if name in record and isinstance(record[name], bool):
            return record[name]
    return None


@dataclass
class SmokingComparison:
    """Hypothesis 2 scoreboard: GUAVA vs context-blind, per status."""

    method: str
    current: PrecisionRecall
    ex: PrecisionRecall
    never: PrecisionRecall

    def as_rows(self) -> list[dict[str, object]]:
        return [
            {
                "method": self.method,
                "status": status,
                "precision": round(pr.precision, 4),
                "recall": round(pr.recall, 4),
                "f1": round(pr.f1, 4),
            }
            for status, pr in (
                ("current", self.current),
                ("ex", self.ex),
                ("never", self.never),
            )
        ]


def compare_smoking_extraction(world: ClinicalWorld) -> list[SmokingComparison]:
    """Score both methods against ground truth."""
    truth = truth_smoking_sets(world)
    comparisons = []
    for method, predicted in (
        ("guava+multiclass", guava_smoking(world)),
        ("context-blind", context_blind_smoking(world)),
    ):
        comparisons.append(
            SmokingComparison(
                method=method,
                current=precision_recall(predicted.current, truth.current),
                ex=precision_recall(predicted.ex, truth.ex),
                never=precision_recall(predicted.never, truth.never),
            )
        )
    return comparisons


# ---------------------------------------------------------------------------
# Global single-ETL baseline (A3)


@dataclass
class GlobalETLComparison:
    """Per study definition: error of the frozen global label vs per-study."""

    definition: str
    cohort_size_truth: int
    global_etl_errors: int
    multiclass_errors: int

    def as_row(self) -> dict[str, object]:
        return {
            "definition": f"quit {self.definition}",
            "truth_cohort": self.cohort_size_truth,
            "global_etl_mislabels": self.global_etl_errors,
            "multiclass_mislabels": self.multiclass_errors,
        }


def global_etl_ex_smokers(
    world: ClinicalWorld, global_definition: str = "ever"
) -> list[GlobalETLComparison]:
    """Freeze one ex-smoker label at load time; score per-study needs.

    The classic warehouse stores ``ex_smoker`` computed once with
    ``global_definition``.  Every study definition is then answered from
    that frozen column; MultiClass instead re-runs the matching
    classifier.  Errors are record-level disagreements with ground truth.
    """
    frozen: dict[RecordKey, bool] = {}
    per_study: dict[str, dict[RecordKey, bool]] = {}
    definitions = ("1y", "10y", "ever")
    for source in world.sources:
        vendor = vendor_classifiers_for(source)
        form = vendor.entity_classifier.form
        records = source.execute(GTreeQuery(source.gtree(form)))
        for record in records:
            key = (source.name, int(record[RECORD_ID]))
            frozen[key] = (
                vendor.ex_smoker(global_definition).classify(record) is True
            )
            for definition in definitions:
                per_study.setdefault(definition, {})[key] = (
                    vendor.ex_smoker(definition).classify(record) is True
                )

    comparisons = []
    within = {"1y": 1.0, "10y": 10.0, "ever": None}
    for definition in definitions:
        truth_labels: dict[RecordKey, bool] = {}
        for source_name, truths in world.truths_by_source.items():
            for index, truth in enumerate(truths):
                truth_labels[(source_name, index + 1)] = truth.patient.smoking.is_ex_smoker(
                    within[definition]
                )
        global_errors = sum(
            1 for key, actual in truth_labels.items() if frozen.get(key) != actual
        )
        multiclass_errors = sum(
            1
            for key, actual in truth_labels.items()
            if per_study[definition].get(key) != actual
        )
        comparisons.append(
            GlobalETLComparison(
                definition=definition,
                cohort_size_truth=sum(truth_labels.values()),
                global_etl_errors=global_errors,
                multiclass_errors=multiclass_errors,
            )
        )
    return comparisons
