"""Classifier sets relating each contributor's g-tree to the study schema.

This module is the analyst's work product: for every vendor tool, one
classifier per (attribute, domain) the CORI studies need, written against
that tool's g-tree nodes and informed by each control's context (question
wording, options, enablement).  The alternative classifiers for smoking
habits (cancer vs chemistry cutoffs, Figure 5a) and for the ex-smoker
definition (quit within 1 year / 10 years / ever) demonstrate why
MultiClass lets several classifiers target the same domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clinical.vocabulary import INDICATIONS
from repro.guava.source import GuavaSource
from repro.multiclass.classifier import Classifier, EntityClassifier, Rule
from repro.multiclass.study import Study


def _classifier(
    name: str,
    attribute: str,
    domain: str,
    rules: list[tuple[str, str]],
    description: str = "",
    entity: str = "Procedure",
    form: str = "",
) -> Classifier:
    return Classifier(
        name=name,
        target_entity=entity,
        target_attribute=attribute,
        target_domain=domain,
        rules=[Rule.of(output, guard) for output, guard in rules],
        description=description,
        source_form=form,
    )


def _flag_from_checkbox(name: str, attribute: str, node: str, description: str = "") -> Classifier:
    """Boolean attribute mirrored from one checkbox node."""
    return _classifier(
        name,
        attribute,
        "flag",
        [(node, f"{node} IS NOT NULL")],
        description or f"direct read of checkbox {node!r}",
    )


def _flag_from_list(
    name: str, attribute: str, list_node: str, item: str, description: str = ""
) -> Classifier:
    """Boolean attribute: is ``item`` among a CheckList's selections?"""
    return _classifier(
        name,
        attribute,
        "flag",
        [
            ("TRUE", f"CONTAINS({list_node}, '{item}')"),
            ("FALSE", f"{list_node} IS NULL"),
            ("FALSE", f"NOT CONTAINS({list_node}, '{item}')"),
        ],
        description or f"membership of {item!r} in {list_node}",
    )


@dataclass
class VendorClassifiers:
    """One vendor's classifiers, with the alternative definitions split out."""

    entity_classifier: EntityClassifier
    base: list[Classifier] = field(default_factory=list)
    habits_cancer: Classifier | None = None
    habits_chemistry: Classifier | None = None
    ex_smoker_1y: Classifier | None = None
    ex_smoker_10y: Classifier | None = None
    ex_smoker_ever: Classifier | None = None

    def ex_smoker(self, definition: str) -> Classifier:
        chosen = {
            "1y": self.ex_smoker_1y,
            "10y": self.ex_smoker_10y,
            "ever": self.ex_smoker_ever,
        }.get(definition)
        if chosen is None:
            raise ValueError(f"unknown ex-smoker definition {definition!r}")
        return chosen

    def habits(self, variant: str) -> Classifier:
        chosen = {
            "cancer": self.habits_cancer,
            "chemistry": self.habits_chemistry,
        }.get(variant)
        if chosen is None:
            raise ValueError(f"unknown habits variant {variant!r}")
        return chosen


# ---------------------------------------------------------------------------
# CORI


def cori_entity_classifier() -> EntityClassifier:
    return EntityClassifier(
        "cori_all_procedures",
        "Procedure",
        "procedure",
        condition="TRUE",
        description="every saved CORI procedure report",
    )


def cori_classifiers() -> VendorClassifiers:
    """Classifiers for the CORI tool's g-tree."""
    base = [
        _classifier(
            "cori_proc_type", "ProcedureType", "proc_type",
            [("procedure_type", "procedure_type IS NOT NULL")],
            "the procedure drop-down already uses study vocabulary",
        ),
        _classifier(
            "cori_indication", "Indication", "indication",
            [("indication", "indication IS NOT NULL")],
        ),
        _classifier(
            "cori_year", "ProcedureYear", "year",
            [("YEAR(procedure_date)", "procedure_date IS NOT NULL")],
            "calendar year extracted from the date picker",
        ),
        _flag_from_checkbox("cori_transient_hypoxia", "TransientHypoxia", "transient_hypoxia"),
        _flag_from_checkbox("cori_prolonged_hypoxia", "ProlongedHypoxia", "prolonged_hypoxia"),
        _classifier(
            "cori_any_hypoxia", "AnyHypoxia", "flag",
            [
                ("TRUE", "transient_hypoxia = TRUE OR prolonged_hypoxia = TRUE"),
                ("FALSE", "transient_hypoxia = FALSE AND prolonged_hypoxia = FALSE"),
            ],
        ),
        _flag_from_checkbox("cori_renal", "RenalFailureHistory", "renal_failure"),
        _flag_from_checkbox("cori_cardio", "CardioExamNormal", "cardio_wnl"),
        _flag_from_checkbox("cori_abdo", "AbdominalExamNormal", "abdominal_wnl"),
        _flag_from_list("cori_surgery", "SurgeryPerformed", "interventions", "Surgery"),
        _flag_from_list("cori_iv", "IVFluidsGiven", "interventions", "IV fluids"),
        _flag_from_list(
            "cori_oxygen", "OxygenGiven", "interventions", "Oxygen administration"
        ),
        _classifier(
            "cori_packs", "Smoking", "packs_per_day",
            [
                ("packs_per_day", "packs_per_day IS NOT NULL"),
                ("0", "smoking = 'Never'"),
            ],
            "frequency box only enables once the smoking question is answered",
        ),
        _classifier(
            "cori_status3", "Smoking", "status3",
            [
                ("'None'", "smoking = 'Never'"),
                ("'Current'", "smoking = 'Current'"),
                ("'Previous'", "smoking = 'Previous'"),
            ],
            "the CORI radio list matches domain 2 directly",
        ),
        _classifier(
            "cori_alcohol", "Alcohol", "alcohol3",
            [
                ("'None'", "alcohol = 'None'"),
                ("'Light'", "alcohol = 'Light'"),
                ("'Heavy'", "alcohol = 'Heavy'"),
            ],
            "free-text answers remain unclassified by design",
        ),
    ]
    habits_cancer = _classifier(
        "cori_habits_cancer", "Smoking", "habits4",
        [
            ("'None'", "smoking = 'Never' OR packs_per_day = 0"),
            ("'Light'", "packs_per_day > 0 AND packs_per_day < 2"),
            ("'Moderate'", "packs_per_day >= 2 AND packs_per_day < 5"),
            ("'Heavy'", "packs_per_day >= 5"),
        ],
        "Classifies packs per day according to conversations with cancer "
        "study on 5/3/02 (paper Figure 5a)",
    )
    habits_chemistry = _classifier(
        "cori_habits_chemistry", "Smoking", "habits4",
        [
            ("'None'", "smoking = 'Never' OR packs_per_day = 0"),
            ("'Light'", "packs_per_day > 0 AND packs_per_day < 1"),
            ("'Moderate'", "packs_per_day >= 1 AND packs_per_day < 2"),
            ("'Heavy'", "packs_per_day >= 2"),
        ],
        "Classifies packs per day according to flier from chemical studies "
        "(paper Figure 5a)",
    )
    ex_1y = _classifier(
        "cori_ex_smoker_1y", "ExSmoker", "flag",
        [
            ("TRUE", "smoking = 'Previous' AND quit_years_ago <= 1"),
            ("FALSE", "smoking != 'Previous'"),
            ("FALSE", "quit_years_ago > 1"),
        ],
        "ex-smoker = quit within the last year",
    )
    ex_10y = _classifier(
        "cori_ex_smoker_10y", "ExSmoker", "flag",
        [
            ("TRUE", "smoking = 'Previous' AND quit_years_ago <= 10"),
            ("FALSE", "smoking != 'Previous'"),
            ("FALSE", "quit_years_ago > 10"),
        ],
        "ex-smoker = quit within the last ten years",
    )
    ex_ever = _classifier(
        "cori_ex_smoker_ever", "ExSmoker", "flag",
        [
            ("TRUE", "smoking = 'Previous'"),
            ("FALSE", "smoking != 'Previous'"),
        ],
        "ex-smoker = has quit at any time",
    )
    return VendorClassifiers(
        entity_classifier=cori_entity_classifier(),
        base=base,
        habits_cancer=habits_cancer,
        habits_chemistry=habits_chemistry,
        ex_smoker_1y=ex_1y,
        ex_smoker_10y=ex_10y,
        ex_smoker_ever=ex_ever,
    )


def cori_finding_classifiers() -> tuple[EntityClassifier, list[Classifier]]:
    """Classifiers for CORI's finding form (includes Figure 5b's volume)."""
    entity = EntityClassifier(
        "cori_all_findings",
        "Finding",
        "finding",
        condition="TRUE",
        description="every recorded endoscopic finding",
        parent_link="procedure_id",
    )
    classifiers = [
        _classifier(
            "cori_finding_type", "FindingType", "finding_type",
            [("finding_type", "finding_type IS NOT NULL")],
            entity="Finding",
        ),
        _classifier(
            "cori_finding_size", "SizeMm", "mm",
            [("size_mm", "size_mm IS NOT NULL")],
            entity="Finding",
        ),
        _classifier(
            "cori_finding_images", "ImagesTaken", "flag",
            [("images_taken", "images_taken IS NOT NULL")],
            entity="Finding",
        ),
        _classifier(
            "cori_tumor_volume", "TumorVolume", "cubic_mm",
            [("size_mm * size_mm * size_mm * 0.52",
              "finding_type = 'Tumor' AND size_mm > 0")],
            "Estimates tumor volume from size. Assumes 52% occupancy from "
            "sphere-to-cube ratio (paper Figure 5b adapted to one dimension)",
            entity="Finding",
        ),
    ]
    return entity, classifiers


def cori_medication_classifiers() -> tuple[EntityClassifier, list[Classifier]]:
    """Classifiers for CORI's new-medication form (Figure 4's third entity)."""
    entity = EntityClassifier(
        "cori_all_medications",
        "NewMedication",
        "medication",
        condition="TRUE",
        description="every newly prescribed medication",
        parent_link="procedure_id",
    )
    classifiers = [
        _classifier(
            "cori_drug", "Drug", "name",
            [("drug", "drug IS NOT NULL")],
            entity="NewMedication",
        ),
        _classifier(
            "cori_dosage", "DosageMg", "mg",
            [("dosage_mg", "dosage_mg IS NOT NULL")],
            entity="NewMedication",
        ),
        _classifier(
            "cori_pills", "PillsPerDay", "per_day",
            [("pills_per_day", "pills_per_day IS NOT NULL")],
            entity="NewMedication",
        ),
    ]
    return entity, classifiers


# ---------------------------------------------------------------------------
# EndoPro


def endopro_entity_classifier() -> EntityClassifier:
    return EntityClassifier(
        "endopro_reports",
        "Procedure",
        "endoscopy_report",
        condition="TRUE",
        description="every EndoPro procedure report",
    )


def endopro_classifiers() -> VendorClassifiers:
    """Classifiers for EndoPro: ``smoker`` means *currently smokes*."""
    base = [
        _classifier(
            "endopro_proc_type", "ProcedureType", "proc_type",
            [("proc_kind", "proc_kind IS NOT NULL")],
        ),
        _classifier(
            "endopro_indication", "Indication", "indication",
            [("reason", "reason IS NOT NULL")],
        ),
        _flag_from_list(
            "endopro_transient_hypoxia", "TransientHypoxia",
            "complication_list", "Transient hypoxia",
        ),
        _flag_from_list(
            "endopro_prolonged_hypoxia", "ProlongedHypoxia",
            "complication_list", "Prolonged hypoxia",
        ),
        _flag_from_list(
            "endopro_any_hypoxia", "AnyHypoxia", "complication_list", "hypoxia"
        ),
        _flag_from_checkbox("endopro_renal", "RenalFailureHistory", "renal_hx"),
        _classifier(
            "endopro_cardio", "CardioExamNormal", "flag",
            [
                ("TRUE", "cardio_exam = 'WNL'"),
                ("FALSE", "cardio_exam = 'Abnormal'"),
            ],
            "'Not examined' stays unclassified rather than guessed",
        ),
        _classifier(
            "endopro_abdo", "AbdominalExamNormal", "flag",
            [
                ("TRUE", "abdominal_exam = 'WNL'"),
                ("FALSE", "abdominal_exam = 'Abnormal'"),
            ],
        ),
        _flag_from_list(
            "endopro_surgery", "SurgeryPerformed", "intervention_list", "Surgery"
        ),
        _flag_from_list(
            "endopro_iv", "IVFluidsGiven", "intervention_list", "IV fluids"
        ),
        _flag_from_list(
            "endopro_oxygen", "OxygenGiven", "intervention_list",
            "Oxygen administration",
        ),
        _classifier(
            "endopro_packs", "Smoking", "packs_per_day",
            [
                ("cigarettes_per_day / 20", "smoker = TRUE"),
                ("0", "smoker = FALSE AND former_smoker = FALSE"),
            ],
            "EndoPro counts cigarettes; 20 per pack.  Ex-smokers' historic "
            "frequency is not captured by this tool and stays unclassified",
        ),
        _classifier(
            "endopro_status3", "Smoking", "status3",
            [
                ("'Current'", "smoker = TRUE"),
                ("'Previous'", "former_smoker = TRUE"),
                ("'None'", "smoker = FALSE AND former_smoker = FALSE"),
            ],
            "the g-tree shows 'smoker' asks about CURRENT smoking only",
        ),
        _classifier(
            "endopro_alcohol", "Alcohol", "alcohol3",
            [
                ("'None'", "STARTSWITH(alcohol_notes, 'None')"),
                ("'Light'", "STARTSWITH(alcohol_notes, 'Light')"),
                ("'Heavy'", "STARTSWITH(alcohol_notes, 'Heavy')"),
            ],
            "vendor records alcohol as free text",
        ),
    ]
    habits_cancer = _classifier(
        "endopro_habits_cancer", "Smoking", "habits4",
        [
            ("'None'", "smoker = FALSE AND former_smoker = FALSE"),
            ("'Light'", "smoker = TRUE AND cigarettes_per_day > 0 AND cigarettes_per_day < 40"),
            ("'Moderate'", "smoker = TRUE AND cigarettes_per_day >= 40 AND cigarettes_per_day < 100"),
            ("'Heavy'", "smoker = TRUE AND cigarettes_per_day >= 100"),
            ("'None'", "smoker = TRUE AND cigarettes_per_day = 0"),
        ],
        "cancer-study cutoffs expressed in cigarettes (pack = 20)",
    )
    habits_chemistry = _classifier(
        "endopro_habits_chemistry", "Smoking", "habits4",
        [
            ("'None'", "smoker = FALSE AND former_smoker = FALSE"),
            ("'Light'", "smoker = TRUE AND cigarettes_per_day > 0 AND cigarettes_per_day < 20"),
            ("'Moderate'", "smoker = TRUE AND cigarettes_per_day >= 20 AND cigarettes_per_day < 40"),
            ("'Heavy'", "smoker = TRUE AND cigarettes_per_day >= 40"),
            ("'None'", "smoker = TRUE AND cigarettes_per_day = 0"),
        ],
        "chemistry-flier cutoffs expressed in cigarettes",
    )
    ex_1y = _classifier(
        "endopro_ex_smoker_1y", "ExSmoker", "flag",
        [
            ("TRUE", "former_smoker = TRUE AND years_since_quit <= 1"),
            ("FALSE", "smoker = TRUE"),
            ("FALSE", "former_smoker = FALSE"),
            ("FALSE", "years_since_quit > 1"),
        ],
    )
    ex_10y = _classifier(
        "endopro_ex_smoker_10y", "ExSmoker", "flag",
        [
            ("TRUE", "former_smoker = TRUE AND years_since_quit <= 10"),
            ("FALSE", "smoker = TRUE"),
            ("FALSE", "former_smoker = FALSE"),
            ("FALSE", "years_since_quit > 10"),
        ],
    )
    ex_ever = _classifier(
        "endopro_ex_smoker_ever", "ExSmoker", "flag",
        [
            ("TRUE", "former_smoker = TRUE"),
            ("FALSE", "smoker = TRUE"),
            ("FALSE", "former_smoker = FALSE"),
        ],
    )
    return VendorClassifiers(
        entity_classifier=endopro_entity_classifier(),
        base=base,
        habits_cancer=habits_cancer,
        habits_chemistry=habits_chemistry,
        ex_smoker_1y=ex_1y,
        ex_smoker_10y=ex_10y,
        ex_smoker_ever=ex_ever,
    )


# ---------------------------------------------------------------------------
# MedScribe


def medscribe_entity_classifier() -> EntityClassifier:
    return EntityClassifier(
        "medscribe_visits",
        "Procedure",
        "visit",
        condition="TRUE",
        description="every MedScribe visit record",
    )


def medscribe_classifiers() -> VendorClassifiers:
    """Classifiers for MedScribe: ``smoker`` means *has EVER smoked*."""
    indication_guard = " OR ".join(
        f"indication_text = '{indication}'" for indication in INDICATIONS
    )
    base = [
        _classifier(
            "medscribe_proc_type", "ProcedureType", "proc_type",
            [("procedure_code", "procedure_code IS NOT NULL")],
        ),
        _classifier(
            "medscribe_indication", "Indication", "indication",
            [("indication_text", indication_guard)],
            "free-text indications only classify when they match study "
            "vocabulary exactly",
        ),
        _classifier(
            "medscribe_year", "ProcedureYear", "year",
            [("YEAR(visit_date)", "visit_date IS NOT NULL")],
        ),
        _flag_from_checkbox(
            "medscribe_transient_hypoxia", "TransientHypoxia", "c_hypoxia_transient"
        ),
        _flag_from_checkbox(
            "medscribe_prolonged_hypoxia", "ProlongedHypoxia", "c_hypoxia_prolonged"
        ),
        _classifier(
            "medscribe_any_hypoxia", "AnyHypoxia", "flag",
            [
                ("TRUE", "c_hypoxia_transient = TRUE OR c_hypoxia_prolonged = TRUE"),
                ("FALSE", "c_hypoxia_transient = FALSE AND c_hypoxia_prolonged = FALSE"),
            ],
        ),
        _flag_from_checkbox("medscribe_renal", "RenalFailureHistory", "renal_failure_hx"),
        _flag_from_checkbox("medscribe_cardio", "CardioExamNormal", "cardio_ok"),
        _flag_from_checkbox("medscribe_abdo", "AbdominalExamNormal", "abdomen_ok"),
        _flag_from_checkbox("medscribe_surgery", "SurgeryPerformed", "i_surgery"),
        _flag_from_checkbox("medscribe_iv", "IVFluidsGiven", "i_iv_fluids"),
        _flag_from_checkbox("medscribe_oxygen", "OxygenGiven", "i_oxygen"),
        _classifier(
            "medscribe_packs", "Smoking", "packs_per_day",
            [
                ("packs_daily", "smoker = TRUE AND packs_daily IS NOT NULL"),
                ("0", "smoker = FALSE"),
            ],
        ),
        _classifier(
            "medscribe_status3", "Smoking", "status3",
            [
                ("'Current'", "smoker = TRUE AND quit = FALSE"),
                ("'Previous'", "smoker = TRUE AND quit = TRUE"),
                ("'None'", "smoker = FALSE"),
            ],
            "the g-tree shows 'smoker' asks about EVER smoking; 'quit' "
            "separates current from past",
        ),
    ]
    habits_cancer = _classifier(
        "medscribe_habits_cancer", "Smoking", "habits4",
        [
            ("'None'", "smoker = FALSE OR packs_daily = 0"),
            ("'Light'", "packs_daily > 0 AND packs_daily < 2"),
            ("'Moderate'", "packs_daily >= 2 AND packs_daily < 5"),
            ("'Heavy'", "packs_daily >= 5"),
        ],
    )
    habits_chemistry = _classifier(
        "medscribe_habits_chemistry", "Smoking", "habits4",
        [
            ("'None'", "smoker = FALSE OR packs_daily = 0"),
            ("'Light'", "packs_daily > 0 AND packs_daily < 1"),
            ("'Moderate'", "packs_daily >= 1 AND packs_daily < 2"),
            ("'Heavy'", "packs_daily >= 2"),
        ],
    )
    ex_1y = _classifier(
        "medscribe_ex_smoker_1y", "ExSmoker", "flag",
        [
            ("TRUE", "quit = TRUE AND years_quit <= 1"),
            ("FALSE", "smoker = FALSE"),
            ("FALSE", "quit = FALSE"),
            ("FALSE", "years_quit > 1"),
        ],
    )
    ex_10y = _classifier(
        "medscribe_ex_smoker_10y", "ExSmoker", "flag",
        [
            ("TRUE", "quit = TRUE AND years_quit <= 10"),
            ("FALSE", "smoker = FALSE"),
            ("FALSE", "quit = FALSE"),
            ("FALSE", "years_quit > 10"),
        ],
    )
    ex_ever = _classifier(
        "medscribe_ex_smoker_ever", "ExSmoker", "flag",
        [
            ("TRUE", "quit = TRUE"),
            ("FALSE", "smoker = FALSE"),
            ("FALSE", "quit = FALSE"),
        ],
    )
    return VendorClassifiers(
        entity_classifier=medscribe_entity_classifier(),
        base=base,
        habits_cancer=habits_cancer,
        habits_chemistry=habits_chemistry,
        ex_smoker_1y=ex_1y,
        ex_smoker_10y=ex_10y,
        ex_smoker_ever=ex_ever,
    )


# ---------------------------------------------------------------------------
# Binding helper


def vendor_classifiers_for(source: GuavaSource) -> VendorClassifiers:
    """The classifier set matching a clinical-world source."""
    by_tool = {
        "cori": cori_classifiers,
        "endopro": endopro_classifiers,
        "medscribe": medscribe_classifiers,
    }
    builder = by_tool.get(source.tool.name)
    if builder is None:
        raise ValueError(f"no classifier set for tool {source.tool.name!r}")
    return builder()


def standard_bindings(
    study: Study,
    sources: list[GuavaSource],
    ex_smoker_definition: str = "ever",
    habits_variant: str = "cancer",
) -> None:
    """Bind every source to ``study`` with the requested variants.

    Only classifiers whose targets the study actually selected are bound,
    so one helper serves every study over the endoscopy schema.
    """
    wanted = {(attribute, domain) for _, attribute, domain in study.elements}
    for source in sources:
        vendor = vendor_classifiers_for(source)
        chosen: list[Classifier] = []
        for classifier in vendor.base:
            if (classifier.target_attribute, classifier.target_domain) in wanted:
                chosen.append(classifier)
        if ("Smoking", "habits4") in wanted:
            chosen.append(vendor.habits(habits_variant))
        if ("ExSmoker", "flag") in wanted:
            chosen.append(vendor.ex_smoker(ex_smoker_definition))
        study.bind(source, [vendor.entity_classifier], chosen)
