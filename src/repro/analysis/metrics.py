"""Evaluation metrics: precision/recall and domain information loss."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.multiclass.domain import Domain


@dataclass(frozen=True)
class PrecisionRecall:
    """Extraction quality against ground truth (Hypothesis 2's metric)."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"(tp={self.true_positives}, fp={self.false_positives}, "
            f"fn={self.false_negatives})"
        )


def precision_recall(
    predicted: Iterable[Hashable], actual: Iterable[Hashable]
) -> PrecisionRecall:
    """Compare a predicted id set against the ground-truth id set."""
    predicted_set = set(predicted)
    actual_set = set(actual)
    return PrecisionRecall(
        true_positives=len(predicted_set & actual_set),
        false_positives=len(predicted_set - actual_set),
        false_negatives=len(actual_set - predicted_set),
    )


# ---------------------------------------------------------------------------
# Table 2: domain translation / information loss


def translation_is_lossless(
    source: Domain, target: Domain, mapping: Mapping[object, object]
) -> bool:
    """A translation preserves information iff it is total and injective.

    Table 2's point: none of the three smoking domains translate into each
    other losslessly (packs-per-day → category collapses intervals;
    category sets of different granularity cannot align).
    """
    if source.cardinality == float("inf"):
        # A translation out of an unbounded domain into a bounded one must
        # collapse infinitely many values; lossless is impossible.
        return target.cardinality == float("inf") and _mapping_injective(mapping)
    # Total over the source categories?
    for category in source.categories:
        if category not in mapping:
            return False
    if not _mapping_injective(mapping):
        return False
    # Every image must be a member of the target.
    return all(target.contains(value) for value in mapping.values())


def _mapping_injective(mapping: Mapping[object, object]) -> bool:
    images = list(mapping.values())
    return len(set(map(repr, images))) == len(images)


def domain_translation_report(
    domains: Mapping[str, Domain],
    translations: Mapping[tuple[str, str], Mapping[object, object]],
) -> list[dict[str, object]]:
    """Rows for the Table 2 experiment: each pair's best-case fidelity."""
    rows: list[dict[str, object]] = []
    names = list(domains)
    for source_name in names:
        for target_name in names:
            if source_name == target_name:
                continue
            mapping = translations.get((source_name, target_name))
            if mapping is None:
                rows.append(
                    {
                        "from": source_name,
                        "to": target_name,
                        "translation": "none defined",
                        "lossless": False,
                    }
                )
                continue
            rows.append(
                {
                    "from": source_name,
                    "to": target_name,
                    "translation": f"{len(mapping)} value mapping",
                    "lossless": translation_is_lossless(
                        domains[source_name], domains[target_name], mapping
                    ),
                }
            )
    return rows
