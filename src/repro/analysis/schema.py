"""The endoscopy study schema (paper Figure 4, extended for the studies).

One study schema serves all of CORI's studies — "we expect that CORI would
only need to have one study schema" — with the Procedure entity at the top
of the has-a tree and Finding / New Medication beneath it.  The Smoking
attribute carries the three domains of Table 2.
"""

from __future__ import annotations

from repro.clinical.vocabulary import INDICATIONS, PROCEDURE_TYPES
from repro.multiclass.domain import Domain
from repro.multiclass.study_schema import Entity, StudySchema

#: Table 2 domain 1: positive packs smoked per day.
PACKS_PER_DAY = Domain.real(
    "packs_per_day", "Number of packs smoked per day", minimum=0
)
#: Table 2 domain 2: no smoking, current smoker, or has smoked in the past.
STATUS3 = Domain.categorical(
    "status3", ["None", "Current", "Previous"], "No smoking / current / past"
)
#: Table 2 domain 3: general classification of smoking habits.
HABITS4 = Domain.categorical(
    "habits4",
    ["None", "Light", "Moderate", "Heavy"],
    "General classification of smoking habits",
)

FLAG = Domain.boolean("flag", "Yes/no")


def build_endoscopy_schema() -> StudySchema:
    """Construct the shared CORI study schema."""
    procedure = Entity("Procedure", description="The primary entity of interest")
    procedure.add_attribute(
        "ProcedureType",
        Domain.categorical("proc_type", list(PROCEDURE_TYPES)),
    )
    procedure.add_attribute(
        "Indication",
        Domain.categorical("indication", list(INDICATIONS)),
    )
    procedure.add_attribute(
        "ProcedureYear",
        Domain.integer("year", "Calendar year the procedure took place",
                       minimum=1990, maximum=2100),
    )
    procedure.add_attribute("TransientHypoxia", FLAG)
    procedure.add_attribute("ProlongedHypoxia", FLAG)
    procedure.add_attribute("AnyHypoxia", FLAG)
    procedure.add_attribute("RenalFailureHistory", FLAG)
    procedure.add_attribute("CardioExamNormal", FLAG)
    procedure.add_attribute("AbdominalExamNormal", FLAG)
    procedure.add_attribute("SurgeryPerformed", FLAG)
    procedure.add_attribute("IVFluidsGiven", FLAG)
    procedure.add_attribute("OxygenGiven", FLAG)
    procedure.add_attribute("Smoking", PACKS_PER_DAY, STATUS3, HABITS4)
    procedure.add_attribute("ExSmoker", FLAG)
    procedure.add_attribute(
        "Alcohol", Domain.categorical("alcohol3", ["None", "Light", "Heavy"])
    )

    finding = Entity("Finding", description="One endoscopic finding")
    finding.add_attribute(
        "FindingType",
        Domain.categorical(
            "finding_type", ["Fissure", "Polyp", "Ulcer", "Tumor", "Varices"]
        ),
    )
    finding.add_attribute("SizeMm", Domain.integer("mm", minimum=0))
    finding.add_attribute("ImagesTaken", FLAG)
    finding.add_attribute(
        "TumorVolume", Domain.real("cubic_mm", "Estimated volume", minimum=0)
    )
    procedure.add_child(finding)

    medication = Entity("NewMedication", description="Figure 4 fidelity entity")
    medication.add_attribute("Drug", Domain.text("name"))
    medication.add_attribute("DosageMg", Domain.integer("mg", minimum=0))
    medication.add_attribute("PillsPerDay", Domain.integer("per_day", minimum=0))
    procedure.add_child(medication)

    schema = StudySchema("endoscopy", procedure)
    schema.annotate(
        "cori-analyst-team",
        "created study schema",
        "shared schema for all CORI endoscopy studies (paper Figure 4)",
    )
    return schema
