"""The paper's two motivating studies (§2), executable.

**Study 1**: "of all patients undergoing upper GI endoscopy, how many had
the indication of Asthma-specific ENT/Pulmonary Reflux symptoms?  Of
these, include only those with no history of renal failure and with
cardiopulmonary and abdominal examinations within normal limits.  How many
of these suffered the complication of transient hypoxia?  Of these, how
many required each of the following interventions: surgery, IV fluids, or
oxygen administration?"

**Study 2**: "Of all procedures on ex-smokers, how many had a complication
of hypoxia?" — run under three different ex-smoker definitions to show why
the definition must be a per-study classifier choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classifiers import standard_bindings
from repro.analysis.schema import build_endoscopy_schema
from repro.clinical.sources import ClinicalWorld
from repro.multiclass.study import Study, StudyResult

Row = dict[str, object]


def build_cohort_study(
    name: str,
    world: ClinicalWorld,
    elements: list[tuple[str, str]],
    ex_smoker_definition: str = "ever",
    habits_variant: str = "cancer",
    description: str = "",
) -> Study:
    """A Procedure-level study selecting ``(attribute, domain)`` elements."""
    study = Study(name, build_endoscopy_schema(), description=description)
    for attribute, domain in elements:
        study.add_element("Procedure", attribute, domain)
    standard_bindings(
        study,
        world.sources,
        ex_smoker_definition=ex_smoker_definition,
        habits_variant=habits_variant,
    )
    study.annotate("cori-analyst", "defined study", description or name)
    return study


# ---------------------------------------------------------------------------
# Study 1


@dataclass
class Study1Funnel:
    """The funnel counts Study 1 reports."""

    upper_gi: int = 0
    with_indication: int = 0
    clean_history_and_exams: int = 0
    transient_hypoxia: int = 0
    interventions: dict[str, int] = field(default_factory=dict)

    def as_rows(self) -> list[dict[str, object]]:
        rows = [
            {"stage": "upper GI endoscopy", "count": self.upper_gi},
            {"stage": "+ asthma/reflux indication", "count": self.with_indication},
            {
                "stage": "+ no renal failure, exams WNL",
                "count": self.clean_history_and_exams,
            },
            {"stage": "+ transient hypoxia", "count": self.transient_hypoxia},
        ]
        for intervention, count in self.interventions.items():
            rows.append({"stage": f"  needing {intervention}", "count": count})
        return rows


STUDY1_ELEMENTS = [
    ("ProcedureType", "proc_type"),
    ("Indication", "indication"),
    ("RenalFailureHistory", "flag"),
    ("CardioExamNormal", "flag"),
    ("AbdominalExamNormal", "flag"),
    ("TransientHypoxia", "flag"),
    ("SurgeryPerformed", "flag"),
    ("IVFluidsGiven", "flag"),
    ("OxygenGiven", "flag"),
]


def build_study1(world: ClinicalWorld) -> Study:
    return build_cohort_study(
        "study1_hypoxia_interventions",
        world,
        STUDY1_ELEMENTS,
        description="Study 1 (§2): hypoxia interventions after upper GI "
        "endoscopy for asthma/reflux",
    )


def run_study1(world: ClinicalWorld, result: StudyResult | None = None) -> Study1Funnel:
    """Execute Study 1 and compute the funnel."""
    if result is None:
        result = build_study1(world).run()
    rows = result.rows("Procedure")
    funnel = Study1Funnel()
    stage1 = [r for r in rows if r["ProcedureType_proc_type"] == "Upper GI endoscopy"]
    funnel.upper_gi = len(stage1)
    stage2 = [
        r
        for r in stage1
        if r["Indication_indication"]
        == "Asthma-specific ENT/Pulmonary Reflux symptoms"
    ]
    funnel.with_indication = len(stage2)
    stage3 = [
        r
        for r in stage2
        if r["RenalFailureHistory_flag"] is False
        and r["CardioExamNormal_flag"] is True
        and r["AbdominalExamNormal_flag"] is True
    ]
    funnel.clean_history_and_exams = len(stage3)
    stage4 = [r for r in stage3 if r["TransientHypoxia_flag"] is True]
    funnel.transient_hypoxia = len(stage4)
    funnel.interventions = {
        "surgery": sum(1 for r in stage4 if r["SurgeryPerformed_flag"] is True),
        "IV fluids": sum(1 for r in stage4 if r["IVFluidsGiven_flag"] is True),
        "oxygen": sum(1 for r in stage4 if r["OxygenGiven_flag"] is True),
    }
    return funnel


def study1_truth_funnel(world: ClinicalWorld) -> Study1Funnel:
    """The same funnel computed directly from ground truth."""
    funnel = Study1Funnel()
    stage1 = [t for t in world.truths if t.procedure_type == "Upper GI endoscopy"]
    funnel.upper_gi = len(stage1)
    stage2 = [
        t
        for t in stage1
        if t.indication == "Asthma-specific ENT/Pulmonary Reflux symptoms"
    ]
    funnel.with_indication = len(stage2)
    stage3 = [
        t
        for t in stage2
        if not t.patient.renal_failure_history
        and t.cardio_exam_normal
        and t.abdominal_exam_normal
    ]
    funnel.clean_history_and_exams = len(stage3)
    stage4 = [t for t in stage3 if t.had_transient_hypoxia]
    funnel.transient_hypoxia = len(stage4)
    funnel.interventions = {
        "surgery": sum(1 for t in stage4 if "Surgery" in t.interventions),
        "IV fluids": sum(1 for t in stage4 if "IV fluids" in t.interventions),
        "oxygen": sum(
            1 for t in stage4 if "Oxygen administration" in t.interventions
        ),
    }
    return funnel


# ---------------------------------------------------------------------------
# Study 2


STUDY2_ELEMENTS = [
    ("ExSmoker", "flag"),
    ("AnyHypoxia", "flag"),
]


@dataclass
class Study2Result:
    """Study 2 counts under one ex-smoker definition."""

    definition: str
    ex_smokers: int
    ex_smokers_with_hypoxia: int

    @property
    def rate(self) -> float:
        return (
            self.ex_smokers_with_hypoxia / self.ex_smokers if self.ex_smokers else 0.0
        )


def build_study2(world: ClinicalWorld, definition: str = "ever") -> Study:
    return build_cohort_study(
        f"study2_exsmokers_{definition}",
        world,
        STUDY2_ELEMENTS,
        ex_smoker_definition=definition,
        description=f"Study 2 (§2): hypoxia among ex-smokers (definition: "
        f"quit {definition})",
    )


def run_study2(world: ClinicalWorld, definition: str = "ever") -> Study2Result:
    """Execute Study 2 under one ex-smoker definition."""
    result = build_study2(world, definition).run()
    rows = result.rows("Procedure")
    ex_rows = [r for r in rows if r["ExSmoker_flag"] is True]
    with_hypoxia = [r for r in ex_rows if r["AnyHypoxia_flag"] is True]
    return Study2Result(definition, len(ex_rows), len(with_hypoxia))


def study2_truth(world: ClinicalWorld, definition: str = "ever") -> Study2Result:
    """Study 2 computed from ground truth."""
    within = {"1y": 1.0, "10y": 10.0, "ever": None}[definition]
    ex = [t for t in world.truths if t.patient.smoking.is_ex_smoker(within)]
    with_hypoxia = [t for t in ex if t.had_any_hypoxia]
    return Study2Result(definition, len(ex), len(with_hypoxia))
