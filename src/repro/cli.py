"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction a front door: run the paper's studies, print the
pattern catalog, score the baselines, or export the classifier corpus —
without writing a script.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-Sensitive Clinical Data Integration "
        "(GUAVA + MultiClass) — paper studies and reports",
    )
    commands = parser.add_subparsers(dest="command")

    study1 = commands.add_parser(
        "study1", help="run Study 1: the hypoxia-interventions funnel"
    )
    _world_arguments(study1)
    study1.set_defaults(handler=_cmd_study1)

    study2 = commands.add_parser(
        "study2", help="run Study 2: ex-smokers with hypoxia"
    )
    _world_arguments(study2)
    study2.add_argument(
        "--definition",
        choices=["1y", "10y", "ever", "all"],
        default="all",
        help="ex-smoker definition (default: all three)",
    )
    study2.set_defaults(handler=_cmd_study2)

    pr = commands.add_parser(
        "precision-recall",
        help="score GUAVA vs the context-blind baseline (Hypothesis 2)",
    )
    _world_arguments(pr)
    pr.set_defaults(handler=_cmd_precision_recall)

    patterns = commands.add_parser(
        "patterns", help="print the design-pattern catalog (Table 1)"
    )
    patterns.set_defaults(handler=_cmd_patterns)

    lint = commands.add_parser(
        "lint",
        help="lint the classifier corpus for coverage gaps",
    )
    _world_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)

    export = commands.add_parser(
        "export-classifiers",
        help="print the full classifier corpus in the mini-language",
    )
    export.set_defaults(handler=_cmd_export)

    trace = commands.add_parser(
        "trace",
        help="profile a representative query or workflow under tracing",
    )
    _world_arguments(trace)
    trace.add_argument(
        "target",
        choices=["query", "workflow"],
        help="what to profile: a GUAVA-translated entity query "
        "(explain_analyze) or a compiled study workflow run",
    )
    trace.add_argument(
        "--parallelism", type=int, default=4, help="workflow threads (default 4)"
    )
    trace.add_argument(
        "--batch-size", type=int, default=256, help="workflow batch size (default 256)"
    )
    trace.add_argument(
        "--executor",
        choices=["row", "batch", "parallel"],
        default="batch",
        help="query execution path: columnar batch kernels (default), "
        "row-at-a-time streaming, or morsel-parallel batch kernels "
        "(target query only)",
    )
    trace.add_argument(
        "--workers",
        type=int,
        default=4,
        help="workers for --executor parallel (default 4)",
    )
    trace.add_argument(
        "--pool",
        choices=["auto", "thread", "process"],
        default="auto",
        help="worker pool for --executor parallel: auto (core/size policy), "
        "thread, or process (forced, shared-segment morsels)",
    )
    trace.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the trace JSON to PATH",
    )
    trace.add_argument(
        "--flame",
        action="store_true",
        help="print collapsed-stack flamegraph lines instead of the tree",
    )
    trace.add_argument(
        "--stats",
        action="store_true",
        help="after the trace, print per-table chunk statistics and "
        "dictionary build state (target query only)",
    )
    trace.set_defaults(handler=_cmd_trace)

    storage = commands.add_parser(
        "storage",
        help="durable-store operations: snapshot, recover, verify",
    )
    storage_actions = storage.add_subparsers(dest="action", required=True)
    for action, help_text in (
        ("snapshot", "open (= recover) a store and write a columnar checkpoint"),
        ("recover", "recover a store directory and report what replay did"),
        ("verify", "audit every durable artifact and fingerprint live state"),
    ):
        sub = storage_actions.add_parser(action, help=help_text)
        sub.add_argument("--dir", required=True, help="store directory")
        sub.add_argument(
            "--json",
            dest="json_path",
            default=None,
            metavar="PATH",
            help="also write the report as JSON to PATH",
        )
        sub.set_defaults(handler=_cmd_storage, action=action)

    gtree = commands.add_parser(
        "gtree", help="render a contributor's g-tree"
    )
    _world_arguments(gtree)
    gtree.add_argument(
        "source",
        choices=["cori", "endopro", "medscribe"],
        help="which contributor's tool to inspect",
    )
    gtree.add_argument("--form", default=None, help="form name (default: first)")
    gtree.set_defaults(handler=_cmd_gtree)

    return parser


def _world_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--procedures", type=int, default=300, help="world size (default 300)"
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed (default 7)")


def _world(args):
    from repro.clinical import build_world

    return build_world(args.procedures, seed=args.seed)


_SOURCE_NAMES = {
    "cori": "cori_warehouse_feed",
    "endopro": "endopro_clinic",
    "medscribe": "medscribe_clinic",
}


def _cmd_study1(args) -> int:
    from repro.analysis import run_study1, study1_truth_funnel

    world = _world(args)
    funnel = run_study1(world)
    truth = study1_truth_funnel(world)
    print(f"{'stage':40} {'measured':>9} {'truth':>6}")
    for measured, actual in zip(funnel.as_rows(), truth.as_rows()):
        print(f"{measured['stage']:40} {measured['count']:>9} {actual['count']:>6}")
    return 0 if funnel.as_rows() == truth.as_rows() else 1


def _cmd_study2(args) -> int:
    from repro.analysis import run_study2, study2_truth

    world = _world(args)
    definitions = ["1y", "10y", "ever"] if args.definition == "all" else [args.definition]
    print(f"{'definition':12} {'ex-smokers':>10} {'hypoxia':>8} {'rate':>6} {'truth?':>7}")
    exit_code = 0
    for definition in definitions:
        measured = run_study2(world, definition)
        actual = study2_truth(world, definition)
        matches = (
            measured.ex_smokers == actual.ex_smokers
            and measured.ex_smokers_with_hypoxia == actual.ex_smokers_with_hypoxia
        )
        if not matches:
            exit_code = 1
        print(
            f"quit {definition:7} {measured.ex_smokers:>10} "
            f"{measured.ex_smokers_with_hypoxia:>8} {measured.rate:>6.3f} "
            f"{'yes' if matches else 'NO':>7}"
        )
    return exit_code


def _cmd_precision_recall(args) -> int:
    from repro.analysis import compare_smoking_extraction

    world = _world(args)
    print(f"{'method':18} {'status':8} {'precision':>9} {'recall':>7} {'f1':>6}")
    for comparison in compare_smoking_extraction(world):
        for row in comparison.as_rows():
            print(
                f"{row['method']:18} {row['status']:8} "
                f"{row['precision']:>9.3f} {row['recall']:>7.3f} {row['f1']:>6.3f}"
            )
    return 0


def _cmd_patterns(args) -> int:
    from repro.patterns import pattern_summary

    print(f"{'pattern':12} {'Table 1':8} description")
    for row in pattern_summary():
        print(f"{row['pattern']:12} {row['in_table_1']:8} {row['description']}")
        print(f"{'':21} read path: {row['read_path']}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.classifiers import vendor_classifiers_for
    from repro.multiclass import lint_all

    world = _world(args)
    for source in world.sources:
        vendor = vendor_classifiers_for(source)
        classifiers = vendor.base + [
            vendor.habits_cancer,
            vendor.habits_chemistry,
            vendor.ex_smoker_1y,
            vendor.ex_smoker_10y,
            vendor.ex_smoker_ever,
        ]
        tree = source.gtree(vendor.entity_classifier.form)
        print(f"{source.name}:")
        for report in lint_all(classifiers, tree):
            if report.gaps:
                print(f"  {report.summary()}")
                for gap in report.gaps[:5]:
                    print(f"    {gap.describe()}")
    return 0


def _cmd_export(args) -> int:
    from repro.analysis.classifiers import (
        cori_classifiers,
        endopro_classifiers,
        medscribe_classifiers,
    )
    from repro.multiclass import Registry

    registry = Registry()
    for builder in (cori_classifiers, endopro_classifiers, medscribe_classifiers):
        vendor = builder()
        for classifier in vendor.base + [
            vendor.habits_cancer,
            vendor.habits_chemistry,
            vendor.ex_smoker_1y,
            vendor.ex_smoker_10y,
            vendor.ex_smoker_ever,
        ]:
            registry.add_classifier(classifier)
        registry.add_entity_classifier(vendor.entity_classifier)
    sys.stdout.write(registry.export_text())
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import Tracer, explain_analyze, tracing

    world = _world(args)
    if args.target == "query":
        from repro.analysis.classifiers import vendor_classifiers_for
        from repro.guava.query import GTreeQuery
        from repro.guava.translate import translate_query

        source = world.source(_SOURCE_NAMES["cori"])
        ec = vendor_classifiers_for(source).entity_classifier
        plan = translate_query(
            GTreeQuery(source.gtree(ec.form)).where(ec.condition), source.chain
        )
        from repro.relational import set_worker_pool_mode

        set_worker_pool_mode(args.pool)
        try:
            report = explain_analyze(
                plan, source.db, executor=args.executor, workers=args.workers
            )
        finally:
            set_worker_pool_mode(None)
        tracer: Tracer = report.tracer
        stats_db = source.db
        traced_plan = report.plan
    else:
        from repro.analysis.studies import STUDY1_ELEMENTS, build_cohort_study
        from repro.etl import compile_study
        from repro.relational import Database

        workflow = compile_study(
            build_cohort_study("trace", world, STUDY1_ELEMENTS), Database("warehouse")
        )
        with tracing() as tracer:
            workflow.run(parallelism=args.parallelism, batch_size=args.batch_size)
        stats_db = None
        traced_plan = None
    if args.flame:
        for root in tracer.roots:
            for line in root.flamegraph_lines():
                print(line)
    else:
        for root in tracer.roots:
            print(root.render())
    if args.stats:
        if stats_db is None:
            print("--stats applies to the query target only", file=sys.stderr)
        else:
            print()
            _print_statistics(stats_db)
            if traced_plan is not None:
                _print_build_sides(traced_plan, stats_db)
    if args.json_path:
        parent = os.path.dirname(args.json_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.json_path, "w", encoding="utf-8") as handle:
            handle.write(tracer.to_json())
        print(f"trace JSON written to {args.json_path}", file=sys.stderr)
    return 0


def _print_statistics(db) -> None:
    """Per-table zone-map chunk stats and dictionary build state."""
    from repro.relational import table_statistics_report

    for name in db.table_names():
        report = table_statistics_report(db.table(name))
        print(f"{report['table']} ({report['rows']} rows, v{report['version']}):")
        for entry in report["columns"]:
            span = ""
            if "min" in entry:
                span = f" min={entry['min']!r} max={entry['max']!r}"
            bands = ",".join(entry["bands"]) or "-"
            line = (
                f"  {entry['column']:24} {entry['dtype']:8} "
                f"chunks={entry['chunks']} nulls={entry['nulls']} "
                f"bands={bands} constant={entry['constant_chunks']}{span}"
            )
            dictionary = entry.get("dictionary")
            if dictionary is not None:
                if dictionary["state"] == "built":
                    line += f" dict=built({dictionary['cardinality']})"
                else:
                    line += f" dict=refused({dictionary['reason']})"
            if "ndv" in entry:
                line += f" ndv~{entry['ndv']:g} ({entry['ndv_source']})"
            print(line)


def _print_build_sides(plan, db) -> None:
    """Chosen hash-join build sides (with row estimates) for a traced plan."""
    from repro.relational.algebra import Join, trace_label
    from repro.relational.cost import estimate_plan_rows

    joins = [node for node in plan.walk() if isinstance(node, Join)]
    if not joins:
        return
    print()
    print("join build sides:")
    memo: dict[int, float] = {}
    for join in joins:
        left = estimate_plan_rows(join.left, db, memo)
        right = estimate_plan_rows(join.right, db, memo)
        print(
            f"  {trace_label(join):40} build={join.build} "
            f"est_left~{left:g} est_right~{right:g}"
        )


def _cmd_storage(args) -> int:
    import json

    from repro.errors import StorageError
    from repro.storage import DurableStore

    try:
        store = DurableStore(args.dir)
    except StorageError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    try:
        report = store.report.to_doc()
        if args.action == "snapshot":
            path = store.snapshot()
            document = {
                "recovery": report,
                "snapshot": str(path),
                "bytes": os.path.getsize(path),
            }
            print(f"snapshot written: {path} ({document['bytes']} bytes)")
        elif args.action == "recover":
            document = {"recovery": report}
            for key, value in report.items():
                print(f"{key:24} {value}")
        else:  # verify
            document = store.verify()
            wal_ok = document["wal"]["ok"]
            snaps_ok = all(s["ok"] for s in document["snapshots"])
            print(json.dumps(document, indent=2, default=str))
            if not (wal_ok and snaps_ok):
                return 1
        if args.json_path:
            parent = os.path.dirname(args.json_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, default=str)
        return 0
    finally:
        store.close()


def _cmd_gtree(args) -> int:
    world = _world(args)
    source = world.source(_SOURCE_NAMES[args.source])
    form = args.form or source.tool.forms[0].name
    tree = source.gtree(form)
    print(tree.render())
    print()
    for node in tree.data_nodes():
        print(node.context_summary())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
