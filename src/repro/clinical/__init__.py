"""The synthetic clinical world.

CORI's production endoscopy data is proprietary, so this package generates
a statistically plausible substitute *with ground truth*: patient profiles
and procedure facts are drawn first, then each contributor's reporting
tool records those facts through its own UI semantics and physical layout.
Because the truth is known, precision/recall of any extraction strategy is
measurable — something the paper's Hypothesis 2 calls for but real data
cannot provide.

The three contributors deliberately reproduce the paper's §1 example of
context divergence: the CORI tool asks smoking as Never/Current/Previous;
EndoPro's ``smoker`` checkbox means *currently smokes*; MedScribe's
``smoker`` checkbox means *has ever smoked*.  A ``1`` in the field
``smoker`` therefore means different things in different sources — exactly
the trap GUAVA's context information exists to defuse.
"""

from repro.clinical.vocabulary import (
    COMPLICATIONS,
    FINDING_TYPES,
    INDICATIONS,
    INTERVENTIONS,
    PROCEDURE_TYPES,
)
from repro.clinical.patients import Patient, SmokingHistory, generate_patients
from repro.clinical.ground_truth import ProcedureTruth, generate_truths
from repro.clinical.cori import build_cori_source, build_cori_tool
from repro.clinical.vendors import (
    build_endopro_source,
    build_endopro_tool,
    build_medscribe_source,
    build_medscribe_tool,
)
from repro.clinical.sources import ClinicalWorld, build_world

__all__ = [
    "COMPLICATIONS",
    "ClinicalWorld",
    "FINDING_TYPES",
    "INDICATIONS",
    "INTERVENTIONS",
    "PROCEDURE_TYPES",
    "Patient",
    "ProcedureTruth",
    "SmokingHistory",
    "build_cori_source",
    "build_cori_tool",
    "build_endopro_source",
    "build_endopro_tool",
    "build_medscribe_source",
    "build_medscribe_tool",
    "build_world",
    "generate_patients",
    "generate_truths",
]
