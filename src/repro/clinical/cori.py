"""The CORI reporting tool: forms, storage patterns, and data entry.

This is the reproduction's stand-in for the software tool CORI distributes
to clinics.  The medical-history screen follows the paper's Figure 2: a
complications group, a medical-history group, a smoking radio list whose
frequency box only enables once smoking is answered, and an alcohol
drop-down with free text (Figure 3).

CORI's physical layout uses the *Generic* (EAV) pattern behind an *Audit*
sentinel — the combination the paper calls the most frequent source of
schematic heterogeneity.
"""

from __future__ import annotations

from repro.clinical.ground_truth import ProcedureTruth, ordered_subset
from repro.clinical.vocabulary import (
    ALCOHOL_LEVELS,
    FINDING_TYPES,
    INDICATIONS,
    INTERVENTIONS,
    MEDICATIONS,
    PROCEDURE_TYPES,
)
from repro.guava.source import GuavaSource
from repro.patterns import AuditPattern, GenericPattern, PatternChain
from repro.ui import (
    CheckBox,
    CheckList,
    DatePicker,
    DropDown,
    Form,
    GroupBox,
    NumericBox,
    RadioGroup,
    ReportingTool,
    TextBox,
)

CORI_SMOKING_CHOICES = ("Never", "Current", "Previous")


def build_cori_tool(version: str = "1.0") -> ReportingTool:
    """The CORI endoscopy reporting tool."""
    procedure_form = Form(
        "procedure",
        "Endoscopic Procedure Report",
        controls=[
            GroupBox(
                "procedure_info",
                "Procedure",
                children=[
                    DatePicker("procedure_date", "Date of procedure", required=True),
                    NumericBox("patient_id", "Patient ID", required=True),
                    NumericBox("patient_age", "Patient age", minimum=0, maximum=120),
                    RadioGroup("patient_sex", "Sex", choices=["F", "M"]),
                    DropDown(
                        "procedure_type",
                        "Procedure performed",
                        choices=list(PROCEDURE_TYPES),
                        required=True,
                    ),
                    DropDown(
                        "indication",
                        "Primary indication",
                        choices=list(INDICATIONS),
                        required=True,
                    ),
                ],
            ),
            GroupBox(
                "examinations",
                "Physical Examination",
                children=[
                    CheckBox(
                        "cardio_wnl",
                        "Cardiopulmonary examination within normal limits",
                    ),
                    CheckBox(
                        "abdominal_wnl",
                        "Abdominal examination within normal limits",
                    ),
                ],
            ),
            GroupBox(
                "complications",
                "Complications",
                children=[
                    CheckBox("transient_hypoxia", "Transient hypoxia"),
                    CheckBox("prolonged_hypoxia", "Prolonged hypoxia"),
                    CheckBox("bleeding", "Bleeding"),
                    CheckBox("perforation", "Perforation"),
                    CheckBox("arrhythmia", "Arrhythmia"),
                    CheckBox("surgeon_consulted", "Surgeon consulted"),
                    TextBox("other_complication", "Other"),
                ],
            ),
            GroupBox(
                "interventions_group",
                "Interventions",
                children=[
                    CheckList(
                        "interventions",
                        "Interventions required",
                        choices=list(INTERVENTIONS),
                    ),
                ],
            ),
            GroupBox(
                "medical_history",
                "Medical History",
                children=[
                    CheckBox("renal_failure", "History of renal failure"),
                    RadioGroup(
                        "smoking",
                        "Does the patient smoke? (Previous = has smoked at "
                        "any time in the past)",
                        choices=list(CORI_SMOKING_CHOICES),
                    ),
                    NumericBox(
                        "packs_per_day",
                        "Frequency (packs per day)",
                        integer=False,
                        minimum=0,
                        maximum=20,
                        enabled_when="smoking IS NOT NULL AND smoking != 'Never'",
                    ),
                    NumericBox(
                        "quit_years_ago",
                        "Years since quitting",
                        integer=False,
                        minimum=0,
                        enabled_when="smoking = 'Previous'",
                    ),
                    DropDown(
                        "alcohol",
                        "Alcohol use",
                        choices=list(ALCOHOL_LEVELS),
                        free_text=True,
                    ),
                ],
            ),
        ],
    )
    finding_form = Form(
        "finding",
        "Endoscopic Finding",
        controls=[
            NumericBox("procedure_id", "Procedure record", required=True),
            DropDown(
                "finding_type", "Finding", choices=list(FINDING_TYPES), required=True
            ),
            NumericBox("size_mm", "Size (mm)", minimum=0, maximum=500),
            CheckBox("images_taken", "Images taken"),
        ],
    )
    medication_form = Form(
        "medication",
        "New Medication",
        controls=[
            NumericBox("procedure_id", "Procedure record", required=True),
            DropDown("drug", "Drug", choices=list(MEDICATIONS), required=True),
            NumericBox("dosage_mg", "Dosage (mg)", minimum=0, maximum=5000),
            NumericBox("pills_per_day", "Pills per day", minimum=0, maximum=24),
            TextBox("instructions", "Full instructions", multiline=True),
        ],
    )
    return ReportingTool(
        "cori",
        version,
        forms=[procedure_form, finding_form, medication_form],
        vendor="CORI",
    )


def build_cori_chain(tool: ReportingTool) -> PatternChain:
    """CORI's physical layout: Generic EAV behind an Audit sentinel."""
    return PatternChain(
        tool.naive_schemas(),
        [
            GenericPattern(
                ["procedure", "finding", "medication"], eav_table="cori_eav"
            ),
            AuditPattern(deleted_column="deprecated"),
        ],
    )


def cori_procedure_values(truth: ProcedureTruth) -> dict[str, object]:
    """How a clinician records one procedure in the CORI tool."""
    smoking = truth.patient.smoking
    status = {"never": "Never", "current": "Current", "ex": "Previous"}[smoking.status]
    values: dict[str, object] = {
        "procedure_date": truth.performed_on,
        "patient_id": truth.patient.patient_id,
        "patient_age": truth.patient.age,
        "patient_sex": truth.patient.sex,
        "procedure_type": truth.procedure_type,
        "indication": truth.indication,
        "cardio_wnl": truth.cardio_exam_normal,
        "abdominal_wnl": truth.abdominal_exam_normal,
        "transient_hypoxia": "Transient hypoxia" in truth.complications,
        "prolonged_hypoxia": "Prolonged hypoxia" in truth.complications,
        "bleeding": "Bleeding" in truth.complications,
        "perforation": "Perforation" in truth.complications,
        "arrhythmia": "Arrhythmia" in truth.complications,
        "surgeon_consulted": truth.surgery_performed,
        "renal_failure": truth.patient.renal_failure_history,
        # Answer the smoking question before its dependent boxes enable.
        "smoking": status,
    }
    if smoking.status != "never":
        values["packs_per_day"] = smoking.packs_per_day
    if smoking.status == "ex":
        values["quit_years_ago"] = smoking.quit_years_ago
    values["alcohol"] = truth.patient.alcohol
    interventions = ordered_subset(INTERVENTIONS, truth.interventions)
    if interventions:
        values["interventions"] = interventions
    return values


def build_cori_source(
    truths: list[ProcedureTruth], name: str = "cori_warehouse_feed"
) -> GuavaSource:
    """A populated CORI contributor source."""
    tool = build_cori_tool()
    source = GuavaSource(name, tool, build_cori_chain(tool))
    session = source.session()
    for truth in truths:
        row = session.enter("procedure", cori_procedure_values(truth))
        for finding in truth.findings:
            session.enter(
                "finding",
                {
                    "procedure_id": row["record_id"],
                    "finding_type": finding.finding_type,
                    "size_mm": finding.size_mm,
                    "images_taken": finding.images_taken,
                },
            )
        for medication in truth.medications:
            session.enter(
                "medication",
                {
                    "procedure_id": row["record_id"],
                    "drug": medication.drug,
                    "dosage_mg": medication.dosage_mg,
                    "pills_per_day": medication.pills_per_day,
                    "instructions": medication.instructions,
                },
            )
    return source
