"""Ground-truth procedure facts, independent of any reporting tool.

Every vendor tool records these facts through its own UI; extraction
quality (Hypothesis 2) is then measurable as precision/recall against
this truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date, timedelta

from repro.clinical.patients import Patient, generate_patients
from repro.clinical.vocabulary import (
    FINDING_TYPES,
    INDICATIONS,
    INDICATION_WEIGHTS,
    MEDICATION_INSTRUCTIONS,
    MEDICATIONS,
    PROCEDURE_TYPES,
    PROCEDURE_TYPE_WEIGHTS,
)


@dataclass(frozen=True)
class FindingTruth:
    """One endoscopic finding within a procedure."""

    finding_type: str
    size_mm: int
    images_taken: bool


@dataclass(frozen=True)
class MedicationTruth:
    """One medication newly prescribed at a procedure (Figure 4's entity)."""

    drug: str
    dosage_mg: int
    pills_per_day: int
    instructions: str


@dataclass(frozen=True)
class ProcedureTruth:
    """Everything that truly happened in one procedure."""

    procedure_id: int
    patient: Patient
    procedure_type: str
    performed_on: date
    indication: str
    cardio_exam_normal: bool
    abdominal_exam_normal: bool
    complications: tuple[str, ...]
    interventions: tuple[str, ...]
    findings: tuple[FindingTruth, ...] = field(default_factory=tuple)
    medications: tuple[MedicationTruth, ...] = field(default_factory=tuple)
    surgery_performed: bool = False

    @property
    def had_transient_hypoxia(self) -> bool:
        return "Transient hypoxia" in self.complications

    @property
    def had_any_hypoxia(self) -> bool:
        return any("hypoxia" in c.lower() for c in self.complications)


def generate_truths(
    count: int, seed: int = 7, patients: list[Patient] | None = None
) -> list[ProcedureTruth]:
    """Draw ``count`` procedures deterministically from ``seed``.

    Patients are reused across procedures (a patient can undergo several),
    matching the CORI setting where the procedure is the primary entity.
    """
    rng = random.Random(seed * 7919 + 13)
    if patients is None:
        patients = generate_patients(max(count // 2, 10), seed=seed)
    truths = []
    for procedure_id in range(1, count + 1):
        truths.append(_draw_procedure(rng, procedure_id, rng.choice(patients)))
    return truths


def _draw_procedure(
    rng: random.Random, procedure_id: int, patient: Patient
) -> ProcedureTruth:
    procedure_type = rng.choices(PROCEDURE_TYPES, weights=PROCEDURE_TYPE_WEIGHTS)[0]
    indication = rng.choices(INDICATIONS, weights=INDICATION_WEIGHTS)[0]

    complications: list[str] = []
    # Hypoxia is more likely for smokers and reflux/asthma indications —
    # gives Study 1 and 2 a real signal to find.
    hypoxia_p = 0.08
    if patient.smoking.ever_smoked:
        hypoxia_p += 0.10
    if indication == "Asthma-specific ENT/Pulmonary Reflux symptoms":
        hypoxia_p += 0.12
    if rng.random() < hypoxia_p:
        complications.append(
            "Transient hypoxia" if rng.random() < 0.8 else "Prolonged hypoxia"
        )
    for complication in ("Bleeding", "Perforation", "Arrhythmia"):
        if rng.random() < 0.03:
            complications.append(complication)

    interventions: list[str] = []
    if complications:
        if any("hypoxia" in c.lower() for c in complications) and rng.random() < 0.85:
            interventions.append("Oxygen administration")
        if rng.random() < 0.30:
            interventions.append("IV fluids")
        if "Perforation" in complications or rng.random() < 0.08:
            interventions.append("Surgery")
        if "Bleeding" in complications and rng.random() < 0.5:
            interventions.append("Transfusion")
        if not interventions:
            interventions.append("Observation")

    findings: list[FindingTruth] = []
    for _ in range(rng.choices((0, 1, 2, 3), weights=(0.45, 0.3, 0.17, 0.08))[0]):
        findings.append(
            FindingTruth(
                finding_type=rng.choice(FINDING_TYPES),
                size_mm=rng.randint(1, 60),
                images_taken=rng.random() < 0.7,
            )
        )

    # Medications use their own generator keyed by procedure id so adding
    # them did not shift any existing draw (documented counts stay stable).
    med_rng = random.Random(procedure_id * 104729 + 7)
    medications: list[MedicationTruth] = []
    medication_count = med_rng.choices((0, 1, 2), weights=(0.6, 0.3, 0.1))[0]
    if indication == "Asthma-specific ENT/Pulmonary Reflux symptoms":
        medication_count = max(medication_count, 1)  # reflux gets a PPI
    for _ in range(medication_count):
        medications.append(
            MedicationTruth(
                drug=med_rng.choice(MEDICATIONS),
                dosage_mg=med_rng.choice((10, 20, 40, 50)),
                pills_per_day=med_rng.randint(1, 3),
                instructions=med_rng.choice(MEDICATION_INSTRUCTIONS),
            )
        )

    return ProcedureTruth(
        procedure_id=procedure_id,
        patient=patient,
        procedure_type=procedure_type,
        # Derived from the id, not the rng, so adding the date field did
        # not shift any other draw (documented counts stay stable).
        performed_on=date(2005, 1, 1) + timedelta(days=(procedure_id * 37) % 540),
        indication=indication,
        cardio_exam_normal=rng.random() < 0.85,
        abdominal_exam_normal=rng.random() < 0.8,
        complications=tuple(complications),
        interventions=tuple(interventions),
        findings=tuple(findings),
        medications=tuple(medications),
        surgery_performed="Surgery" in interventions,
    )


def ordered_subset(universe: tuple[str, ...], chosen: tuple[str, ...]) -> list[str]:
    """``chosen`` in the canonical order of ``universe`` (for CheckLists)."""
    picked = set(chosen)
    return [item for item in universe if item in picked]
