"""Synthetic patients with ground-truth health histories."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.clinical.vocabulary import ALCOHOL_LEVELS


@dataclass(frozen=True)
class SmokingHistory:
    """The true smoking facts about a patient.

    ``status`` is never/current/ex; for ex-smokers ``quit_years_ago``
    records when they quit — the attribute whose different study
    definitions ("quit in the last year" vs "has ever smoked") motivate
    per-study classifiers.
    """

    status: str  # "never" | "current" | "ex"
    packs_per_day: float = 0.0
    quit_years_ago: float | None = None

    def __post_init__(self) -> None:
        if self.status not in ("never", "current", "ex"):
            raise ValueError(f"bad smoking status {self.status!r}")
        if self.status == "ex" and self.quit_years_ago is None:
            raise ValueError("ex-smokers need quit_years_ago")

    @property
    def ever_smoked(self) -> bool:
        return self.status != "never"

    @property
    def currently_smokes(self) -> bool:
        return self.status == "current"

    def is_ex_smoker(self, within_years: float | None = None) -> bool:
        """Ex-smoker under a study's definition (quit within N years; None
        = quit at any time)."""
        if self.status != "ex":
            return False
        if within_years is None:
            return True
        assert self.quit_years_ago is not None
        return self.quit_years_ago <= within_years


@dataclass(frozen=True)
class Patient:
    """One patient's ground truth."""

    patient_id: int
    age: int
    sex: str
    smoking: SmokingHistory
    alcohol: str  # None | Light | Heavy
    renal_failure_history: bool


def generate_patients(count: int, seed: int = 7) -> list[Patient]:
    """Draw ``count`` patients deterministically from ``seed``."""
    rng = random.Random(seed)
    patients = []
    for patient_id in range(1, count + 1):
        patients.append(_draw_patient(rng, patient_id))
    return patients


def _draw_patient(rng: random.Random, patient_id: int) -> Patient:
    status = rng.choices(("never", "current", "ex"), weights=(0.5, 0.25, 0.25))[0]
    if status == "never":
        smoking = SmokingHistory("never")
    elif status == "current":
        smoking = SmokingHistory("current", packs_per_day=_draw_packs(rng))
    else:
        # Quit times cluster near the present (many recent quitters), so
        # Study 2's "quit within a year" cohort is non-empty at study sizes.
        smoking = SmokingHistory(
            "ex",
            packs_per_day=_draw_packs(rng),
            quit_years_ago=round(min(rng.expovariate(0.18) + 0.1, 25.0), 1),
        )
    return Patient(
        patient_id=patient_id,
        age=rng.randint(21, 90),
        sex=rng.choice(("F", "M")),
        smoking=smoking,
        alcohol=rng.choices(ALCOHOL_LEVELS, weights=(0.55, 0.35, 0.10))[0],
        renal_failure_history=rng.random() < 0.08,
    )


def _draw_packs(rng: random.Random) -> float:
    """Packs/day clustered at light smoking with a heavy tail."""
    value = rng.expovariate(0.9)
    return round(min(value + 0.1, 8.0), 1)
