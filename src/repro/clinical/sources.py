"""Assemble the full clinical world: truth + three populated contributors."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.clinical.cori import build_cori_source
from repro.clinical.ground_truth import ProcedureTruth, generate_truths
from repro.clinical.vendors import build_endopro_source, build_medscribe_source
from repro.guava.source import GuavaSource


@dataclass
class ClinicalWorld:
    """Ground truth plus the contributor sources that recorded it.

    ``assignment`` maps each procedure id to the source that documented it
    (an endoscopy report "is likely not created twice", §3.1, so sources
    partition the procedures and integration is a union).
    """

    truths: list[ProcedureTruth]
    sources: list[GuavaSource]
    assignment: dict[int, str] = field(default_factory=dict)
    truths_by_source: dict[str, list[ProcedureTruth]] = field(default_factory=dict)

    def truth_for(self, source_name: str, record_id: int) -> ProcedureTruth:
        """The ground truth behind one source record.

        Record ids are assigned sequentially per source in entry order, so
        the k-th record of a source corresponds to the k-th truth routed
        there.
        """
        return self.truths_by_source[source_name][record_id - 1]

    def source(self, name: str) -> GuavaSource:
        for source in self.sources:
            if source.name == name:
                return source
        raise KeyError(name)

    @property
    def procedure_count(self) -> int:
        return len(self.truths)


def build_world(
    n_procedures: int = 300,
    seed: int = 7,
    shares: tuple[float, float, float] = (0.5, 0.3, 0.2),
) -> ClinicalWorld:
    """Generate truth and route procedures to CORI/EndoPro/MedScribe.

    ``shares`` are the contributors' market shares; routing is drawn
    deterministically from ``seed``.
    """
    truths = generate_truths(n_procedures, seed=seed)
    rng = random.Random(seed * 31 + 5)
    routed: dict[str, list[ProcedureTruth]] = {
        "cori_warehouse_feed": [],
        "endopro_clinic": [],
        "medscribe_clinic": [],
    }
    names = list(routed)
    assignment: dict[int, str] = {}
    for truth in truths:
        name = rng.choices(names, weights=shares)[0]
        routed[name].append(truth)
        assignment[truth.procedure_id] = name
    sources = [
        build_cori_source(routed["cori_warehouse_feed"]),
        build_endopro_source(routed["endopro_clinic"]),
        build_medscribe_source(routed["medscribe_clinic"]),
    ]
    return ClinicalWorld(
        truths=truths,
        sources=sources,
        assignment=assignment,
        truths_by_source=routed,
    )
