"""Two commercial vendor reporting tools contributing to the warehouse.

"Several commercial reporting tool vendors have expressed an interest in
contributing data to CORI's clinical data warehouse.  Each new vendor
necessitates a new ETL workflow, potentially for each study."

The vendors are built to exercise the paper's §1 trap: the *same column
name* (``smoker``) with *different UI semantics*:

* **EndoPro** — "Does the patient currently smoke?"  ``smoker = 1`` means
  a current smoker; a separate ``former_smoker`` box covers the past.
* **MedScribe** — "Has the patient EVER smoked?"  ``smoker = 1`` includes
  everyone with any smoking history; a ``quit`` box distinguishes.

A context-blind reader that treats ``smoker`` uniformly misclassifies one
of the two; GUAVA's g-trees carry the question wording that disambiguates.
The vendors also use different physical layouts so every design pattern
gets exercised in the integration benchmarks.
"""

from __future__ import annotations

from repro.clinical.ground_truth import ProcedureTruth, ordered_subset
from repro.clinical.vocabulary import (
    COMPLICATIONS,
    INDICATIONS,
    INTERVENTIONS,
    PROCEDURE_TYPES,
)
from repro.guava.source import GuavaSource
from repro.patterns import (
    AuditPattern,
    EncodingPattern,
    LookupPattern,
    MergePattern,
    MultivaluePattern,
    PatternChain,
    SplitPattern,
    VersionedPattern,
)
from repro.ui import (
    CheckBox,
    CheckList,
    DatePicker,
    DropDown,
    Form,
    GroupBox,
    NumericBox,
    RadioGroup,
    ReportingTool,
    TextBox,
)

EXAM_CHOICES = ("WNL", "Abnormal", "Not examined")


# ---------------------------------------------------------------------------
# EndoPro


def build_endopro_tool(version: str = "3.2") -> ReportingTool:
    """EndoPro: ``smoker`` asks about *current* smoking."""
    report = Form(
        "endoscopy_report",
        "EndoPro Procedure Documentation",
        controls=[
            NumericBox("patient_ref", "Patient reference", required=True),
            DropDown(
                "proc_kind",
                "Type of procedure",
                choices=list(PROCEDURE_TYPES),
                required=True,
            ),
            DropDown(
                "reason",
                "Reason for examination",
                choices=list(INDICATIONS),
                required=True,
            ),
            GroupBox(
                "exams",
                "Examination",
                children=[
                    RadioGroup(
                        "cardio_exam", "Cardiopulmonary exam", choices=list(EXAM_CHOICES)
                    ),
                    RadioGroup(
                        "abdominal_exam", "Abdominal exam", choices=list(EXAM_CHOICES)
                    ),
                ],
            ),
            GroupBox(
                "events",
                "Procedure events",
                children=[
                    CheckList(
                        "complication_list",
                        "Complications observed",
                        choices=list(COMPLICATIONS),
                    ),
                    CheckList(
                        "intervention_list",
                        "Interventions performed",
                        choices=list(INTERVENTIONS),
                    ),
                ],
            ),
            GroupBox(
                "history",
                "Patient history",
                children=[
                    CheckBox("renal_hx", "Renal failure in history"),
                    CheckBox("smoker", "Does the patient currently smoke?"),
                    NumericBox(
                        "cigarettes_per_day",
                        "Cigarettes per day",
                        minimum=0,
                        maximum=400,
                        enabled_when="smoker = TRUE",
                    ),
                    CheckBox(
                        "former_smoker",
                        "Did the patient smoke in the past?",
                        enabled_when="smoker = FALSE",
                    ),
                    NumericBox(
                        "years_since_quit",
                        "Years since quitting",
                        integer=False,
                        minimum=0,
                        enabled_when="former_smoker = TRUE",
                    ),
                    TextBox("alcohol_notes", "Alcohol (free text)"),
                ],
            ),
        ],
    )
    return ReportingTool("endopro", version, forms=[report], vendor="EndoSoft Inc.")


def build_endopro_chain(tool: ReportingTool) -> PatternChain:
    """EndoPro's layout: split + lookup + multivalue + audit."""
    return PatternChain(
        tool.naive_schemas(),
        [
            MultivaluePattern(
                "endoscopy_report", "complication_list", "report_complications"
            ),
            MultivaluePattern(
                "endoscopy_report", "intervention_list", "report_interventions"
            ),
            LookupPattern({("endoscopy_report", "reason"): "reason_codes"}),
            SplitPattern(
                "endoscopy_report",
                {
                    "report_main": [
                        "patient_ref",
                        "proc_kind",
                        "reason_code",
                        "cardio_exam",
                        "abdominal_exam",
                    ],
                    "report_history": [
                        "renal_hx",
                        "smoker",
                        "cigarettes_per_day",
                        "former_smoker",
                        "years_since_quit",
                        "alcohol_notes",
                    ],
                },
            ),
            AuditPattern(),
        ],
    )


def endopro_values(truth: ProcedureTruth) -> dict[str, object]:
    """How an EndoPro user records one procedure."""
    smoking = truth.patient.smoking
    values: dict[str, object] = {
        "patient_ref": truth.patient.patient_id,
        "proc_kind": truth.procedure_type,
        "reason": truth.indication,
        "cardio_exam": "WNL" if truth.cardio_exam_normal else "Abnormal",
        "abdominal_exam": "WNL" if truth.abdominal_exam_normal else "Abnormal",
        "renal_hx": truth.patient.renal_failure_history,
        "smoker": smoking.currently_smokes,
    }
    if smoking.currently_smokes:
        # EndoPro counts cigarettes; a pack is 20.
        values["cigarettes_per_day"] = int(round(smoking.packs_per_day * 20))
    elif smoking.status == "ex":
        values["former_smoker"] = True
        values["years_since_quit"] = smoking.quit_years_ago
    complications = ordered_subset(COMPLICATIONS, truth.complications)
    if complications:
        values["complication_list"] = complications
    interventions = ordered_subset(INTERVENTIONS, truth.interventions)
    if interventions:
        values["intervention_list"] = interventions
    values["alcohol_notes"] = f"{truth.patient.alcohol} use reported"
    return values


def build_endopro_source(
    truths: list[ProcedureTruth], name: str = "endopro_clinic"
) -> GuavaSource:
    tool = build_endopro_tool()
    source = GuavaSource(name, tool, build_endopro_chain(tool))
    session = source.session()
    for truth in truths:
        session.enter("endoscopy_report", endopro_values(truth))
    return source


# ---------------------------------------------------------------------------
# MedScribe


def build_medscribe_tool(version: str = "2.0") -> ReportingTool:
    """MedScribe: ``smoker`` asks about *ever* smoking — the §1 trap."""
    visit = Form(
        "visit",
        "MedScribe Visit Record",
        controls=[
            NumericBox("pt_num", "Patient number", required=True),
            DatePicker("visit_date", "Date of visit"),
            DropDown(
                "procedure_code",
                "Procedure",
                choices=list(PROCEDURE_TYPES),
                required=True,
            ),
            TextBox("indication_text", "Indication (free text)"),
            CheckBox("cardio_ok", "Cardiopulmonary exam normal"),
            CheckBox("abdomen_ok", "Abdominal exam normal"),
            GroupBox(
                "complication_boxes",
                "Complications",
                children=[
                    CheckBox("c_hypoxia_transient", "Transient hypoxia"),
                    CheckBox("c_hypoxia_prolonged", "Prolonged hypoxia"),
                    CheckBox("c_bleeding", "Bleeding"),
                    CheckBox("c_perforation", "Perforation"),
                    CheckBox("c_arrhythmia", "Arrhythmia"),
                ],
            ),
            GroupBox(
                "intervention_boxes",
                "Interventions",
                children=[
                    CheckBox("i_surgery", "Surgery required"),
                    CheckBox("i_iv_fluids", "IV fluids given"),
                    CheckBox("i_oxygen", "Oxygen administered"),
                    CheckBox("i_transfusion", "Transfusion"),
                    CheckBox("i_observation", "Observation only"),
                ],
            ),
            GroupBox(
                "social",
                "Social history",
                children=[
                    CheckBox("renal_failure_hx", "Renal failure history"),
                    CheckBox("smoker", "Has the patient EVER smoked?"),
                    CheckBox(
                        "quit",
                        "Has the patient quit?",
                        enabled_when="smoker = TRUE",
                    ),
                    NumericBox(
                        "packs_daily",
                        "Packs per day (current or before quitting)",
                        integer=False,
                        minimum=0,
                        enabled_when="smoker = TRUE",
                    ),
                    NumericBox(
                        "years_quit",
                        "Years since quit",
                        integer=False,
                        minimum=0,
                        enabled_when="quit = TRUE",
                    ),
                ],
            ),
        ],
    )
    admin = Form(
        "admin_note",
        "Administrative Note",
        controls=[
            NumericBox("pt_num", "Patient number", required=True),
            TextBox("note", "Note", multiline=True),
        ],
    )
    return ReportingTool("medscribe", version, forms=[visit, admin], vendor="MedScribe LLC")


def build_medscribe_chain(tool: ReportingTool) -> PatternChain:
    """MedScribe's layout: merge + Y/N encoding + version stamps."""
    boolean_columns = [
        "cardio_ok",
        "abdomen_ok",
        "c_hypoxia_transient",
        "c_hypoxia_prolonged",
        "c_bleeding",
        "c_perforation",
        "c_arrhythmia",
        "i_surgery",
        "i_iv_fluids",
        "i_oxygen",
        "i_transfusion",
        "i_observation",
        "renal_failure_hx",
        "smoker",
        "quit",
    ]
    return PatternChain(
        tool.naive_schemas(),
        [
            EncodingPattern(
                {("visit", column): {True: "Y", False: "N"} for column in boolean_columns}
            ),
            MergePattern("ms_records", ["visit", "admin_note"], form_column="rec_type"),
            VersionedPattern(tool.version),
        ],
    )


def medscribe_values(truth: ProcedureTruth) -> dict[str, object]:
    """How a MedScribe user records one procedure."""
    smoking = truth.patient.smoking
    values: dict[str, object] = {
        "pt_num": truth.patient.patient_id,
        "visit_date": truth.performed_on,
        "procedure_code": truth.procedure_type,
        "indication_text": truth.indication,
        "cardio_ok": truth.cardio_exam_normal,
        "abdomen_ok": truth.abdominal_exam_normal,
        "c_hypoxia_transient": "Transient hypoxia" in truth.complications,
        "c_hypoxia_prolonged": "Prolonged hypoxia" in truth.complications,
        "c_bleeding": "Bleeding" in truth.complications,
        "c_perforation": "Perforation" in truth.complications,
        "c_arrhythmia": "Arrhythmia" in truth.complications,
        "i_surgery": "Surgery" in truth.interventions,
        "i_iv_fluids": "IV fluids" in truth.interventions,
        "i_oxygen": "Oxygen administration" in truth.interventions,
        "i_transfusion": "Transfusion" in truth.interventions,
        "i_observation": "Observation" in truth.interventions,
        "renal_failure_hx": truth.patient.renal_failure_history,
        # The trap: EVER smoked — both current and ex-smokers check this.
        "smoker": smoking.ever_smoked,
    }
    if smoking.ever_smoked:
        values["packs_daily"] = smoking.packs_per_day
        values["quit"] = smoking.status == "ex"
    if smoking.status == "ex":
        values["years_quit"] = smoking.quit_years_ago
    return values


def build_medscribe_source(
    truths: list[ProcedureTruth], name: str = "medscribe_clinic"
) -> GuavaSource:
    tool = build_medscribe_tool()
    source = GuavaSource(name, tool, build_medscribe_chain(tool))
    session = source.session()
    for truth in truths:
        session.enter("visit", medscribe_values(truth))
    return source
