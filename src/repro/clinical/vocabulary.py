"""Controlled vocabulary of the synthetic endoscopy world.

Terms follow the paper's motivating studies: upper GI endoscopy,
the Asthma-specific ENT/Pulmonary Reflux indication, transient hypoxia,
and the surgery / IV fluids / oxygen interventions all appear verbatim in
Study 1 and Study 2 (§2).
"""

from __future__ import annotations

PROCEDURE_TYPES: tuple[str, ...] = (
    "Upper GI endoscopy",
    "Colonoscopy",
    "Flexible sigmoidoscopy",
    "ERCP",
)

INDICATIONS: tuple[str, ...] = (
    "Asthma-specific ENT/Pulmonary Reflux symptoms",
    "Dysphagia",
    "GI bleeding",
    "Abdominal pain",
    "Surveillance",
    "Anemia",
)

COMPLICATIONS: tuple[str, ...] = (
    "Transient hypoxia",
    "Prolonged hypoxia",
    "Bleeding",
    "Perforation",
    "Arrhythmia",
)

INTERVENTIONS: tuple[str, ...] = (
    "Surgery",
    "IV fluids",
    "Oxygen administration",
    "Transfusion",
    "Observation",
)

FINDING_TYPES: tuple[str, ...] = (
    "Fissure",
    "Polyp",
    "Ulcer",
    "Tumor",
    "Varices",
)

ALCOHOL_LEVELS: tuple[str, ...] = ("None", "Light", "Heavy")

MEDICATIONS: tuple[str, ...] = (
    "Omeprazole",
    "Pantoprazole",
    "Sucralfate",
    "Metoclopramide",
    "Ondansetron",
)

MEDICATION_INSTRUCTIONS: tuple[str, ...] = (
    "Take with food",
    "Take 30 minutes before meals",
    "Take at bedtime",
    "Take as needed for nausea",
)

#: Probability weights used by the generators (tuned for study-sized
#: cohorts: every Study 1 funnel stage stays non-empty at n >= 200).
PROCEDURE_TYPE_WEIGHTS: tuple[float, ...] = (0.45, 0.35, 0.12, 0.08)
INDICATION_WEIGHTS: tuple[float, ...] = (0.18, 0.15, 0.2, 0.22, 0.15, 0.1)
