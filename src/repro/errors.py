"""Exception hierarchy for the repro package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one base class.  Subsystems get
their own branch to keep failure modes distinguishable in tests and ETL
logs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# Expression language


class ExpressionError(ReproError):
    """Base class for errors in the shared expression language."""


class LexError(ExpressionError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(ExpressionError):
    """Raised when the parser cannot produce an AST from a token stream."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class EvaluationError(ExpressionError):
    """Raised when an expression cannot be evaluated against an environment."""


class UnknownIdentifierError(EvaluationError):
    """Raised when an expression references a name absent from the environment."""

    def __init__(self, name: str):
        super().__init__(f"unknown identifier: {name!r}")
        self.name = name


class UnknownFunctionError(EvaluationError):
    """Raised when an expression calls a function that is not registered."""

    def __init__(self, name: str):
        super().__init__(f"unknown function: {name!r}")
        self.name = name


# --------------------------------------------------------------------------
# Relational engine


class RelationalError(ReproError):
    """Base class for errors raised by the in-memory relational engine."""


class SchemaError(RelationalError):
    """Raised for schema violations: unknown columns, duplicate tables, ..."""


class TypeMismatchError(RelationalError):
    """Raised when a value cannot be coerced to its column's declared type."""


class IntegrityError(RelationalError):
    """Raised when a constraint (primary key, not-null) would be violated."""


class QueryError(RelationalError):
    """Raised when a logical query plan is malformed or cannot execute."""


class ParallelExecutionError(RelationalError):
    """Raised when the process worker pool itself fails (a worker dies,
    the pool cannot start, or a result cannot cross the process boundary).

    Deliberately distinct from errors the *query* raises inside a worker —
    those are re-raised with their original type for error parity with the
    serial executors; this type means the execution machinery broke."""


# --------------------------------------------------------------------------
# UI model


class UIError(ReproError):
    """Base class for errors in the declarative GUI model."""


class ControlError(UIError):
    """Raised for invalid control definitions or duplicate control names."""


class DataEntryError(UIError):
    """Raised when a simulated data-entry session violates form rules."""


class DisabledControlError(DataEntryError):
    """Raised when a session writes to a control whose enablement is off."""


class RequiredControlError(DataEntryError):
    """Raised when a required control is left empty at form save time."""


# --------------------------------------------------------------------------
# Design patterns


class PatternError(ReproError):
    """Base class for database design pattern errors."""


class PatternConfigError(PatternError):
    """Raised when a pattern is instantiated with inconsistent parameters."""


class PatternWriteError(PatternError):
    """Raised when a naive row cannot be stored through a pattern."""


class PatternReadError(PatternError):
    """Raised when a pattern cannot reconstruct the naive relation."""


# --------------------------------------------------------------------------
# GUAVA


class GuavaError(ReproError):
    """Base class for g-tree construction and query translation errors."""


class GTreeError(GuavaError):
    """Raised for malformed g-trees (duplicate paths, orphan nodes, ...)."""


class DerivationError(GuavaError):
    """Raised when a g-tree cannot be derived from a form definition."""


class TranslationError(GuavaError):
    """Raised when a g-tree query cannot be lowered to relational algebra."""


# --------------------------------------------------------------------------
# MultiClass


class MultiClassError(ReproError):
    """Base class for study schema / classifier errors."""


class DomainError(MultiClassError):
    """Raised for invalid domain definitions or out-of-domain values."""


class StudySchemaError(MultiClassError):
    """Raised for malformed study schemas (cycles, duplicate entities, ...)."""


class ClassifierError(MultiClassError):
    """Raised for invalid classifiers or classification failures."""


class StudyError(MultiClassError):
    """Raised when a study definition is inconsistent."""


class VersioningError(MultiClassError):
    """Raised during classifier propagation across tool versions."""


# --------------------------------------------------------------------------
# ETL


class ETLError(ReproError):
    """Base class for ETL workflow errors."""


class WorkflowError(ETLError):
    """Raised for malformed workflow graphs (cycles, missing inputs)."""


class CompileError(ETLError):
    """Raised when a study cannot be compiled into an ETL workflow."""


# --------------------------------------------------------------------------
# Durable storage


class StorageError(ReproError):
    """Base class for durability subsystem errors (WAL, snapshots, recovery)."""


class WalCorruptionError(StorageError):
    """Raised when the write-ahead log holds a corrupt *non-tail* frame.

    A torn tail (the file ends mid-frame, the expected outcome of a crash
    during an append) is tolerated and truncated; corruption anywhere a
    complete frame should be — a bad magic, a failed CRC over a complete
    frame — means a committed region was damaged and recovery must fail
    loudly rather than silently drop a durable write.
    """


class SnapshotCorruptionError(StorageError):
    """Raised when a snapshot file fails its CRC or framing checks."""


class SegmentCorruptionError(StorageError):
    """Raised when a shared columnar segment file fails its CRC, framing,
    or footer checks — same framing as snapshots, separate type so a
    damaged scratch segment is never mistaken for a damaged checkpoint."""


class RecoveryError(StorageError):
    """Raised when no consistent state can be reconstructed from disk."""


# --------------------------------------------------------------------------
# Warehouse


class WarehouseError(ReproError):
    """Base class for warehouse/materialization errors."""


class MaterializationError(WarehouseError):
    """Raised when a study schema cannot be materialized."""


# --------------------------------------------------------------------------
# Clinical generator


class ClinicalDataError(ReproError):
    """Raised by the synthetic clinical world generator."""
