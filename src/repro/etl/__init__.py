"""ETL workflows and the study compiler.

"MultiClass uses the specifications set out by the analyst to create an
ETL workflow that is tailored to a specific study.  Thus, we can leverage
existing ETL and still offer the flexibility that analysts require."

:mod:`repro.etl.components` provides the common ETL component vocabulary,
:mod:`repro.etl.workflow` the DAG executor with per-step run logs, and
:mod:`repro.etl.compile` the Figure 6 translation: study → the three-stage
extract / classify / integrate pipeline.
"""

from repro.etl.components import (
    AddConstant,
    Classify,
    Clean,
    Component,
    DeriveColumn,
    Extract,
    FilterRows,
    Load,
    ProjectColumns,
    UnionInputs,
    Values,
)
from repro.etl.workflow import RunReport, Step, Workflow
from repro.etl.compile import compile_study, domain_data_type

__all__ = [
    "AddConstant",
    "Classify",
    "Clean",
    "Component",
    "DeriveColumn",
    "Extract",
    "FilterRows",
    "Load",
    "ProjectColumns",
    "RunReport",
    "Step",
    "UnionInputs",
    "Values",
    "Workflow",
    "compile_study",
    "domain_data_type",
]
