"""Compiling studies into ETL workflows (paper Figure 6, Hypothesis 3).

"At present, a study created over GUAVA and MultiClass has a logical
translation to a sequence of three ETL components, each executing a query
over the previous one's results."  The three stages:

1. **extract**  — per source and entity: GUAVA translates the entity
   classifier's g-tree query through the design-pattern chain and pulls
   qualifying records out of the physical database (first temporary DB).
2. **classify** — each bound domain classifier becomes a Classify
   component writing its ``attribute_domain`` column; a projection trims
   to the study columns (second temporary DB).
3. **study**    — union across contributors, apply the study's WHERE-like
   filters, and load the result into the warehouse.

The compiled workflow is *behaviourally equivalent* to
:meth:`repro.multiclass.study.Study.run` — the executable statement of
Hypothesis 3, checked by integration tests and the H3 benchmark.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.expr.ast import Identifier
from repro.etl.components import (
    AddConstant,
    Classify,
    Clean,
    DeriveColumn,
    Extract,
    FilterRows,
    Load,
    ProjectColumns,
    UnionInputs,
)
from repro.multiclass.cleaning import Quarantine
from repro.etl.workflow import Workflow
from repro.guava.query import GTreeQuery
from repro.guava.translate import translate_query
from repro.multiclass.domain import Domain, DomainKind
from repro.multiclass.study import PARENT_RECORD_ID, Study, element_column
from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.ui.form import RECORD_ID

_DOMAIN_TYPES = {
    DomainKind.CATEGORICAL: DataType.TEXT,
    DomainKind.INTEGER: DataType.INTEGER,
    DomainKind.FLOAT: DataType.FLOAT,
    DomainKind.BOOLEAN: DataType.BOOLEAN,
    DomainKind.TEXT: DataType.TEXT,
}


def domain_data_type(domain: Domain) -> DataType:
    """The warehouse column type for one domain."""
    return _DOMAIN_TYPES[domain.kind]


def study_table_schema(study: Study, entity: str) -> TableSchema:
    """The warehouse table schema for one entity of a study."""
    columns = [
        Column(RECORD_ID, DataType.INTEGER, nullable=False),
        Column("source", DataType.TEXT, nullable=False),
    ]
    if study.has_parent_link(entity):
        columns.append(Column(PARENT_RECORD_ID, DataType.INTEGER))
    for _, attribute, domain_name in study.elements_of(entity):
        domain = study.schema.domain_of(entity, attribute, domain_name)
        columns.append(
            Column(element_column(attribute, domain_name), domain_data_type(domain))
        )
    table_name = f"study_{study.name}_{entity}".lower()
    return TableSchema(table_name, tuple(columns))


def compile_study(study: Study, warehouse: Database) -> Workflow:
    """Translate a study into its three-stage ETL workflow."""
    if not study.bindings:
        raise CompileError(f"study {study.name!r} has no sources bound")
    if not study.elements:
        raise CompileError(f"study {study.name!r} selects no elements")
    workflow = Workflow(f"etl_{study.name}")
    quarantine = Quarantine()
    workflow.context["quarantine"] = quarantine
    for entity in study.entities_in_play():
        cleaning_rules = study.cleaning.get(entity, [])
        branch_heads: list[str] = []
        for binding in study.bindings:
            source = binding.source
            ec = binding.entity_classifiers.get(entity)
            if ec is None:
                raise CompileError(
                    f"source {source.name!r} lacks an entity classifier for "
                    f"{entity!r}"
                )
            prefix = f"{entity}__{source.name}"

            # Stage 1: extract — GUAVA translation of the entity query.
            gtree = source.gtree(ec.form)
            plan = translate_query(GTreeQuery(gtree).where(ec.condition), source.chain)
            workflow.add(
                f"{prefix}__extract",
                Extract(source.db, plan),
                stage="extract",
            )
            previous = f"{prefix}__extract"
            if any(rule.scope == "record" for rule in cleaning_rules):
                workflow.add(
                    f"{prefix}__clean",
                    Clean(cleaning_rules, source.name, "record", quarantine),
                    inputs=(previous,),
                    stage="extract",
                )
                previous = f"{prefix}__clean"

            # Stage 2: classify — one component per selected element.
            for element in study.elements_of(entity):
                classifier = binding.classifiers.get(element)
                if classifier is None:
                    raise CompileError(
                        f"source {source.name!r} has no classifier for {element}"
                    )
                _, attribute, domain_name = element
                column = element_column(attribute, domain_name)
                domain = study.schema.domain_of(*element)
                step_name = f"{prefix}__classify__{column}"
                workflow.add(
                    step_name,
                    Classify(column, classifier, domain),
                    inputs=(previous,),
                    stage="classify",
                )
                previous = step_name
            workflow.add(
                f"{prefix}__stamp",
                AddConstant("source", source.name),
                inputs=(previous,),
                stage="classify",
            )
            previous = f"{prefix}__stamp"
            if study.has_parent_link(entity):
                workflow.add(
                    f"{prefix}__link",
                    DeriveColumn(PARENT_RECORD_ID, Identifier.of(ec.parent_link)),
                    inputs=(previous,),
                    stage="classify",
                )
                previous = f"{prefix}__link"
            workflow.add(
                f"{prefix}__shape",
                ProjectColumns(study.output_columns(entity)),
                inputs=(previous,),
                stage="classify",
            )
            branch_heads.append(f"{prefix}__shape")

        # Stage 3: study — union, filter, load.
        workflow.add(
            f"{entity}__union",
            UnionInputs(),
            inputs=tuple(branch_heads),
            stage="study",
        )
        previous = f"{entity}__union"
        if any(rule.scope == "study" for rule in cleaning_rules):
            workflow.add(
                f"{entity}__clean",
                Clean(cleaning_rules, "study", "study", quarantine),
                inputs=(previous,),
                stage="study",
            )
            previous = f"{entity}__clean"
        condition = study.filters.get(entity)
        if condition is not None:
            workflow.add(
                f"{entity}__filter",
                FilterRows(condition),
                inputs=(previous,),
                stage="study",
            )
            previous = f"{entity}__filter"
        load_name = f"{entity}__load"
        workflow.add(
            load_name,
            Load(warehouse, study_table_schema(study, entity)),
            inputs=(previous,),
            stage="study",
        )
        workflow.mark_output(load_name)
    return workflow
