"""The common ETL component vocabulary.

Hypothesis 3 is argued "by comparing the expressive power of our
classifier language against a set of common ETL components"; this module
is that set.  Each component consumes zero or more input row lists and
produces one output row list.  Components are deliberately ordinary —
extract, filter, derive, classify, project, union, load — so a compiled
study reads like any hand-built warehouse workflow.

Two execution protocols coexist:

* :meth:`Component.run` — the serial list-in/list-out contract the seed
  shipped with.  It stays the behavioural oracle: every component copies
  rows before extending them, so each step's output is independent.
* :meth:`Component.open_stream` — the batched contract the workflow
  engine uses.  A stream transform maps ``(chunk, owned)`` to
  ``(chunk, owned)``; ``owned`` marks rows as private to the executing
  chain, letting later transforms mutate in place instead of re-copying
  the row at every step.  Values are identical to the serial path; only
  the copying strategy differs.

Row-wise predicates and expressions evaluate through the compiled-closure
path (:mod:`repro.expr.compile`), whose three-valued-logic parity with the
tree-walking :class:`~repro.expr.evaluator.Evaluator` is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ETLError
from repro.expr.ast import Expression, Identifier
from repro.expr.compile import compile_expression, compile_predicate
from repro.expr.parser import parse
from repro.multiclass.classifier import Classifier
from repro.multiclass.domain import Domain
from repro.relational.algebra import ExecContext, Plan
from repro.relational.database import Database
from repro.relational.schema import TableSchema

Row = dict[str, object]
Chunk = list[Row]
ChunkTransform = Callable[[Chunk, bool], tuple[Chunk, bool]]


@dataclass
class StreamOp:
    """One step's per-run streaming state.

    ``transform`` processes chunks; ``commit`` (optional) publishes any
    deferred side effects once the whole run finished — the engine invokes
    commits in step order so shared artifacts (e.g. the quarantine) end up
    byte-identical to a serial run regardless of scheduling.
    """

    transform: ChunkTransform
    commit: Callable[[], None] | None = None


def _owned(chunk: Chunk, owned: bool) -> Chunk:
    """The chunk with rows this chain may mutate (copy at most once)."""
    if owned:
        return chunk
    return [dict(row) for row in chunk]


@dataclass
class Component:
    """Base ETL component: ``run(inputs) -> rows``."""

    #: Streamable components transform exactly one input chunk-by-chunk and
    #: may be fused into a batched chain by the workflow engine.
    streamable = False

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        raise NotImplementedError

    def open_stream(self) -> StreamOp:
        """Per-run chunk transform (streamable components only)."""
        raise ETLError(f"{type(self).__name__} does not stream")

    def expects(self, count: int, inputs: Sequence[list[Row]]) -> None:
        if len(inputs) != count:
            raise ETLError(
                f"{type(self).__name__} expects {count} input(s), got {len(inputs)}"
            )


@dataclass
class Extract(Component):
    """Pull rows out of a source database by executing a plan.

    In a compiled study the plan is GUAVA's translation of the entity
    classifier's g-tree query — the bridge from Figure 6's "Source" box to
    the first temporary database.
    """

    db: Database
    plan: Plan

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(0, inputs)
        return self.plan.execute(self.db)

    def stream_chunks(self, batch_size: int | None):
        """Yield result chunks lazily (rows are fresh — chains own them).

        The streaming path runs the plan through the relational optimizer
        (cached per component); the serial :meth:`run` keeps executing the
        plan exactly as compiled, preserving the oracle's cost profile.
        """
        plan = self._optimized_plan()
        rows = plan.stream(ExecContext(self.db))
        copy = plan.shares_storage()
        if batch_size is None:
            chunk = [dict(row) for row in rows] if copy else list(rows)
            yield chunk
            return
        chunk: Chunk = []
        for row in rows:
            chunk.append(dict(row) if copy else row)
            if len(chunk) >= batch_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def _optimized_plan(self) -> Plan:
        cached = getattr(self, "_stream_plan", None)
        if cached is None:
            from repro.relational.query import prepare_stream_plan

            cached = prepare_stream_plan(self.plan, self.db)
            self._stream_plan = cached
        return cached


@dataclass
class Values(Component):
    """A literal input (tests and backfills)."""

    rows: list[Row] = field(default_factory=list)

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(0, inputs)
        return [dict(row) for row in self.rows]


@dataclass
class FilterRows(Component):
    """Keep rows satisfying a condition (NULL filters out)."""

    condition: Expression

    streamable = True

    def __post_init__(self) -> None:
        if isinstance(self.condition, str):
            self.condition = parse(self.condition)

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        satisfied = compile_predicate(self.condition)
        return [row for row in inputs[0] if satisfied(row)]

    def open_stream(self) -> StreamOp:
        satisfied = compile_predicate(self.condition)

        def transform(chunk: Chunk, owned: bool) -> tuple[Chunk, bool]:
            return [row for row in chunk if satisfied(row)], owned

        return StreamOp(transform)


@dataclass
class DeriveColumn(Component):
    """Extend rows with a computed column."""

    name: str
    expression: Expression

    streamable = True

    def __post_init__(self) -> None:
        if isinstance(self.expression, str):
            self.expression = parse(self.expression)

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        compute = compile_expression(self.expression)
        out = []
        for row in inputs[0]:
            extended = dict(row)
            extended[self.name] = compute(row)
            out.append(extended)
        return out

    def open_stream(self) -> StreamOp:
        compute = compile_expression(self.expression)
        name = self.name

        def transform(chunk: Chunk, owned: bool) -> tuple[Chunk, bool]:
            chunk = _owned(chunk, owned)
            for row in chunk:
                # Evaluate before assigning: the environment must not yet
                # contain the derived column, exactly as in run().
                value = compute(row)
                row[name] = value
            return chunk, True

        return StreamOp(transform)


@dataclass
class Classify(Component):
    """Apply a MultiClass classifier, writing its output column.

    This is the component that makes a compiled study *context-sensitive*:
    the classifier's rules reference g-tree nodes, and the extract stage
    guarantees the rows carry those nodes' values.
    """

    column: str
    classifier: Classifier
    domain: Domain | None = None

    streamable = True

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        out = []
        for row in inputs[0]:
            extended = dict(row)
            extended[self.column] = self.classifier.classify(row, self.domain)
            out.append(extended)
        return out

    def open_stream(self) -> StreamOp:
        # Hoist the per-rule closure lookups out of the row loop; the loop
        # below replicates Classifier.explain exactly (first satisfied
        # guard wins, domain check only on a fired rule, no rule -> NULL).
        rules = [
            (compile_predicate(rule.guard), compile_expression(rule.output))
            for rule in self.classifier.rules
        ]
        column = self.column
        domain = self.domain

        def classify_row(row: Row) -> object:
            for guard, output in rules:
                if guard(row):
                    value = output(row)
                    if domain is not None:
                        value = domain.check(value)
                    return value
            return None

        # Classification is a pure function of the columns the rules read,
        # and clinical rows cluster into few distinct value combinations —
        # memoize per combination.  Only rows carrying every referenced name
        # directly qualify (missing names trigger the evaluator's dotted
        # suffix fallback, which this key cannot see); those rows, and rows
        # with unhashable values, fall back to direct evaluation.
        names = sorted(
            {
                node.name
                for rule in self.classifier.rules
                for expr in (rule.guard, rule.output)
                for node in expr.walk()
                if isinstance(node, Identifier)
            }
        )
        cache: dict[tuple, object] = {}
        missing = cache  # unique sentinel

        def transform(chunk: Chunk, owned: bool) -> tuple[Chunk, bool]:
            chunk = _owned(chunk, owned)
            for row in chunk:
                try:
                    key = tuple(row[name] for name in names)
                    value = cache.get(key, missing)
                    if value is missing:
                        value = classify_row(row)
                        if len(cache) < 65536:
                            cache[key] = value
                except (KeyError, TypeError):
                    value = classify_row(row)
                row[column] = value
            return chunk, True

        return StreamOp(transform)


@dataclass
class Clean(Component):
    """Apply DISCARD WHEN cleaning rules, quarantining removed rows.

    The §6 extension compiled into ETL form: discards are diverted into a
    shared :class:`~repro.multiclass.cleaning.Quarantine` rather than
    silently dropped.
    """

    rules: list
    source_name: str
    scope: str
    quarantine: object  # Quarantine; typed loosely to avoid an import cycle

    streamable = True

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        from repro.multiclass.cleaning import apply_rules

        self.expects(1, inputs)
        return apply_rules(
            self.rules, list(inputs[0]), self.source_name, self.scope, self.quarantine
        )

    def open_stream(self) -> StreamOp:
        from repro.multiclass.cleaning import Quarantine, apply_rules

        # Discards stage into a private buffer; the engine commits buffers
        # in step order so concurrent branches cannot interleave quarantine
        # rows differently from a serial run.
        staged = Quarantine()

        def transform(chunk: Chunk, owned: bool) -> tuple[Chunk, bool]:
            kept = apply_rules(
                self.rules, chunk, self.source_name, self.scope, staged
            )
            return kept, owned

        def commit() -> None:
            self.quarantine.rows.extend(staged.rows)

        return StreamOp(transform, commit)


@dataclass
class ProjectColumns(Component):
    """Keep only the named columns (missing ones become NULL)."""

    columns: tuple[str, ...]

    streamable = True

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        return [
            {column: row.get(column) for column in self.columns}
            for row in inputs[0]
        ]

    def open_stream(self) -> StreamOp:
        columns = self.columns

        def transform(chunk: Chunk, owned: bool) -> tuple[Chunk, bool]:
            return [
                {column: row.get(column) for column in columns} for row in chunk
            ], True

        return StreamOp(transform)


@dataclass
class AddConstant(Component):
    """Stamp every row with a constant column (e.g. the source name)."""

    column: str
    value: object

    streamable = True

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        out = []
        for row in inputs[0]:
            extended = dict(row)
            extended[self.column] = self.value
            out.append(extended)
        return out

    def open_stream(self) -> StreamOp:
        column, value = self.column, self.value

        def transform(chunk: Chunk, owned: bool) -> tuple[Chunk, bool]:
            chunk = _owned(chunk, owned)
            for row in chunk:
                row[column] = value
            return chunk, True

        return StreamOp(transform)


@dataclass
class UnionInputs(Component):
    """Concatenate all inputs — the contributor integration step."""

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        if not inputs:
            raise ETLError("UnionInputs needs at least one input")
        out: list[Row] = []
        for rows in inputs:
            out.extend(dict(row) for row in rows)
        return out


@dataclass
class Load(Component):
    """Write rows into a warehouse table (created if absent), pass through."""

    db: Database
    schema: TableSchema
    replace: bool = True

    streamable = True

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        table = self._begin()
        for row in inputs[0]:
            table.insert({c: row.get(c) for c in self.schema.column_names})
        return inputs[0] if isinstance(inputs[0], list) else list(inputs[0])

    def open_stream(self) -> StreamOp:
        # The target table is (re)created when the stream opens — i.e. when
        # this step's chain starts executing, possibly before upstream rows
        # all exist.  Workflows where another step reads the loaded table
        # mid-run must not fuse across it; compiled studies never do.
        table = self._begin()
        columns = self.schema.column_names

        def transform(chunk: Chunk, owned: bool) -> tuple[Chunk, bool]:
            for row in chunk:
                table.insert({c: row.get(c) for c in columns})
            return chunk, owned

        return StreamOp(transform)

    def _begin(self):
        if self.db.has_table(self.schema.name) and self.replace:
            self.db.drop_table(self.schema.name)
        return self.db.ensure_table(self.schema)
