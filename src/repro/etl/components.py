"""The common ETL component vocabulary.

Hypothesis 3 is argued "by comparing the expressive power of our
classifier language against a set of common ETL components"; this module
is that set.  Each component consumes zero or more input row lists and
produces one output row list.  Components are deliberately ordinary —
extract, filter, derive, classify, project, union, load — so a compiled
study reads like any hand-built warehouse workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ETLError
from repro.expr.ast import Expression
from repro.expr.evaluator import Evaluator
from repro.expr.parser import parse
from repro.multiclass.classifier import Classifier
from repro.multiclass.domain import Domain
from repro.relational.algebra import Plan
from repro.relational.database import Database
from repro.relational.schema import TableSchema

Row = dict[str, object]

_EVALUATOR = Evaluator()


@dataclass
class Component:
    """Base ETL component: ``run(inputs) -> rows``."""

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        raise NotImplementedError

    def expects(self, count: int, inputs: Sequence[list[Row]]) -> None:
        if len(inputs) != count:
            raise ETLError(
                f"{type(self).__name__} expects {count} input(s), got {len(inputs)}"
            )


@dataclass
class Extract(Component):
    """Pull rows out of a source database by executing a plan.

    In a compiled study the plan is GUAVA's translation of the entity
    classifier's g-tree query — the bridge from Figure 6's "Source" box to
    the first temporary database.
    """

    db: Database
    plan: Plan

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(0, inputs)
        return self.plan.execute(self.db)


@dataclass
class Values(Component):
    """A literal input (tests and backfills)."""

    rows: list[Row] = field(default_factory=list)

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(0, inputs)
        return [dict(row) for row in self.rows]


@dataclass
class FilterRows(Component):
    """Keep rows satisfying a condition (NULL filters out)."""

    condition: Expression

    def __post_init__(self) -> None:
        if isinstance(self.condition, str):
            self.condition = parse(self.condition)

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        return [row for row in inputs[0] if _EVALUATOR.satisfied(self.condition, row)]


@dataclass
class DeriveColumn(Component):
    """Extend rows with a computed column."""

    name: str
    expression: Expression

    def __post_init__(self) -> None:
        if isinstance(self.expression, str):
            self.expression = parse(self.expression)

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        out = []
        for row in inputs[0]:
            extended = dict(row)
            extended[self.name] = _EVALUATOR.evaluate(self.expression, row)
            out.append(extended)
        return out


@dataclass
class Classify(Component):
    """Apply a MultiClass classifier, writing its output column.

    This is the component that makes a compiled study *context-sensitive*:
    the classifier's rules reference g-tree nodes, and the extract stage
    guarantees the rows carry those nodes' values.
    """

    column: str
    classifier: Classifier
    domain: Domain | None = None

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        out = []
        for row in inputs[0]:
            extended = dict(row)
            extended[self.column] = self.classifier.classify(row, self.domain)
            out.append(extended)
        return out


@dataclass
class Clean(Component):
    """Apply DISCARD WHEN cleaning rules, quarantining removed rows.

    The §6 extension compiled into ETL form: discards are diverted into a
    shared :class:`~repro.multiclass.cleaning.Quarantine` rather than
    silently dropped.
    """

    rules: list
    source_name: str
    scope: str
    quarantine: object  # Quarantine; typed loosely to avoid an import cycle

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        from repro.multiclass.cleaning import apply_rules

        self.expects(1, inputs)
        return apply_rules(
            self.rules, list(inputs[0]), self.source_name, self.scope, self.quarantine
        )


@dataclass
class ProjectColumns(Component):
    """Keep only the named columns (missing ones become NULL)."""

    columns: tuple[str, ...]

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        return [
            {column: row.get(column) for column in self.columns}
            for row in inputs[0]
        ]


@dataclass
class AddConstant(Component):
    """Stamp every row with a constant column (e.g. the source name)."""

    column: str
    value: object

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        out = []
        for row in inputs[0]:
            extended = dict(row)
            extended[self.column] = self.value
            out.append(extended)
        return out


@dataclass
class UnionInputs(Component):
    """Concatenate all inputs — the contributor integration step."""

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        if not inputs:
            raise ETLError("UnionInputs needs at least one input")
        out: list[Row] = []
        for rows in inputs:
            out.extend(dict(row) for row in rows)
        return out


@dataclass
class Load(Component):
    """Write rows into a warehouse table (created if absent), pass through."""

    db: Database
    schema: TableSchema
    replace: bool = True

    def run(self, inputs: Sequence[list[Row]]) -> list[Row]:
        self.expects(1, inputs)
        if self.db.has_table(self.schema.name) and self.replace:
            self.db.drop_table(self.schema.name)
        table = self.db.ensure_table(self.schema)
        for row in inputs[0]:
            table.insert({c: row.get(c) for c in self.schema.column_names})
        return inputs[0] if isinstance(inputs[0], list) else list(inputs[0])
