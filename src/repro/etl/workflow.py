"""ETL workflow DAGs and their executor."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import WorkflowError
from repro.etl.components import Component, Row


@dataclass
class Step:
    """One node of the workflow graph."""

    name: str
    component: Component
    inputs: tuple[str, ...] = ()
    #: Which Figure 6 stage this step belongs to (extract/classify/study).
    stage: str = ""


@dataclass
class StepRun:
    """Execution record for one step."""

    step: str
    stage: str
    rows_in: int
    rows_out: int
    seconds: float


@dataclass
class RunReport:
    """Per-step row counts and timings for one workflow run."""

    steps: list[StepRun] = field(default_factory=list)

    def rows_out(self, step_name: str) -> int:
        for run in self.steps:
            if run.step == step_name:
                return run.rows_out
        raise WorkflowError(f"no step {step_name!r} in run report")

    def summary(self) -> str:
        lines = [f"{'step':40} {'stage':10} {'in':>8} {'out':>8}"]
        for run in self.steps:
            lines.append(
                f"{run.step:40} {run.stage:10} {run.rows_in:>8} {run.rows_out:>8}"
            )
        return "\n".join(lines)


class Workflow:
    """A named DAG of ETL steps.

    Steps execute in topological order; each step's inputs are the outputs
    of the named predecessor steps.  ``outputs`` names the steps whose
    results the caller wants back.
    """

    def __init__(self, name: str):
        self.name = name
        self._steps: dict[str, Step] = {}
        self.outputs: list[str] = []
        #: Shared run artifacts (e.g. the cleaning quarantine).
        self.context: dict[str, object] = {}

    def add(
        self,
        name: str,
        component: Component,
        inputs: tuple[str, ...] | list[str] = (),
        stage: str = "",
    ) -> Step:
        """Append a step; input names must already exist (keeps it acyclic)."""
        if name in self._steps:
            raise WorkflowError(f"duplicate step name {name!r}")
        for input_name in inputs:
            if input_name not in self._steps:
                raise WorkflowError(
                    f"step {name!r} depends on unknown step {input_name!r}"
                )
        step = Step(name, component, tuple(inputs), stage)
        self._steps[name] = step
        return step

    def mark_output(self, name: str) -> None:
        """Flag a step's result as a workflow output."""
        if name not in self._steps:
            raise WorkflowError(f"unknown step {name!r}")
        if name not in self.outputs:
            self.outputs.append(name)

    @property
    def steps(self) -> list[Step]:
        return list(self._steps.values())

    def step(self, name: str) -> Step:
        if name not in self._steps:
            raise WorkflowError(f"unknown step {name!r}")
        return self._steps[name]

    def stages(self) -> list[str]:
        """Distinct stages in first-appearance order (Figure 6 structure)."""
        seen: list[str] = []
        for step in self._steps.values():
            if step.stage and step.stage not in seen:
                seen.append(step.stage)
        return seen

    # -- execution -----------------------------------------------------------

    def run(self) -> tuple[dict[str, list[Row]], RunReport]:
        """Execute all steps; returns ({output step: rows}, report)."""
        results: dict[str, list[Row]] = {}
        report = RunReport()
        for step in self._steps.values():  # insertion order is topological
            inputs = [results[name] for name in step.inputs]
            started = time.perf_counter()
            rows = step.component.run(inputs)
            elapsed = time.perf_counter() - started
            results[step.name] = rows
            report.steps.append(
                StepRun(
                    step=step.name,
                    stage=step.stage,
                    rows_in=sum(len(rows_in) for rows_in in inputs),
                    rows_out=len(rows),
                    seconds=elapsed,
                )
            )
        outputs = {name: results[name] for name in self.outputs} if self.outputs else results
        return outputs, report

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the DAG, clustered by Figure 6 stage."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for index, stage in enumerate(self.stages()):
            lines.append(f'  subgraph cluster_{index} {{ label="{stage}";')
            for step in self._steps.values():
                if step.stage == stage:
                    lines.append(
                        f'    "{step.name}" '
                        f'[label="{step.name}\\n{type(step.component).__name__}"];'
                    )
            lines.append("  }")
        for step in self._steps.values():
            if not step.stage:
                lines.append(f'  "{step.name}";')
        for step in self._steps.values():
            for input_name in step.inputs:
                lines.append(f'  "{input_name}" -> "{step.name}";')
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        """Readable listing of the DAG."""
        lines = [f"Workflow {self.name!r}:"]
        for step in self._steps.values():
            deps = f" <- {list(step.inputs)}" if step.inputs else ""
            stage = f" [{step.stage}]" if step.stage else ""
            lines.append(f"  {step.name}: {type(step.component).__name__}{stage}{deps}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._steps)
