"""ETL workflow DAGs and their executors.

Two execution paths share one DAG:

* :meth:`Workflow.run` with default arguments — the seed's strictly serial
  executor, preserved verbatim as the behavioural oracle.  Steps run in
  insertion (topological) order, each handing its full ``list[Row]`` to
  the next.
* ``run(parallelism=..., batch_size=...)`` — the level-scheduled engine.
  Steps fuse into *units*: maximal linear chains whose interior results
  nobody else consumes.  Units whose dependencies are satisfied dispatch
  together (a wave) onto a thread pool, and inside a unit rows flow as an
  iterator of chunks, with at most one defensive copy per chain instead of
  one per step.  Output rows, per-step row counts, and shared artifacts
  (the cleaning quarantine) are identical to the serial path; only timing
  differs.  Equivalence is asserted by tests/test_etl/test_engine.py.
"""

from __future__ import annotations

import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import WorkflowError
from repro.etl.components import Component, Extract, Row, UnionInputs
from repro.obs.trace import Span, current_tracer


@dataclass
class Step:
    """One node of the workflow graph."""

    name: str
    component: Component
    inputs: tuple[str, ...] = ()
    #: Which Figure 6 stage this step belongs to (extract/classify/study).
    stage: str = ""


@dataclass
class StepRun:
    """Execution record for one step."""

    step: str
    stage: str
    rows_in: int
    rows_out: int
    seconds: float


@dataclass
class RunReport:
    """Per-step row counts and timings for one workflow run."""

    steps: list[StepRun] = field(default_factory=list)
    #: Span tree for the run when executed under ``repro.obs.tracing()``;
    #: None otherwise.  The engine path groups spans wave -> unit -> step
    #: with queue waits and thread attribution; the serial path is flat.
    trace: Span | None = None

    def rows_out(self, step_name: str) -> int:
        for run in self.steps:
            if run.step == step_name:
                return run.rows_out
        raise WorkflowError(f"no step {step_name!r} in run report")

    def summary(self) -> str:
        lines = [
            f"{'step':40} {'stage':10} {'in':>8} {'out':>8} {'seconds':>10}"
        ]
        for run in self.steps:
            lines.append(
                f"{run.step:40} {run.stage:10} {run.rows_in:>8} "
                f"{run.rows_out:>8} {run.seconds:>10.4f}"
            )
        return "\n".join(lines)

    def render_trace(self) -> str:
        """Annotated span tree, or a pointer at how to get one."""
        if self.trace is None:
            return "(no trace: run the workflow under repro.obs.tracing())"
        return self.trace.render()


class _StepStats:
    """Accumulates one step's run record chunk by chunk."""

    __slots__ = ("rows_in", "rows_out", "seconds")

    def __init__(self) -> None:
        self.rows_in = 0
        self.rows_out = 0
        self.seconds = 0.0


@dataclass
class _Unit:
    """A fused linear chain of steps, executed as one schedulable task."""

    steps: list[Step]

    @property
    def head(self) -> Step:
        return self.steps[0]

    @property
    def tail(self) -> Step:
        return self.steps[-1]


@dataclass
class _UnitRecord:
    """Raw engine timings for one executed unit (trace assembly input)."""

    unit: _Unit
    wave: int
    #: ``perf_counter`` when the unit's wave became dispatchable.
    ready_s: float
    started_s: float
    ended_s: float
    batches: int
    thread: str


class Workflow:
    """A named DAG of ETL steps.

    Steps execute in topological order; each step's inputs are the outputs
    of the named predecessor steps.  ``outputs`` names the steps whose
    results the caller wants back.
    """

    def __init__(self, name: str):
        self.name = name
        self._steps: dict[str, Step] = {}
        self.outputs: list[str] = []
        #: Shared run artifacts (e.g. the cleaning quarantine).
        self.context: dict[str, object] = {}

    def add(
        self,
        name: str,
        component: Component,
        inputs: tuple[str, ...] | list[str] = (),
        stage: str = "",
    ) -> Step:
        """Append a step; input names must already exist (keeps it acyclic)."""
        if name in self._steps:
            raise WorkflowError(f"duplicate step name {name!r}")
        for input_name in inputs:
            if input_name not in self._steps:
                raise WorkflowError(
                    f"step {name!r} depends on unknown step {input_name!r}"
                )
        step = Step(name, component, tuple(inputs), stage)
        self._steps[name] = step
        return step

    def mark_output(self, name: str) -> None:
        """Flag a step's result as a workflow output."""
        if name not in self._steps:
            raise WorkflowError(f"unknown step {name!r}")
        if name not in self.outputs:
            self.outputs.append(name)

    @property
    def steps(self) -> list[Step]:
        return list(self._steps.values())

    def step(self, name: str) -> Step:
        if name not in self._steps:
            raise WorkflowError(f"unknown step {name!r}")
        return self._steps[name]

    def stages(self) -> list[str]:
        """Distinct stages in first-appearance order (Figure 6 structure)."""
        seen: list[str] = []
        for step in self._steps.values():
            if step.stage and step.stage not in seen:
                seen.append(step.stage)
        return seen

    # -- execution -----------------------------------------------------------

    def run(
        self, parallelism: int = 1, batch_size: int | None = None
    ) -> tuple[dict[str, list[Row]], RunReport]:
        """Execute all steps; returns ({output step: rows}, report).

        ``parallelism`` > 1 dispatches independent steps onto that many
        worker threads; ``batch_size`` streams rows through fused chains in
        chunks of that size.  Either option engages the level-scheduled
        engine; the defaults keep the serial oracle path.
        """
        if parallelism <= 1 and batch_size is None:
            return self._run_serial()
        return self._run_engine(max(1, parallelism), batch_size)

    def _run_serial(self) -> tuple[dict[str, list[Row]], RunReport]:
        results: dict[str, list[Row]] = {}
        report = RunReport()
        tracer = current_tracer()
        root: Span | None = None
        run_started = time.perf_counter()
        for step in self._steps.values():  # insertion order is topological
            inputs = [results[name] for name in step.inputs]
            started = time.perf_counter()
            rows = step.component.run(inputs)
            elapsed = time.perf_counter() - started
            results[step.name] = rows
            rows_in = sum(len(rows_in) for rows_in in inputs)
            report.steps.append(
                StepRun(
                    step=step.name,
                    stage=step.stage,
                    rows_in=rows_in,
                    rows_out=len(rows),
                    seconds=elapsed,
                )
            )
            if tracer is not None:
                if root is None:
                    root = Span(f"workflow:{self.name}", attrs={"mode": "serial"})
                step_span = root.child(
                    f"step:{step.name}",
                    stage=step.stage,
                    rows_in=rows_in,
                    rows_out=len(rows),
                )
                step_span.duration_s = elapsed
        if tracer is not None:
            if root is None:
                root = Span(f"workflow:{self.name}", attrs={"mode": "serial"})
            root.attrs["steps"] = len(self._steps)
            root.duration_s = time.perf_counter() - run_started
            tracer.attach(root)
            report.trace = root
        outputs = {name: results[name] for name in self.outputs} if self.outputs else results
        return outputs, report

    # -- the level-scheduled engine -----------------------------------------

    def _fuse(self) -> list[_Unit]:
        """Group steps into maximal streamable chains.

        A step joins its predecessor's unit when it is that step's *only*
        consumer, the predecessor's rows are not a requested output, and
        the component can stream.  Interior results of a unit are never
        materialized as step results (their row counts are still recorded).
        """
        consumers: dict[str, int] = {name: 0 for name in self._steps}
        for step in self._steps.values():
            for dep in step.inputs:
                consumers[dep] += 1
        keep = set(self.outputs) if self.outputs else set(self._steps)
        units: list[_Unit] = []
        unit_of_tail: dict[str, _Unit] = {}
        for step in self._steps.values():
            unit = None
            if len(step.inputs) == 1 and step.component.streamable:
                dep = step.inputs[0]
                candidate = unit_of_tail.get(dep)
                if candidate is not None and consumers[dep] == 1 and dep not in keep:
                    unit = candidate
            if unit is None:
                unit = _Unit([step])
                units.append(unit)
            else:
                unit.steps.append(step)
                del unit_of_tail[step.inputs[0]]
            unit_of_tail[step.name] = unit
        return units

    def _run_engine(
        self, parallelism: int, batch_size: int | None
    ) -> tuple[dict[str, list[Row]], RunReport]:
        units = self._fuse()
        producer = {unit.tail.name: index for index, unit in enumerate(units)}
        order = {name: index for index, name in enumerate(self._steps)}
        results: dict[str, list[Row]] = {}
        stats = {name: _StepStats() for name in self._steps}
        commits: list[tuple[int, Callable[[], None]]] = []

        unit_deps: list[set[int]] = [
            {producer[dep] for dep in unit.head.inputs} for unit in units
        ]

        # Worker threads start with fresh contexts and so see tracing as
        # disabled; the engine instead records raw per-unit timings here
        # (list.append is atomic) and assembles the span tree afterwards
        # in the calling thread.
        tracer = current_tracer()
        records: list[_UnitRecord] | None = [] if tracer is not None else None
        run_started = time.perf_counter()

        def execute_unit(unit: _Unit, wave: int = 0, ready_s: float = 0.0) -> None:
            started_s = time.perf_counter()
            chunks, owned, tail_ops = self._open_unit(unit, results, stats, batch_size)
            for step, op in tail_ops:
                if op.commit is not None:
                    commits.append((order[step.name], op.commit))
            out: list[Row] = []
            batches = 0
            for chunk in chunks:
                batches += 1
                chunk_owned = owned
                for step, op in tail_ops:
                    step_stats = stats[step.name]
                    step_stats.rows_in += len(chunk)
                    started = time.perf_counter()
                    chunk, chunk_owned = op.transform(chunk, chunk_owned)
                    step_stats.seconds += time.perf_counter() - started
                    step_stats.rows_out += len(chunk)
                out.extend(chunk)
            results[unit.tail.name] = out
            if records is not None:
                records.append(
                    _UnitRecord(
                        unit=unit,
                        wave=wave,
                        ready_s=ready_s,
                        started_s=started_s,
                        ended_s=time.perf_counter(),
                        batches=batches,
                        thread=threading.current_thread().name,
                    )
                )

        pending = set(range(len(units)))
        completed: set[int] = set()
        pool = ThreadPoolExecutor(max_workers=parallelism) if parallelism > 1 else None
        # Batch workers are pure CPU between yields; the interpreter's
        # default 5ms switch interval makes them fight over the GIL (the
        # convoy effect).  A coarser interval for the duration of the run
        # keeps each worker on core through a whole chunk.
        switch_interval = sys.getswitchinterval() if pool is not None else None
        if switch_interval is not None:
            sys.setswitchinterval(max(switch_interval, 0.05))
        wave_count = 0
        try:
            while pending:
                wave = sorted(
                    index for index in pending if unit_deps[index] <= completed
                )
                if not wave:  # unreachable while add() keeps the DAG acyclic
                    raise WorkflowError(f"workflow {self.name!r} is cyclic")
                wave_index = wave_count
                wave_count += 1
                ready_s = time.perf_counter()
                if pool is None or len(wave) == 1:
                    for index in wave:
                        execute_unit(units[index], wave_index, ready_s)
                else:
                    futures = [
                        (index, pool.submit(execute_unit, units[index], wave_index, ready_s))
                        for index in wave
                    ]
                    errors = []
                    for index, future in futures:
                        exc = future.exception()
                        if exc is not None:
                            errors.append((index, exc))
                    if errors:
                        raise errors[0][1]  # deterministic: lowest unit first
                pending -= set(wave)
                completed |= set(wave)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
            if switch_interval is not None:
                sys.setswitchinterval(switch_interval)

        for _, commit in sorted(commits, key=lambda entry: entry[0]):
            commit()

        report = RunReport(
            steps=[
                StepRun(
                    step=step.name,
                    stage=step.stage,
                    rows_in=stats[step.name].rows_in,
                    rows_out=stats[step.name].rows_out,
                    seconds=stats[step.name].seconds,
                )
                for step in self._steps.values()
            ]
        )
        if tracer is not None and records is not None:
            wall_s = time.perf_counter() - run_started
            root = self._assemble_trace(
                records, stats, parallelism, batch_size, wall_s
            )
            tracer.attach(root)
            report.trace = root
        outputs = (
            {name: results[name] for name in self.outputs}
            if self.outputs
            else results
        )
        return outputs, report

    def _assemble_trace(
        self,
        records: list[_UnitRecord],
        stats: dict[str, _StepStats],
        parallelism: int,
        batch_size: int | None,
        wall_s: float,
    ) -> Span:
        """Build the engine run's span tree from raw unit timings.

        Grouping is wave -> unit -> step.  Unit spans carry their queue
        wait (dispatchable to actually started) and worker thread; the
        root carries thread utilization — summed busy time over the
        pool's wall-clock capacity.
        """
        root = Span(
            f"workflow:{self.name}",
            attrs={
                "mode": "engine",
                "parallelism": parallelism,
                "batch_size": batch_size,
                "units": len(records),
                "waves": len({record.wave for record in records}),
            },
        )
        root.duration_s = wall_s
        busy_s = sum(record.ended_s - record.started_s for record in records)
        if wall_s > 0 and parallelism > 0:
            root.attrs["thread_utilization"] = round(
                busy_s / (wall_s * parallelism), 3
            )
        wave_spans: dict[int, Span] = {}
        for record in sorted(records, key=lambda r: (r.wave, r.started_s)):
            wave_span = wave_spans.get(record.wave)
            if wave_span is None:
                wave_span = root.child(f"wave:{record.wave}")
                wave_spans[record.wave] = wave_span
            wave_span.duration_s = max(
                wave_span.duration_s, record.ended_s - record.ready_s
            )
            unit_span = wave_span.child(
                f"unit:{record.unit.tail.name}",
                thread=record.thread,
                batches=record.batches,
                queue_wait_ms=round(
                    max(0.0, record.started_s - record.ready_s) * 1000, 3
                ),
            )
            unit_span.duration_s = record.ended_s - record.started_s
            for step in record.unit.steps:
                step_stats = stats[step.name]
                step_span = unit_span.child(
                    f"step:{step.name}",
                    stage=step.stage,
                    rows_in=step_stats.rows_in,
                    rows_out=step_stats.rows_out,
                )
                step_span.duration_s = step_stats.seconds
        return root

    def _open_unit(self, unit, results, stats, batch_size):
        """The unit's input chunk iterator, its ownership, and its tail ops.

        The head step either streams (Extract), concatenates borrowed
        chunks (UnionInputs), joins the tail as its first stream op
        (streamable unary components), or falls back to ``run()``.
        """
        head = unit.head
        component = head.component
        tail = [(step, step.component.open_stream()) for step in unit.steps[1:]]
        head_stats = stats[head.name]

        def counted(chunks, owned):
            def generate():
                started = time.perf_counter()
                for chunk in chunks:
                    head_stats.seconds += time.perf_counter() - started
                    head_stats.rows_out += len(chunk)
                    yield chunk
                    started = time.perf_counter()
                head_stats.seconds += time.perf_counter() - started

            return generate(), owned, tail

        if isinstance(component, Extract):
            component.expects(0, [results[name] for name in head.inputs])
            return counted(component.stream_chunks(batch_size), True)
        if isinstance(component, UnionInputs):
            inputs = [results[name] for name in head.inputs]
            head_stats.rows_in = sum(len(rows) for rows in inputs)
            if not inputs:
                component.run([])  # raises the canonical arity error

            def concat():
                for rows in inputs:
                    yield from _chunks(rows, batch_size)

            return counted(concat(), False)
        if component.streamable and len(head.inputs) == 1:
            # Unfusable upstream (multi-consumer or kept output): run this
            # step as the first op of its own chain; the per-chunk loop
            # accumulates its stats.
            rows = results[head.inputs[0]]
            tail.insert(0, (head, component.open_stream()))
            return _chunks(rows, batch_size), False, tail
        # Fallback: materialize via the serial contract.
        inputs = [results[name] for name in head.inputs]
        head_stats.rows_in = sum(len(rows) for rows in inputs)
        started = time.perf_counter()
        rows = component.run(inputs)
        head_stats.seconds += time.perf_counter() - started
        head_stats.rows_out = len(rows)
        return _chunks(rows, batch_size), False, tail

    # -- rendering -----------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the DAG, clustered by Figure 6 stage."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for index, stage in enumerate(self.stages()):
            lines.append(f'  subgraph cluster_{index} {{ label="{stage}";')
            for step in self._steps.values():
                if step.stage == stage:
                    lines.append(
                        f'    "{step.name}" '
                        f'[label="{step.name}\\n{type(step.component).__name__}"];'
                    )
            lines.append("  }")
        for step in self._steps.values():
            if not step.stage:
                lines.append(f'  "{step.name}";')
        for step in self._steps.values():
            for input_name in step.inputs:
                lines.append(f'  "{input_name}" -> "{step.name}";')
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        """Readable listing of the DAG."""
        lines = [f"Workflow {self.name!r}:"]
        for step in self._steps.values():
            deps = f" <- {list(step.inputs)}" if step.inputs else ""
            stage = f" [{step.stage}]" if step.stage else ""
            lines.append(f"  {step.name}: {type(step.component).__name__}{stage}{deps}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._steps)


def _chunks(rows: list[Row], batch_size: int | None):
    """Slice a row list into chunks (one chunk when unbatched)."""
    if batch_size is None or batch_size >= len(rows):
        yield rows
        return
    for start in range(0, len(rows), batch_size):
        yield rows[start : start + batch_size]
