"""ETL workflow DAGs and their executors.

Two execution paths share one DAG:

* :meth:`Workflow.run` with default arguments — the seed's strictly serial
  executor, preserved verbatim as the behavioural oracle.  Steps run in
  insertion (topological) order, each handing its full ``list[Row]`` to
  the next.
* ``run(parallelism=..., batch_size=...)`` — the level-scheduled engine.
  Steps fuse into *units*: maximal linear chains whose interior results
  nobody else consumes.  Units whose dependencies are satisfied dispatch
  together (a wave) onto a thread pool, and inside a unit rows flow as an
  iterator of chunks, with at most one defensive copy per chain instead of
  one per step.  Output rows, per-step row counts, and shared artifacts
  (the cleaning quarantine) are identical to the serial path; only timing
  differs.  Equivalence is asserted by tests/test_etl/test_engine.py.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import WorkflowError
from repro.etl.components import Chunk, Component, Extract, Row, UnionInputs


@dataclass
class Step:
    """One node of the workflow graph."""

    name: str
    component: Component
    inputs: tuple[str, ...] = ()
    #: Which Figure 6 stage this step belongs to (extract/classify/study).
    stage: str = ""


@dataclass
class StepRun:
    """Execution record for one step."""

    step: str
    stage: str
    rows_in: int
    rows_out: int
    seconds: float


@dataclass
class RunReport:
    """Per-step row counts and timings for one workflow run."""

    steps: list[StepRun] = field(default_factory=list)

    def rows_out(self, step_name: str) -> int:
        for run in self.steps:
            if run.step == step_name:
                return run.rows_out
        raise WorkflowError(f"no step {step_name!r} in run report")

    def summary(self) -> str:
        lines = [
            f"{'step':40} {'stage':10} {'in':>8} {'out':>8} {'seconds':>10}"
        ]
        for run in self.steps:
            lines.append(
                f"{run.step:40} {run.stage:10} {run.rows_in:>8} "
                f"{run.rows_out:>8} {run.seconds:>10.4f}"
            )
        return "\n".join(lines)


class _StepStats:
    """Accumulates one step's run record chunk by chunk."""

    __slots__ = ("rows_in", "rows_out", "seconds")

    def __init__(self) -> None:
        self.rows_in = 0
        self.rows_out = 0
        self.seconds = 0.0


@dataclass
class _Unit:
    """A fused linear chain of steps, executed as one schedulable task."""

    steps: list[Step]

    @property
    def head(self) -> Step:
        return self.steps[0]

    @property
    def tail(self) -> Step:
        return self.steps[-1]


class Workflow:
    """A named DAG of ETL steps.

    Steps execute in topological order; each step's inputs are the outputs
    of the named predecessor steps.  ``outputs`` names the steps whose
    results the caller wants back.
    """

    def __init__(self, name: str):
        self.name = name
        self._steps: dict[str, Step] = {}
        self.outputs: list[str] = []
        #: Shared run artifacts (e.g. the cleaning quarantine).
        self.context: dict[str, object] = {}

    def add(
        self,
        name: str,
        component: Component,
        inputs: tuple[str, ...] | list[str] = (),
        stage: str = "",
    ) -> Step:
        """Append a step; input names must already exist (keeps it acyclic)."""
        if name in self._steps:
            raise WorkflowError(f"duplicate step name {name!r}")
        for input_name in inputs:
            if input_name not in self._steps:
                raise WorkflowError(
                    f"step {name!r} depends on unknown step {input_name!r}"
                )
        step = Step(name, component, tuple(inputs), stage)
        self._steps[name] = step
        return step

    def mark_output(self, name: str) -> None:
        """Flag a step's result as a workflow output."""
        if name not in self._steps:
            raise WorkflowError(f"unknown step {name!r}")
        if name not in self.outputs:
            self.outputs.append(name)

    @property
    def steps(self) -> list[Step]:
        return list(self._steps.values())

    def step(self, name: str) -> Step:
        if name not in self._steps:
            raise WorkflowError(f"unknown step {name!r}")
        return self._steps[name]

    def stages(self) -> list[str]:
        """Distinct stages in first-appearance order (Figure 6 structure)."""
        seen: list[str] = []
        for step in self._steps.values():
            if step.stage and step.stage not in seen:
                seen.append(step.stage)
        return seen

    # -- execution -----------------------------------------------------------

    def run(
        self, parallelism: int = 1, batch_size: int | None = None
    ) -> tuple[dict[str, list[Row]], RunReport]:
        """Execute all steps; returns ({output step: rows}, report).

        ``parallelism`` > 1 dispatches independent steps onto that many
        worker threads; ``batch_size`` streams rows through fused chains in
        chunks of that size.  Either option engages the level-scheduled
        engine; the defaults keep the serial oracle path.
        """
        if parallelism <= 1 and batch_size is None:
            return self._run_serial()
        return self._run_engine(max(1, parallelism), batch_size)

    def _run_serial(self) -> tuple[dict[str, list[Row]], RunReport]:
        results: dict[str, list[Row]] = {}
        report = RunReport()
        for step in self._steps.values():  # insertion order is topological
            inputs = [results[name] for name in step.inputs]
            started = time.perf_counter()
            rows = step.component.run(inputs)
            elapsed = time.perf_counter() - started
            results[step.name] = rows
            report.steps.append(
                StepRun(
                    step=step.name,
                    stage=step.stage,
                    rows_in=sum(len(rows_in) for rows_in in inputs),
                    rows_out=len(rows),
                    seconds=elapsed,
                )
            )
        outputs = {name: results[name] for name in self.outputs} if self.outputs else results
        return outputs, report

    # -- the level-scheduled engine -----------------------------------------

    def _fuse(self) -> list[_Unit]:
        """Group steps into maximal streamable chains.

        A step joins its predecessor's unit when it is that step's *only*
        consumer, the predecessor's rows are not a requested output, and
        the component can stream.  Interior results of a unit are never
        materialized as step results (their row counts are still recorded).
        """
        consumers: dict[str, int] = {name: 0 for name in self._steps}
        for step in self._steps.values():
            for dep in step.inputs:
                consumers[dep] += 1
        keep = set(self.outputs) if self.outputs else set(self._steps)
        units: list[_Unit] = []
        unit_of_tail: dict[str, _Unit] = {}
        for step in self._steps.values():
            unit = None
            if len(step.inputs) == 1 and step.component.streamable:
                dep = step.inputs[0]
                candidate = unit_of_tail.get(dep)
                if candidate is not None and consumers[dep] == 1 and dep not in keep:
                    unit = candidate
            if unit is None:
                unit = _Unit([step])
                units.append(unit)
            else:
                unit.steps.append(step)
                del unit_of_tail[step.inputs[0]]
            unit_of_tail[step.name] = unit
        return units

    def _run_engine(
        self, parallelism: int, batch_size: int | None
    ) -> tuple[dict[str, list[Row]], RunReport]:
        units = self._fuse()
        producer = {unit.tail.name: index for index, unit in enumerate(units)}
        order = {name: index for index, name in enumerate(self._steps)}
        results: dict[str, list[Row]] = {}
        stats = {name: _StepStats() for name in self._steps}
        commits: list[tuple[int, object]] = []

        unit_deps: list[set[int]] = [
            {producer[dep] for dep in unit.head.inputs} for unit in units
        ]

        def execute_unit(unit: _Unit) -> None:
            chunks, owned, tail_ops = self._open_unit(unit, results, stats, batch_size)
            for step, op in tail_ops:
                if op.commit is not None:
                    commits.append((order[step.name], op.commit))
            out: list[Row] = []
            for chunk in chunks:
                chunk_owned = owned
                for step, op in tail_ops:
                    step_stats = stats[step.name]
                    step_stats.rows_in += len(chunk)
                    started = time.perf_counter()
                    chunk, chunk_owned = op.transform(chunk, chunk_owned)
                    step_stats.seconds += time.perf_counter() - started
                    step_stats.rows_out += len(chunk)
                out.extend(chunk)
            results[unit.tail.name] = out

        pending = set(range(len(units)))
        completed: set[int] = set()
        pool = ThreadPoolExecutor(max_workers=parallelism) if parallelism > 1 else None
        # Batch workers are pure CPU between yields; the interpreter's
        # default 5ms switch interval makes them fight over the GIL (the
        # convoy effect).  A coarser interval for the duration of the run
        # keeps each worker on core through a whole chunk.
        switch_interval = sys.getswitchinterval() if pool is not None else None
        if switch_interval is not None:
            sys.setswitchinterval(max(switch_interval, 0.05))
        try:
            while pending:
                wave = sorted(
                    index for index in pending if unit_deps[index] <= completed
                )
                if not wave:  # unreachable while add() keeps the DAG acyclic
                    raise WorkflowError(f"workflow {self.name!r} is cyclic")
                if pool is None or len(wave) == 1:
                    for index in wave:
                        execute_unit(units[index])
                else:
                    futures = [
                        (index, pool.submit(execute_unit, units[index]))
                        for index in wave
                    ]
                    errors = []
                    for index, future in futures:
                        exc = future.exception()
                        if exc is not None:
                            errors.append((index, exc))
                    if errors:
                        raise errors[0][1]  # deterministic: lowest unit first
                pending -= set(wave)
                completed |= set(wave)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
            if switch_interval is not None:
                sys.setswitchinterval(switch_interval)

        for _, commit in sorted(commits, key=lambda entry: entry[0]):
            commit()

        report = RunReport(
            steps=[
                StepRun(
                    step=step.name,
                    stage=step.stage,
                    rows_in=stats[step.name].rows_in,
                    rows_out=stats[step.name].rows_out,
                    seconds=stats[step.name].seconds,
                )
                for step in self._steps.values()
            ]
        )
        outputs = (
            {name: results[name] for name in self.outputs}
            if self.outputs
            else results
        )
        return outputs, report

    def _open_unit(self, unit, results, stats, batch_size):
        """The unit's input chunk iterator, its ownership, and its tail ops.

        The head step either streams (Extract), concatenates borrowed
        chunks (UnionInputs), joins the tail as its first stream op
        (streamable unary components), or falls back to ``run()``.
        """
        head = unit.head
        component = head.component
        tail = [(step, step.component.open_stream()) for step in unit.steps[1:]]
        head_stats = stats[head.name]

        def counted(chunks, owned):
            def generate():
                started = time.perf_counter()
                for chunk in chunks:
                    head_stats.seconds += time.perf_counter() - started
                    head_stats.rows_out += len(chunk)
                    yield chunk
                    started = time.perf_counter()
                head_stats.seconds += time.perf_counter() - started

            return generate(), owned, tail

        if isinstance(component, Extract):
            component.expects(0, [results[name] for name in head.inputs])
            return counted(component.stream_chunks(batch_size), True)
        if isinstance(component, UnionInputs):
            inputs = [results[name] for name in head.inputs]
            head_stats.rows_in = sum(len(rows) for rows in inputs)
            if not inputs:
                component.run([])  # raises the canonical arity error

            def concat():
                for rows in inputs:
                    yield from _chunks(rows, batch_size)

            return counted(concat(), False)
        if component.streamable and len(head.inputs) == 1:
            # Unfusable upstream (multi-consumer or kept output): run this
            # step as the first op of its own chain; the per-chunk loop
            # accumulates its stats.
            rows = results[head.inputs[0]]
            tail.insert(0, (head, component.open_stream()))
            return _chunks(rows, batch_size), False, tail
        # Fallback: materialize via the serial contract.
        inputs = [results[name] for name in head.inputs]
        head_stats.rows_in = sum(len(rows) for rows in inputs)
        started = time.perf_counter()
        rows = component.run(inputs)
        head_stats.seconds += time.perf_counter() - started
        head_stats.rows_out = len(rows)
        return _chunks(rows, batch_size), False, tail

    # -- rendering -----------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the DAG, clustered by Figure 6 stage."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for index, stage in enumerate(self.stages()):
            lines.append(f'  subgraph cluster_{index} {{ label="{stage}";')
            for step in self._steps.values():
                if step.stage == stage:
                    lines.append(
                        f'    "{step.name}" '
                        f'[label="{step.name}\\n{type(step.component).__name__}"];'
                    )
            lines.append("  }")
        for step in self._steps.values():
            if not step.stage:
                lines.append(f'  "{step.name}";')
        for step in self._steps.values():
            for input_name in step.inputs:
                lines.append(f'  "{input_name}" -> "{step.name}";')
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        """Readable listing of the DAG."""
        lines = [f"Workflow {self.name!r}:"]
        for step in self._steps.values():
            deps = f" <- {list(step.inputs)}" if step.inputs else ""
            stage = f" [{step.stage}]" if step.stage else ""
            lines.append(f"  {step.name}: {type(step.component).__name__}{stage}{deps}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._steps)


def _chunks(rows: list[Row], batch_size: int | None):
    """Slice a row list into chunks (one chunk when unbatched)."""
    if batch_size is None or batch_size >= len(rows):
        yield rows
        return
    for start in range(0, len(rows), batch_size):
        yield rows[start : start + batch_size]
