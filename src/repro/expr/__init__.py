"""The shared expression language.

One grammar serves four roles in the system:

* classifier rules (``A <- B``: arithmetic expression + boolean guard),
* study filters (the paper's "conditions similar to a WHERE clause"),
* control enablement conditions in the GUI model, and
* predicates in the relational algebra.

Keeping a single language makes Hypothesis 3's expressiveness argument
auditable: :func:`repro.expr.analysis.is_union_of_conjunctions` decides
whether a parsed condition falls inside "conjunctive queries with union".
"""

from repro.expr.ast import (
    BinaryOp,
    Expression,
    FunctionCall,
    Identifier,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.expr.lexer import Token, TokenType, tokenize
from repro.expr.parser import parse
from repro.expr.evaluator import Evaluator, evaluate
from repro.expr.compile import compile_expression, compile_predicate
from repro.expr.functions import FunctionRegistry, default_registry
from repro.expr.analysis import (
    atoms,
    is_conjunctive,
    is_union_of_conjunctions,
    referenced_identifiers,
    to_dnf,
)

__all__ = [
    "BinaryOp",
    "Evaluator",
    "Expression",
    "FunctionCall",
    "FunctionRegistry",
    "Identifier",
    "InList",
    "IsNull",
    "Literal",
    "Token",
    "TokenType",
    "UnaryOp",
    "atoms",
    "compile_expression",
    "compile_predicate",
    "default_registry",
    "evaluate",
    "is_conjunctive",
    "is_union_of_conjunctions",
    "parse",
    "referenced_identifiers",
    "to_dnf",
    "tokenize",
]
