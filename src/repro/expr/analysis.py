"""Static analysis over expression ASTs.

Two consumers:

* **MultiClass versioning** needs the set of g-tree nodes a classifier
  reads (:func:`referenced_identifiers`), to decide whether a classifier
  survives a reporting-tool upgrade.
* **Hypothesis 3** claims the classifier language is equivalent in power to
  *conjunctive queries with union*.  :func:`to_dnf` rewrites any boolean
  condition into a disjunction of conjunctions of atoms, and
  :func:`is_union_of_conjunctions` verifies the rewrite covers the whole
  grammar — the executable form of that claim.
"""

from __future__ import annotations

from repro.expr.ast import (
    BinaryOp,
    Expression,
    FunctionCall,
    Identifier,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    conjunction,
    disjunction,
)


def referenced_identifiers(expr: Expression) -> set[str]:
    """Dotted names of every identifier mentioned anywhere in ``expr``."""
    return {node.name for node in expr.walk() if isinstance(node, Identifier)}


def is_atom(expr: Expression) -> bool:
    """True when ``expr`` has no logical connectives inside it."""
    if isinstance(expr, BinaryOp) and expr.is_logical:
        return False
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return False
    return all(is_atom(child) for child in expr.children())


def atoms(expr: Expression) -> list[Expression]:
    """The maximal connective-free subexpressions of ``expr``, pre-order."""
    if is_atom(expr):
        return [expr]
    found: list[Expression] = []
    for child in expr.children():
        found.extend(atoms(child))
    return found


def is_conjunctive(expr: Expression) -> bool:
    """True when ``expr`` is a conjunction of atoms (no OR, no NOT over ANDs)."""
    if is_atom(expr):
        return True
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return is_conjunctive(expr.left) and is_conjunctive(expr.right)
    return False


def to_dnf(expr: Expression) -> list[list[Expression]]:
    """Rewrite a boolean expression into disjunctive normal form.

    Returns a list of clauses; each clause is a list of atoms understood as
    a conjunction, and the clauses are joined by OR.  ``NOT`` is pushed to
    atoms (where it stays as a negated atom), ``IN`` lists expand to
    equality disjunctions, so every classifier-language condition lands in
    "union of conjunctive" shape.
    """
    normalized = _push_not(expr, negate=False)
    return _dnf(normalized)


def dnf_to_expression(clauses: list[list[Expression]]) -> Expression:
    """Reassemble DNF clauses into a single expression (for round-tripping)."""
    return disjunction([conjunction(clause) for clause in clauses])


def is_union_of_conjunctions(expr: Expression, max_clauses: int = 10_000) -> bool:
    """Check the Hypothesis 3 claim for one condition.

    Every condition in the grammar normalizes to DNF; the check fails only
    if normalization would explode past ``max_clauses`` (never in practice
    for analyst-written classifiers).
    """
    try:
        clauses = to_dnf(expr)
    except RecursionError:  # pragma: no cover - pathological nesting only
        return False
    return len(clauses) <= max_clauses


# -- internals ---------------------------------------------------------------


def _push_not(expr: Expression, negate: bool) -> Expression:
    """Drive NOT down to atoms (negation normal form)."""
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return _push_not(expr.operand, not negate)
    if isinstance(expr, BinaryOp) and expr.is_logical:
        left = _push_not(expr.left, negate)
        right = _push_not(expr.right, negate)
        op = expr.op
        if negate:
            op = "OR" if op == "AND" else "AND"
        return BinaryOp(op, left, right)
    if negate:
        negated = _negate_atom(expr)
        if negated is not None:
            return negated
        return UnaryOp("NOT", expr)
    return expr


_COMPARISON_NEGATION = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


def _negate_atom(expr: Expression) -> Expression | None:
    """Negate an atom structurally when a dual form exists."""
    if isinstance(expr, BinaryOp) and expr.op in _COMPARISON_NEGATION:
        return BinaryOp(_COMPARISON_NEGATION[expr.op], expr.left, expr.right)
    if isinstance(expr, IsNull):
        return IsNull(expr.operand, negated=not expr.negated)
    if isinstance(expr, InList):
        return InList(expr.operand, expr.items, negated=not expr.negated)
    if isinstance(expr, Literal) and isinstance(expr.value, bool):
        return Literal(not expr.value)
    return None


def _dnf(expr: Expression) -> list[list[Expression]]:
    """DNF of a negation-normal-form expression."""
    if isinstance(expr, BinaryOp) and expr.op == "OR":
        return _dnf(expr.left) + _dnf(expr.right)
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        left_clauses = _dnf(expr.left)
        right_clauses = _dnf(expr.right)
        return [
            left + right for left in left_clauses for right in right_clauses
        ]
    if isinstance(expr, InList) and not expr.negated:
        # Positive IN expands to a union of equalities — the canonical
        # "union of conjunctive queries" citizen.
        return [
            [BinaryOp("=", expr.operand, item)] for item in expr.items
        ]
    return [[expr]]


def complexity(expr: Expression) -> int:
    """Node count — a rough cost metric used by benchmark reports."""
    return sum(1 for _ in expr.walk())


def referenced_functions(expr: Expression) -> set[str]:
    """Names of all functions called anywhere in ``expr``."""
    return {node.name for node in expr.walk() if isinstance(node, FunctionCall)}
