"""AST node types for the shared expression language.

All nodes are immutable dataclasses.  ``to_source()`` renders a node back to
concrete syntax that re-parses to an equal AST (round-trip property tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence


@dataclass(frozen=True)
class Expression:
    """Base class for all expression nodes."""

    def children(self) -> tuple["Expression", ...]:
        """Direct sub-expressions, left to right."""
        return ()

    def walk(self) -> Iterator["Expression"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def to_source(self) -> str:
        """Render back to concrete syntax."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_source()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean, or NULL (``value is None``)."""

    value: object

    def to_source(self) -> str:
        if self.value is None:
            return "NULL"
        if self.value is True:
            return "TRUE"
        if self.value is False:
            return "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class Identifier(Expression):
    """A (possibly dotted) reference to a g-tree node or column.

    ``path`` holds the dotted segments, e.g. ``("MedicalHistory", "Smoking")``
    for the source text ``MedicalHistory.Smoking``.
    """

    path: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("Identifier requires at least one path segment")

    @property
    def name(self) -> str:
        """The dotted name as written in source."""
        return ".".join(self.path)

    @property
    def leaf(self) -> str:
        """The final path segment."""
        return self.path[-1]

    def to_source(self) -> str:
        return self.name

    @classmethod
    def of(cls, dotted: str) -> "Identifier":
        """Build an identifier from a dotted string."""
        return cls(tuple(dotted.split(".")))


# Binary operators, grouped by family.  The parser guarantees ``op`` is one
# of these strings.
ARITHMETIC_OPS = ("+", "-", "*", "/", "%")
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=", "LIKE")
LOGICAL_OPS = ("AND", "OR")


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operation: arithmetic, comparison, or logical."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    @property
    def is_arithmetic(self) -> bool:
        return self.op in ARITHMETIC_OPS

    @property
    def is_comparison(self) -> bool:
        return self.op in COMPARISON_OPS

    @property
    def is_logical(self) -> bool:
        return self.op in LOGICAL_OPS

    def to_source(self) -> str:
        return f"({self.left.to_source()} {self.op} {self.right.to_source()})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary negation: arithmetic ``-`` or logical ``NOT``."""

    op: str  # "-" or "NOT"
    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def to_source(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.to_source()})"
        return f"(-{self.operand.to_source()})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A call to a registered function, e.g. ``COALESCE(a, 0)``."""

    name: str
    args: tuple[Expression, ...] = field(default_factory=tuple)

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def to_source(self) -> str:
        rendered = ", ".join(arg.to_source() for arg in self.args)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class InList(Expression):
    """Membership test: ``x IN ('a', 'b')`` or ``x NOT IN (1, 2)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, *self.items)

    def to_source(self) -> str:
        rendered = ", ".join(item.to_source() for item in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_source()} {keyword} ({rendered}))"


@dataclass(frozen=True)
class IsNull(Expression):
    """Null test: ``x IS NULL`` or ``x IS NOT NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def to_source(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_source()} {keyword})"


def conjunction(parts: Sequence[Expression]) -> Expression:
    """Combine ``parts`` with AND; returns TRUE literal when empty."""
    if not parts:
        return Literal(True)
    result = parts[0]
    for part in parts[1:]:
        result = BinaryOp("AND", result, part)
    return result


def disjunction(parts: Sequence[Expression]) -> Expression:
    """Combine ``parts`` with OR; returns FALSE literal when empty."""
    if not parts:
        return Literal(False)
    result = parts[0]
    for part in parts[1:]:
        result = BinaryOp("OR", result, part)
    return result
