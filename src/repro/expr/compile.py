"""Compile expression ASTs into Python closures.

``compile_expression`` lowers an :class:`~repro.expr.ast.Expression` tree
into a nest of plain Python closures *once*; executing a plan (or applying
classifier rules) then makes one function call per row instead of recursing
over the AST through :class:`~repro.expr.evaluator.Evaluator`.

The lowering reuses the evaluator's own semantic helpers (``_compare``,
``_arithmetic``, LIKE, Kleene logic, suffix identifier resolution) so SQL
three-valued-logic behaviour — including which errors are raised, and when —
matches the tree-walking interpreter exactly.  Property tests in
``tests/test_expr/test_compile.py`` assert that equivalence on randomized
expressions and environments.

Compilation against the default function registry is memoized per
expression object, so plan nodes and classifier rules pay the lowering cost
once per distinct expression, not once per execute.
"""

from __future__ import annotations

import operator
from typing import Callable, Mapping

from repro.errors import EvaluationError
from repro.expr.ast import (
    BinaryOp,
    Expression,
    FunctionCall,
    Identifier,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.expr.evaluator import (
    Evaluator,
    _arithmetic,
    _as_bool,
    _compare,
    _like,
    resolve_suffix_key,
)
from repro.expr.functions import FunctionRegistry, default_registry

Environment = Mapping[str, object]
CompiledExpression = Callable[[Environment], object]
CompiledPredicate = Callable[[Environment], bool]

_DEFAULT_REGISTRY = default_registry()
_MISSING = object()

# Memoization for the default registry.  Keyed by expression *identity*, not
# structural equality: ``Literal(0) == Literal(False)`` under Python's dict
# semantics, yet ``0 > 0`` and ``FALSE > 0`` evaluate differently, so
# equality-keyed caching would alias semantically distinct trees.  Each entry
# stores the expression itself, which pins it alive so its id cannot be
# recycled while the entry exists.
_EXPRESSION_CACHE: dict[int, tuple[Expression, CompiledExpression]] = {}
_PREDICATE_CACHE: dict[int, tuple[Expression, CompiledPredicate]] = {}
_CACHE_LIMIT = 4096


def compile_expression(
    expr: Expression, functions: FunctionRegistry | None = None
) -> CompiledExpression:
    """Lower ``expr`` to a closure computing its value in an environment."""
    registry = functions or _DEFAULT_REGISTRY
    if registry is not _DEFAULT_REGISTRY:
        return _lower(expr, registry)
    cached = _EXPRESSION_CACHE.get(id(expr))
    if cached is not None and cached[0] is expr:
        return cached[1]
    compiled = _lower(expr, registry)
    if len(_EXPRESSION_CACHE) >= _CACHE_LIMIT:
        _EXPRESSION_CACHE.clear()
    _EXPRESSION_CACHE[id(expr)] = (expr, compiled)
    return compiled


def compile_predicate(
    expr: Expression, functions: FunctionRegistry | None = None
) -> CompiledPredicate:
    """Like :meth:`Evaluator.satisfied`: True iff ``expr`` is boolean TRUE."""
    registry = functions or _DEFAULT_REGISTRY
    if registry is not _DEFAULT_REGISTRY:
        value_of = _lower(expr, registry)
        return lambda env: value_of(env) is True
    cached = _PREDICATE_CACHE.get(id(expr))
    if cached is not None and cached[0] is expr:
        return cached[1]
    value_of = compile_expression(expr)
    compiled = lambda env: value_of(env) is True  # noqa: E731
    if len(_PREDICATE_CACHE) >= _CACHE_LIMIT:
        _PREDICATE_CACHE.clear()
    _PREDICATE_CACHE[id(expr)] = (expr, compiled)
    return compiled


# -- lowering ------------------------------------------------------------------


def _lower(expr: Expression, registry: FunctionRegistry) -> CompiledExpression:
    if isinstance(expr, Literal):
        value = expr.value
        return lambda env: value
    if isinstance(expr, Identifier):
        return _lower_identifier(expr)
    if isinstance(expr, UnaryOp):
        return _lower_unary(expr, registry)
    if isinstance(expr, BinaryOp):
        return _lower_binary(expr, registry)
    if isinstance(expr, FunctionCall):
        return _lower_function_call(expr, registry)
    if isinstance(expr, InList):
        return _lower_in_list(expr, registry)
    if isinstance(expr, IsNull):
        operand = _lower(expr.operand, registry)
        if expr.negated:
            return lambda env: operand(env) is not None
        return lambda env: operand(env) is None
    # Unknown node types fall back to the interpreter, which either supports
    # them or raises the canonical EvaluationError.
    interpreter = Evaluator(registry)
    return lambda env: interpreter.evaluate(expr, env)


def _lower_identifier(expr: Identifier) -> CompiledExpression:
    name = expr.name
    leaf = expr.leaf

    if name == leaf:

        def resolve_plain(env: Environment) -> object:
            value = env.get(name, _MISSING)
            if value is not _MISSING:
                return value
            return env[resolve_suffix_key(name, name, env)]

        return resolve_plain

    def resolve_dotted(env: Environment) -> object:
        value = env.get(name, _MISSING)
        if value is not _MISSING:
            return value
        value = env.get(leaf, _MISSING)
        if value is not _MISSING:
            return value
        return env[resolve_suffix_key(name, leaf, env)]

    return resolve_dotted


def _lower_unary(expr: UnaryOp, registry: FunctionRegistry) -> CompiledExpression:
    operand = _lower(expr.operand, registry)
    if expr.op == "-":

        def negate(env: Environment) -> object:
            value = operand(env)
            if value is None:
                return None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise EvaluationError(f"cannot negate non-numeric value {value!r}")
            return -value

        return negate
    if expr.op == "NOT":

        def invert(env: Environment) -> object:
            value = operand(env)
            if value is None:
                return None
            return not _as_bool(value)

        return invert
    op = expr.op

    def unknown(env: Environment) -> object:
        raise EvaluationError(f"unknown unary operator {op!r}")

    return unknown


def _boolean_valued(expr: Expression) -> bool:
    """True when the lowered closure can only return True/False/None.

    Lets AND/OR skip the per-row ``_maybe_bool`` type check for operands
    that are statically boolean (comparisons, logic, IS NULL, IN, boolean
    literals) — the overwhelmingly common shape of predicates.
    """
    if isinstance(expr, BinaryOp):
        return expr.op in _BOOLEAN_OPS
    if isinstance(expr, UnaryOp):
        return expr.op == "NOT"
    if isinstance(expr, (IsNull, InList)):
        return True
    if isinstance(expr, Literal):
        return expr.value is None or isinstance(expr.value, bool)
    return False


_BOOLEAN_OPS = frozenset(("=", "!=", "<", "<=", ">", ">=", "AND", "OR", "LIKE"))

_COMPARE_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_TOTAL_ARITHMETIC_OPS = {"+": operator.add, "-": operator.sub, "*": operator.mul}


def _lower_logic_operand(
    expr: Expression, registry: FunctionRegistry
) -> CompiledExpression:
    fn = _lower(expr, registry)
    if _boolean_valued(expr):
        return fn

    def checked(env: Environment) -> object:
        value = fn(env)
        if value is None or value is True or value is False:
            return value
        return _as_bool(value)  # raises the interpreter's type error

    return checked


def _lower_binary(expr: BinaryOp, registry: FunctionRegistry) -> CompiledExpression:
    op = expr.op
    if op in ("AND", "OR"):
        left = _lower_logic_operand(expr.left, registry)
        right = _lower_logic_operand(expr.right, registry)
        if op == "AND":

            def conjoin(env: Environment) -> object:
                a = left(env)
                if a is False:
                    return False
                b = right(env)
                if b is False:
                    return False
                if a is None or b is None:
                    return None
                return True

            return conjoin

        def disjoin(env: Environment) -> object:
            a = left(env)
            if a is True:
                return True
            b = right(env)
            if b is True:
                return True
            if a is None or b is None:
                return None
            return False

        return disjoin
    left = _lower(expr.left, registry)
    right = _lower(expr.right, registry)
    if op in ("+", "-", "*"):
        op_fn = _TOTAL_ARITHMETIC_OPS[op]

        def arith(env: Environment) -> object:
            a = left(env)
            b = right(env)
            if a is None or b is None:
                return None
            # Exact type checks exclude bool (a subclass of int), which
            # _arithmetic rejects; anything unusual takes the slow path.
            if (type(a) is int or type(a) is float) and (
                type(b) is int or type(b) is float
            ):
                return op_fn(a, b)
            return _arithmetic(op, a, b)

        return arith
    if op in ("/", "%"):

        def divide(env: Environment) -> object:
            a = left(env)
            b = right(env)
            if a is None or b is None:
                return None
            return _arithmetic(op, a, b)

        return divide
    if op in _COMPARE_OPS:
        op_fn = _COMPARE_OPS[op]

        def compare(env: Environment) -> object:
            a = left(env)
            b = right(env)
            if a is None or b is None:
                return None
            ta = type(a)
            tb = type(b)
            if ta is tb:
                # Same concrete type: numbers, strings, and booleans all
                # order natively; anything else takes the slow path.
                if ta is int or ta is float or ta is str or ta is bool:
                    return op_fn(a, b)
            elif (ta is int or ta is float) and (tb is int or tb is float):
                return op_fn(a, b)
            return _compare(op, a, b)

        return compare
    if op == "LIKE":

        def like(env: Environment) -> object:
            a = left(env)
            b = right(env)
            if a is None or b is None:
                return None
            return _like(str(a), str(b))

        return like

    def unknown(env: Environment) -> object:
        raise EvaluationError(f"unknown binary operator {op!r}")

    return unknown


def _lower_function_call(
    expr: FunctionCall, registry: FunctionRegistry
) -> CompiledExpression:
    name = expr.name
    arg_fns = tuple(_lower(arg, registry) for arg in expr.args)
    arg_count = len(arg_fns)
    # Resolve the implementation lazily, on first call *after* the arguments
    # evaluate — matching the interpreter, which raises unknown-function and
    # arity errors only when a row actually reaches the call.
    bound: list = [None]

    if arg_count == 1:
        arg0 = arg_fns[0]

        def invoke1(env: Environment) -> object:
            value = arg0(env)
            impl = bound[0]
            if impl is None:
                bound[0] = impl = registry.bind(name, 1)
            return impl(value)

        return invoke1

    if arg_count == 2:
        arg0, arg1 = arg_fns

        def invoke2(env: Environment) -> object:
            first = arg0(env)
            second = arg1(env)
            impl = bound[0]
            if impl is None:
                bound[0] = impl = registry.bind(name, 2)
            return impl(first, second)

        return invoke2

    def invoke(env: Environment) -> object:
        args = [fn(env) for fn in arg_fns]
        impl = bound[0]
        if impl is None:
            bound[0] = impl = registry.bind(name, arg_count)
        return impl(*args)

    return invoke


def _lower_in_list(expr: InList, registry: FunctionRegistry) -> CompiledExpression:
    operand = _lower(expr.operand, registry)
    item_fns = tuple(_lower(item, registry) for item in expr.items)
    negated = expr.negated

    def member(env: Environment) -> object:
        value = operand(env)
        if value is None:
            return None
        saw_null = False
        for item in item_fns:
            candidate = item(env)
            if candidate is None:
                saw_null = True
                continue
            if _compare("=", value, candidate) is True:
                return not negated
        if saw_null:
            return None
        return negated

    return member
