"""Evaluation of expression ASTs against an environment.

Null semantics follow SQL's three-valued logic: comparisons and arithmetic
involving NULL yield NULL; AND/OR use Kleene logic; a NULL condition is
treated as *not satisfied* by callers that need a boolean (classifier rule
guards, study filters).  This matters for clinical data, where an
unanswered question must never silently satisfy a cohort condition.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Mapping

from repro.errors import EvaluationError, UnknownIdentifierError
from repro.expr.ast import (
    BinaryOp,
    Expression,
    FunctionCall,
    Identifier,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.expr.functions import FunctionRegistry, default_registry

Environment = Mapping[str, object]

_DEFAULT_REGISTRY = default_registry()

# Suffix-fallback identifier resolution is pure in (environment key-set,
# identifier name), so the scan over all keys is memoized per key-set.  The
# cache is bounded: key-sets correspond to table/plan schemas, of which a
# process sees few, but a hard cap guards against adversarial churn.
_SUFFIX_CACHE: dict[tuple[frozenset[str], str], object] = {}
_SUFFIX_CACHE_LIMIT = 4096
_UNKNOWN = object()


def resolve_suffix_key(name: str, leaf: str, env: Environment) -> str:
    """The environment key a dotted identifier resolves to by suffix match.

    Callers try the full name and leaf segment directly first; this handles
    (and memoizes) only the slow fallback that scans every key.  Raises
    :class:`UnknownIdentifierError` on no match and :class:`EvaluationError`
    on an ambiguous one, like inline resolution always has.
    """
    cache_key = (frozenset(env), name)
    outcome = _SUFFIX_CACHE.get(cache_key)
    if outcome is None:
        matches = [
            key
            for key in cache_key[0]
            if key.endswith("." + name) or key.endswith("." + leaf)
        ]
        if len(matches) == 1:
            outcome = matches[0]
        elif matches:
            outcome = tuple(sorted(matches))
        else:
            outcome = _UNKNOWN
        if len(_SUFFIX_CACHE) >= _SUFFIX_CACHE_LIMIT:
            _SUFFIX_CACHE.clear()
        _SUFFIX_CACHE[cache_key] = outcome
    if outcome is _UNKNOWN:
        raise UnknownIdentifierError(name)
    if isinstance(outcome, tuple):
        raise EvaluationError(
            f"ambiguous identifier {name!r}: matches {list(outcome)}"
        )
    return outcome  # type: ignore[return-value]


class Evaluator:
    """Evaluate expressions against name → value environments.

    The environment maps *dotted* identifier names to values; an identifier
    is resolved first by its full dotted name, then by its leaf segment
    (so ``Smoking`` finds ``MedicalHistory.Smoking`` when unambiguous).
    """

    def __init__(self, functions: FunctionRegistry | None = None):
        self._functions = functions or _DEFAULT_REGISTRY

    def evaluate(self, expr: Expression, env: Environment) -> object:
        """Compute the value of ``expr`` in ``env`` (may return None)."""
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Identifier):
            return self._resolve(expr, env)
        if isinstance(expr, UnaryOp):
            return self._unary(expr, env)
        if isinstance(expr, BinaryOp):
            return self._binary(expr, env)
        if isinstance(expr, FunctionCall):
            args = [self.evaluate(arg, env) for arg in expr.args]
            return self._functions.call(expr.name, args)
        if isinstance(expr, InList):
            return self._in_list(expr, env)
        if isinstance(expr, IsNull):
            value = self.evaluate(expr.operand, env)
            result = value is None
            return not result if expr.negated else result
        raise EvaluationError(f"cannot evaluate node type {type(expr).__name__}")

    def satisfied(self, expr: Expression, env: Environment) -> bool:
        """True iff ``expr`` evaluates to boolean TRUE (NULL counts as false)."""
        return self.evaluate(expr, env) is True

    # -- helpers ------------------------------------------------------------

    def _resolve(self, identifier: Identifier, env: Environment) -> object:
        name = identifier.name
        if name in env:
            return env[name]
        leaf = identifier.leaf
        if leaf in env:
            return env[leaf]
        # Fall back to a suffix match on dotted environment keys, so an
        # expression written against a short node name still resolves when
        # the environment is keyed by full g-tree paths.
        return env[resolve_suffix_key(name, leaf, env)]

    def _unary(self, expr: UnaryOp, env: Environment) -> object:
        value = self.evaluate(expr.operand, env)
        if expr.op == "-":
            if value is None:
                return None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise EvaluationError(f"cannot negate non-numeric value {value!r}")
            return -value
        if expr.op == "NOT":
            if value is None:
                return None
            return not _as_bool(value)
        raise EvaluationError(f"unknown unary operator {expr.op!r}")

    def _binary(self, expr: BinaryOp, env: Environment) -> object:
        op = expr.op
        if op == "AND":
            return _kleene_and(
                _maybe_bool(self.evaluate(expr.left, env)),
                lambda: _maybe_bool(self.evaluate(expr.right, env)),
            )
        if op == "OR":
            return _kleene_or(
                _maybe_bool(self.evaluate(expr.left, env)),
                lambda: _maybe_bool(self.evaluate(expr.right, env)),
            )
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        if left is None or right is None:
            return None
        if op in ("+", "-", "*", "/", "%"):
            return _arithmetic(op, left, right)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        if op == "LIKE":
            return _like(str(left), str(right))
        raise EvaluationError(f"unknown binary operator {op!r}")

    def _in_list(self, expr: InList, env: Environment) -> object:
        value = self.evaluate(expr.operand, env)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = self.evaluate(item, env)
            if candidate is None:
                saw_null = True
                continue
            if _compare("=", value, candidate) is True:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated


def _maybe_bool(value: object) -> bool | None:
    if value is None:
        return None
    return _as_bool(value)


def _as_bool(value: object) -> bool:
    if isinstance(value, bool):
        return value
    raise EvaluationError(f"expected boolean, got {value!r}")


def _kleene_and(left: bool | None, right_thunk) -> bool | None:
    if left is False:
        return False
    right = right_thunk()
    if right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _kleene_or(left: bool | None, right_thunk) -> bool | None:
    if left is True:
        return True
    right = right_thunk()
    if right is True:
        return True
    if left is None or right is None:
        return None
    return False


def _arithmetic(op: str, left: object, right: object) -> object:
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        raise EvaluationError(
            f"arithmetic {op} requires numbers, got {left!r} and {right!r}"
        )
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
    except ZeroDivisionError:
        return None
    raise EvaluationError(f"unknown arithmetic operator {op!r}")


def _compare(op: str, left: object, right: object) -> bool | None:
    # Numbers compare numerically; booleans only against booleans; strings
    # against strings.  Cross-type comparison (other than int/float) is an
    # error rather than a silent False — misclassifying clinical data
    # quietly would be worse than failing loudly.
    if isinstance(left, bool) != isinstance(right, bool):
        if op == "=":
            return False
        if op == "!=":
            return True
        raise EvaluationError(f"cannot order {left!r} against {right!r}")
    numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
    textual = isinstance(left, str) and isinstance(right, str)
    both_bool = isinstance(left, bool) and isinstance(right, bool)
    if not (numeric or textual or both_bool):
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        raise EvaluationError(f"cannot order {left!r} against {right!r}")
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    if op == ">=":
        return left >= right  # type: ignore[operator]
    raise EvaluationError(f"unknown comparison operator {op!r}")


@lru_cache(maxsize=1024)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    # re.escape leaves % and _ untouched (they are not regex-special), so
    # they can be swapped for their regex equivalents directly.
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.compile(regex, flags=re.IGNORECASE | re.DOTALL)


def _like(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` (any run) and ``_`` (single char), case-insensitive."""
    return _like_regex(pattern).fullmatch(value) is not None


def sql_equal(left: object, right: object) -> bool:
    """SQL ``=`` forced to a boolean: NULL never matches, no type coercion.

    Index probes use this as their post-filter so hash-equal keys that SQL
    distinguishes (``1`` vs ``TRUE``) cannot leak through a bucket.
    """
    if left is None or right is None:
        return False
    return _compare("=", left, right) is True


def evaluate(expr: Expression, env: Environment) -> object:
    """Module-level convenience wrapper using the default function registry."""
    return Evaluator().evaluate(expr, env)
