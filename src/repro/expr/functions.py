"""Built-in function library for the expression language.

Functions follow SQL-ish null semantics: unless documented otherwise, a
NULL (Python ``None``) argument yields NULL.  ``COALESCE`` and ``IFNULL``
are the deliberate exceptions.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import EvaluationError, UnknownFunctionError

FunctionImpl = Callable[..., object]


class FunctionRegistry:
    """Name → implementation mapping with optional arity checking."""

    def __init__(self) -> None:
        self._functions: dict[str, FunctionImpl] = {}
        self._arity: dict[str, tuple[int, int | None]] = {}

    def register(
        self,
        name: str,
        impl: FunctionImpl,
        min_args: int = 0,
        max_args: int | None = None,
    ) -> None:
        """Register ``impl`` under ``name`` (case-insensitive)."""
        key = name.upper()
        self._functions[key] = impl
        self._arity[key] = (min_args, max_args)

    def lookup(self, name: str) -> FunctionImpl:
        key = name.upper()
        if key not in self._functions:
            raise UnknownFunctionError(name)
        return self._functions[key]

    def bind(self, name: str, arg_count: int) -> FunctionImpl:
        """Resolve ``name`` and validate a static argument count once.

        Compiled expressions know their argument count at lowering time, so
        the arity check need not be repeated per row; the raised errors are
        identical to :meth:`call`'s.
        """
        impl = self.lookup(name)
        min_args, max_args = self._arity[name.upper()]
        if arg_count < min_args or (max_args is not None and arg_count > max_args):
            expected = (
                f"exactly {min_args}"
                if max_args == min_args
                else f"between {min_args} and {max_args or 'unbounded'}"
            )
            raise EvaluationError(
                f"{name} expects {expected} argument(s), got {arg_count}"
            )
        return impl

    def call(self, name: str, args: list[object]) -> object:
        """Invoke a registered function, enforcing its declared arity."""
        impl = self.lookup(name)
        min_args, max_args = self._arity[name.upper()]
        if len(args) < min_args or (max_args is not None and len(args) > max_args):
            expected = (
                f"exactly {min_args}"
                if max_args == min_args
                else f"between {min_args} and {max_args or 'unbounded'}"
            )
            raise EvaluationError(
                f"{name} expects {expected} argument(s), got {len(args)}"
            )
        return impl(*args)

    def names(self) -> list[str]:
        """All registered function names, sorted."""
        return sorted(self._functions)

    def copy(self) -> "FunctionRegistry":
        """A shallow copy that can be extended without mutating the original."""
        clone = FunctionRegistry()
        clone._functions = dict(self._functions)
        clone._arity = dict(self._arity)
        return clone


def _null_propagating(impl: FunctionImpl) -> FunctionImpl:
    def wrapper(*args: object) -> object:
        if any(arg is None for arg in args):
            return None
        return impl(*args)

    return wrapper


def _coalesce(*args: object) -> object:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _iif(condition: object, when_true: object, when_false: object) -> object:
    return when_true if condition is True else when_false


def _substring(text: str, start: int, length: int | None = None) -> str:
    # 1-based start, mirroring SQL SUBSTRING.
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


def _round(value: float, digits: int = 0) -> float:
    return round(float(value), int(digits))


def _least(*args: object) -> object:
    return min(args)  # type: ignore[type-var]


def _greatest(*args: object) -> object:
    return max(args)  # type: ignore[type-var]


def _num(value: object) -> object:
    """Best-effort numeric coercion used when UI text fields hold numbers."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    text = str(value).strip()
    if not text:
        return None
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            raise EvaluationError(f"NUM() cannot convert {value!r} to a number")


def default_registry() -> FunctionRegistry:
    """Construct the standard library shared by all evaluators."""
    registry = FunctionRegistry()
    register = registry.register

    register("ABS", _null_propagating(lambda x: abs(x)), 1, 1)
    register("ROUND", _null_propagating(_round), 1, 2)
    register("FLOOR", _null_propagating(lambda x: math.floor(x)), 1, 1)
    register("CEIL", _null_propagating(lambda x: math.ceil(x)), 1, 1)
    register("SQRT", _null_propagating(lambda x: math.sqrt(x)), 1, 1)
    register("POWER", _null_propagating(lambda x, y: x**y), 2, 2)
    register("MOD", _null_propagating(lambda x, y: x % y), 2, 2)
    register("LEAST", _null_propagating(_least), 1, None)
    register("GREATEST", _null_propagating(_greatest), 1, None)
    register("NUM", _null_propagating(_num), 1, 1)

    register("LENGTH", _null_propagating(lambda s: len(str(s))), 1, 1)
    register("UPPER", _null_propagating(lambda s: str(s).upper()), 1, 1)
    register("LOWER", _null_propagating(lambda s: str(s).lower()), 1, 1)
    register("TRIM", _null_propagating(lambda s: str(s).strip()), 1, 1)
    register("SUBSTRING", _null_propagating(_substring), 2, 3)
    register(
        "CONCAT",
        lambda *parts: "".join(str(p) for p in parts if p is not None),
        1,
        None,
    )
    register(
        "CONTAINS",
        _null_propagating(lambda s, sub: str(sub).lower() in str(s).lower()),
        2,
        2,
    )
    register(
        "STARTSWITH",
        _null_propagating(lambda s, pre: str(s).lower().startswith(str(pre).lower())),
        2,
        2,
    )

    register("YEAR", _null_propagating(lambda d: _as_date(d).year), 1, 1)
    register("MONTH", _null_propagating(lambda d: _as_date(d).month), 1, 1)
    register("DAY", _null_propagating(lambda d: _as_date(d).day), 1, 1)
    register(
        "DAYS_BETWEEN",
        _null_propagating(lambda a, b: (_as_date(b) - _as_date(a)).days),
        2,
        2,
    )

    register("JSON_GET", _json_get, 2, 2)
    register("COALESCE", _coalesce, 1, None)
    register("IFNULL", lambda value, default: default if value is None else value, 2, 2)
    register("IIF", _iif, 3, 3)
    register("ISNUMERIC", lambda v: _is_numeric(v), 1, 1)

    return registry


def _as_date(value: object):
    """Coerce a date function argument (date or ISO text) to a date."""
    from datetime import date

    if isinstance(value, date):
        return value
    if isinstance(value, str):
        try:
            return date.fromisoformat(value.strip())
        except ValueError as exc:
            raise EvaluationError(f"not an ISO date: {value!r}") from exc
    raise EvaluationError(f"not a date: {value!r}")


def _json_get(blob: object, key: object) -> object:
    """Extract a top-level key from a JSON object blob (NULL on miss).

    Used by the *Blob* design pattern's read path: entire screens stored
    as one serialized column get their fields back through JSON_GET.
    """
    if blob is None or key is None:
        return None
    import json

    try:
        parsed = json.loads(str(blob))
    except (ValueError, TypeError):
        raise EvaluationError(f"JSON_GET: not a JSON document: {blob!r}")
    if not isinstance(parsed, dict):
        raise EvaluationError("JSON_GET: blob is not a JSON object")
    return parsed.get(str(key))


def _is_numeric(value: object) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    try:
        float(str(value).strip())
        return True
    except ValueError:
        return False
