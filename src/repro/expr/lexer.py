"""Tokenizer for the shared expression language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError


class TokenType(enum.Enum):
    NUMBER = "NUMBER"
    STRING = "STRING"
    IDENTIFIER = "IDENTIFIER"
    KEYWORD = "KEYWORD"
    OPERATOR = "OPERATOR"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    DOT = "DOT"
    EOF = "EOF"


KEYWORDS = frozenset(
    {"AND", "OR", "NOT", "TRUE", "FALSE", "NULL", "IN", "IS", "LIKE", "BETWEEN"}
)

# Multi-character operators must be listed before their prefixes.
_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    type: TokenType
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, @{self.position})"


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens, ending with an EOF token.

    Raises :class:`repro.errors.LexError` on characters outside the grammar
    and on unterminated string literals.
    """
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, ch, i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ch, i))
            i += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ch, i))
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            i = _lex_number(source, i, tokens)
            continue
        if ch == ".":
            tokens.append(Token(TokenType.DOT, ch, i))
            i += 1
            continue
        if ch in ("'", '"'):
            i = _lex_string(source, i, tokens)
            continue
        if ch.isalpha() or ch == "_":
            i = _lex_word(source, i, tokens)
            continue
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                # Normalize the SQL-style "<>" inequality to "!=".
                value = "!=" if op == "<>" else op
                tokens.append(Token(TokenType.OPERATOR, value, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _lex_number(source: str, start: int, tokens: list[Token]) -> int:
    i = start
    n = len(source)
    seen_dot = False
    while i < n and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
        # A dot only belongs to the number when followed by a digit; otherwise
        # it is a path separator (e.g. ``Form1.Field`` never starts a float).
        if source[i] == ".":
            if i + 1 >= n or not source[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    # Scientific notation: e/E, optional sign, at least one digit.
    if i < n and source[i] in "eE":
        j = i + 1
        if j < n and source[j] in "+-":
            j += 1
        if j < n and source[j].isdigit():
            while j < n and source[j].isdigit():
                j += 1
            i = j
    tokens.append(Token(TokenType.NUMBER, source[start:i], start))
    return i


def _lex_string(source: str, start: int, tokens: list[Token]) -> int:
    quote = source[start]
    i = start + 1
    n = len(source)
    parts: list[str] = []
    while i < n:
        ch = source[i]
        if ch == quote:
            # Doubled quote is an escaped quote character.
            if i + 1 < n and source[i + 1] == quote:
                parts.append(quote)
                i += 2
                continue
            tokens.append(Token(TokenType.STRING, "".join(parts), start))
            return i + 1
        parts.append(ch)
        i += 1
    raise LexError("unterminated string literal", start)


def _lex_word(source: str, start: int, tokens: list[Token]) -> int:
    i = start
    n = len(source)
    while i < n and (source[i].isalnum() or source[i] == "_"):
        i += 1
    word = source[start:i]
    if word.upper() in KEYWORDS:
        tokens.append(Token(TokenType.KEYWORD, word.upper(), start))
    else:
        tokens.append(Token(TokenType.IDENTIFIER, word, start))
    return i
