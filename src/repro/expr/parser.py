"""Recursive-descent parser for the shared expression language.

Grammar (precedence low to high)::

    expression := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | comparison
    comparison := additive (comp_op additive
                            | [NOT] IN '(' expr (',' expr)* ')'
                            | IS [NOT] NULL
                            | [NOT] BETWEEN additive AND additive
                            | [NOT] LIKE additive)?
    additive   := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary      := '-' unary | primary
    primary    := NUMBER | STRING | TRUE | FALSE | NULL
                | identifier ['(' args ')']     -- function call
                | '(' expression ')'
    identifier := IDENT ('.' IDENT)*

``BETWEEN a AND b`` desugars to ``(x >= a AND x <= b)``; ``NOT LIKE`` and
``NOT BETWEEN`` desugar through :class:`~repro.expr.ast.UnaryOp`.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.expr.ast import (
    BinaryOp,
    Expression,
    FunctionCall,
    Identifier,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.expr.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})


def parse(source: str) -> Expression:
    """Parse ``source`` into an expression AST.

    Raises :class:`repro.errors.ParseError` (or ``LexError``) on malformed
    input.  The result round-trips: ``parse(e.to_source()) == e``.
    """
    return _Parser(tokenize(source)).parse()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self._current
        if token.type is not token_type or (value is not None and token.value != value):
            wanted = value or token_type.name
            raise ParseError(
                f"expected {wanted}, found {token.value!r}", token.position
            )
        return self._advance()

    def _match_keyword(self, *keywords: str) -> Token | None:
        token = self._current
        if token.type is TokenType.KEYWORD and token.value in keywords:
            return self._advance()
        return None

    def _match_operator(self, *ops: str) -> Token | None:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value in ops:
            return self._advance()
        return None

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Expression:
        expr = self._or_expr()
        token = self._current
        if token.type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input {token.value!r}", token.position)
        return expr

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self._match_keyword("OR"):
            left = BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self._match_keyword("AND"):
            left = BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self._match_keyword("NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        token = self._current
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            self._advance()
            return BinaryOp(token.value, left, self._additive())
        if token.type is TokenType.KEYWORD:
            if token.value == "IN":
                self._advance()
                return self._in_list(left, negated=False)
            if token.value == "IS":
                self._advance()
                negated = self._match_keyword("NOT") is not None
                self._expect(TokenType.KEYWORD, "NULL")
                return IsNull(left, negated=negated)
            if token.value == "LIKE":
                self._advance()
                return BinaryOp("LIKE", left, self._additive())
            if token.value == "BETWEEN":
                self._advance()
                return self._between(left, negated=False)
            if token.value == "NOT":
                # "x NOT IN (...)", "x NOT LIKE y", "x NOT BETWEEN a AND b"
                self._advance()
                if self._match_keyword("IN"):
                    return self._in_list(left, negated=True)
                if self._match_keyword("LIKE"):
                    return UnaryOp("NOT", BinaryOp("LIKE", left, self._additive()))
                if self._match_keyword("BETWEEN"):
                    return self._between(left, negated=True)
                raise ParseError(
                    "expected IN, LIKE, or BETWEEN after NOT", self._current.position
                )
        return left

    def _in_list(self, operand: Expression, negated: bool) -> Expression:
        self._expect(TokenType.LPAREN)
        items = [self._or_expr()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            items.append(self._or_expr())
        self._expect(TokenType.RPAREN)
        return InList(operand, tuple(items), negated=negated)

    def _between(self, operand: Expression, negated: bool) -> Expression:
        low = self._additive()
        self._expect(TokenType.KEYWORD, "AND")
        high = self._additive()
        test = BinaryOp("AND", BinaryOp(">=", operand, low), BinaryOp("<=", operand, high))
        return UnaryOp("NOT", test) if negated else test

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self._match_operator("+", "-")
            if token is None:
                return left
            left = BinaryOp(token.value, left, self._multiplicative())

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self._match_operator("*", "/", "%")
            if token is None:
                return left
            left = BinaryOp(token.value, left, self._unary())

    def _unary(self) -> Expression:
        if self._match_operator("-"):
            operand = self._unary()
            # Fold "-<number>" into a negative literal so ASTs round-trip:
            # Literal(-1).to_source() == "-1" must reparse to Literal(-1).
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                if not isinstance(operand.value, bool):
                    return Literal(-operand.value)
            return UnaryOp("-", operand)
        return self._primary()

    def _primary(self) -> Expression:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            is_float = "." in text or "e" in text or "E" in text
            value: object = float(text) if is_float else int(text)
            return Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.KEYWORD:
            if token.value == "TRUE":
                self._advance()
                return Literal(True)
            if token.value == "FALSE":
                self._advance()
                return Literal(False)
            if token.value == "NULL":
                self._advance()
                return Literal(None)
            raise ParseError(f"unexpected keyword {token.value}", token.position)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._or_expr()
            self._expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.IDENTIFIER:
            return self._identifier_or_call()
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def _identifier_or_call(self) -> Expression:
        first = self._expect(TokenType.IDENTIFIER)
        path = [first.value]
        while self._current.type is TokenType.DOT:
            self._advance()
            path.append(self._expect(TokenType.IDENTIFIER).value)
        if self._current.type is TokenType.LPAREN and len(path) == 1:
            self._advance()
            args: list[Expression] = []
            if self._current.type is not TokenType.RPAREN:
                args.append(self._or_expr())
                while self._current.type is TokenType.COMMA:
                    self._advance()
                    args.append(self._or_expr())
            self._expect(TokenType.RPAREN)
            return FunctionCall(first.value.upper(), tuple(args))
        return Identifier(tuple(path))
