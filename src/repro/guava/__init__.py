"""GUAVA: GUI As View Apparatus.

The paper's first component.  A g-tree captures the structure and content
of a reporting tool's interface — one node per control, with the exact
question wording, answer options, defaults, required flags, and enablement
relationships.  The g-tree behaves like a *view*: analysts query it, and
GUAVA translates those queries through the source's design-pattern chain
down to the physical database.
"""

from repro.guava.gtree import GNode, GTree
from repro.guava.derive import derive_gtree, derive_all
from repro.guava.query import GTreeQuery
from repro.guava.source import GuavaSource
from repro.guava.translate import translate_query
from repro.guava.xmlio import gtree_from_xml, gtree_to_xml

__all__ = [
    "GNode",
    "GTree",
    "GTreeQuery",
    "GuavaSource",
    "derive_all",
    "derive_gtree",
    "gtree_from_xml",
    "gtree_to_xml",
    "translate_query",
]
