"""Automatic g-tree derivation from form definitions (Hypothesis 1).

The paper's prototype extends Visual Studio .NET so the IDE generates a
g-tree from the code that makes up a reporting tool's GUI.  Here the role
of "the code that makes up the GUI" is played by the declarative
:class:`~repro.ui.form.Form` model, and derivation is total: every control
yields a node, and every data control's database mapping comes for free
because the naive schema shares the control names.

Structure rule (paper Figure 2): the g-tree parent is the *enablement*
source when a control only becomes enabled after another is answered
("the frequency node appears as a child of the smoking node"); otherwise
it is the visual container.
"""

from __future__ import annotations

from repro.errors import DerivationError
from repro.guava.gtree import GNode, GTree
from repro.ui.controls import Control
from repro.ui.form import Form
from repro.ui.toolkit import ReportingTool
from repro.util.annotations import AnnotationLog
from repro.util.clock import Clock


def derive_gtree(
    tool: ReportingTool,
    form_name: str,
    clock: Clock | None = None,
    author: str = "guava-ide",
) -> GTree:
    """Derive the g-tree of one form.

    Raises :class:`DerivationError` if enablement re-parenting would
    create a cycle (a control enabling its own ancestor).
    """
    form = tool.form(form_name)
    nodes: dict[str, GNode] = {}
    for control in form.iter_controls():
        nodes[control.name] = _node_for(control)

    # Decide each control's g-tree parent: enablement source wins.
    containment: dict[str, str] = {}
    for control in form.iter_controls():
        for child in control.children:
            containment[child.name] = control.name
    parent: dict[str, str] = {}
    for control in form.iter_controls():
        enabler = form.enablement_parent(control)
        if enabler is not None and enabler.name != control.name:
            parent[control.name] = enabler.name
        elif control.name in containment:
            parent[control.name] = containment[control.name]
        else:
            parent[control.name] = form.name  # direct child of the form root

    _check_acyclic(parent, form)

    root = GNode(
        name=form.name,
        control_type="Form",
        question=form.title,
        is_form=True,
    )
    all_nodes = {form.name: root, **nodes}
    # Attach children in the form's visual (pre-order) sequence so the
    # g-tree is deterministic and mirrors the screen layout.
    for control in form.iter_controls():
        all_nodes[parent[control.name]].children.append(nodes[control.name])

    log = AnnotationLog(clock) if clock is not None else AnnotationLog()
    tree = GTree(tool.name, tool.version, root, annotations=log)
    tree.annotate(
        author,
        "derived g-tree",
        f"generated from {tool.name} v{tool.version} form {form.name!r}",
    )
    return tree


def derive_all(
    tool: ReportingTool, clock: Clock | None = None, author: str = "guava-ide"
) -> dict[str, GTree]:
    """Derive g-trees for every form of a tool."""
    return {
        form.name: derive_gtree(tool, form.name, clock=clock, author=author)
        for form in tool.forms
    }


def _node_for(control: Control) -> GNode:
    return GNode(
        name=control.name,
        control_type=type(control).__name__,
        question=control.question,
        options=control.options,
        default=control.default,
        required=control.required,
        allows_free_text=control.allows_free_text,
        data_type=control.data_type,
        enablement=control.enabled_when,
    )


def _check_acyclic(parent: dict[str, str], form: Form) -> None:
    for start in parent:
        seen = {start}
        current = parent.get(start)
        while current is not None and current != form.name:
            if current in seen:
                raise DerivationError(
                    f"enablement re-parenting creates a cycle at {current!r}"
                )
            seen.add(current)
            current = parent.get(current)
