"""G-trees: the GUI-as-view data structure (paper Figures 2 and 3).

"Each node in a g-tree captures context information about a control on the
interface, including the exact wording of a control's question and answer
options, whether there is a default value, and whether the control is
required to be filled in."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import GTreeError
from repro.expr.ast import Expression
from repro.relational.types import DataType
from repro.util.annotations import Annotated


@dataclass
class GNode:
    """One node: a control (or the form itself) with its full context."""

    name: str
    control_type: str
    question: str = ""
    options: tuple[tuple[object, str], ...] = ()
    default: object = None
    required: bool = False
    allows_free_text: bool = False
    data_type: DataType | None = None
    enablement: Expression | None = None
    is_form: bool = False
    children: list["GNode"] = field(default_factory=list)

    @property
    def stores_data(self) -> bool:
        """True when the node maps to a naive-schema column."""
        return self.data_type is not None

    @property
    def has_unselected_state(self) -> bool:
        """Choice controls with no default start unanswered (Figure 3b).

        "The smoking node has an option for unselected because the radio
        list starts out with no option selected."
        """
        return bool(self.options) and self.default is None

    def iter_tree(self) -> Iterator["GNode"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def context_summary(self) -> str:
        """Render the node's context like the paper's Figure 3 boxes."""
        lines = [f"Node: {self.name} ({self.control_type})"]
        if self.question:
            lines.append(f"  Question: {self.question!r}")
        if self.options:
            rendered = ", ".join(str(value) for value, _ in self.options)
            lines.append(f"  Options: {rendered}")
            if self.has_unselected_state:
                lines.append("  Starts unselected (stored NULL until answered)")
        if self.allows_free_text:
            lines.append("  Accepts free text")
        if self.default is not None:
            lines.append(f"  Default: {self.default!r}")
        if self.required:
            lines.append("  Required")
        if self.enablement is not None:
            lines.append(f"  Enabled when: {self.enablement.to_source()}")
        if self.data_type is not None:
            lines.append(f"  Stores: {self.data_type.value}")
        return "\n".join(lines)


@dataclass
class GTree(Annotated):
    """The g-tree of one form of one reporting tool.

    The root node represents the form itself (entity classifiers must
    reference it), and there is a node for every control — including
    layout-only ones like group boxes.
    """

    tool_name: str
    tool_version: str
    root: GNode

    def __post_init__(self) -> None:
        if not self.root.is_form:
            raise GTreeError("g-tree root must be a form node")
        names = [node.name for node in self.root.iter_tree()]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise GTreeError(f"duplicate node names: {sorted(duplicates)}")
        self._by_name = {node.name: node for node in self.root.iter_tree()}
        self._parent: dict[str, str | None] = {self.root.name: None}
        for node in self.root.iter_tree():
            for child in node.children:
                self._parent[child.name] = node.name

    # -- lookup ----------------------------------------------------------------

    @property
    def form_name(self) -> str:
        return self.root.name

    def node(self, name: str) -> GNode:
        """Look up a node by name."""
        if name not in self._by_name:
            raise GTreeError(f"g-tree {self.form_name} has no node {name!r}")
        return self._by_name[name]

    def has_node(self, name: str) -> bool:
        return name in self._by_name

    def parent_of(self, name: str) -> GNode | None:
        """The g-tree parent (containment or enablement) of a node."""
        parent_name = self._parent.get(name)
        if parent_name is None:
            return None
        return self._by_name[parent_name]

    def path_of(self, name: str) -> tuple[str, ...]:
        """Root-to-node name path."""
        path: list[str] = []
        current: str | None = name
        while current is not None:
            path.append(current)
            parent = self.parent_of(current)
            current = parent.name if parent else None
        if path[-1] != self.root.name:
            raise GTreeError(f"node {name!r} is not attached to the root")
        return tuple(reversed(path))

    # -- traversal ---------------------------------------------------------------

    def iter_nodes(self) -> Iterator[GNode]:
        """Every node, pre-order from the root."""
        return self.root.iter_tree()

    def data_nodes(self) -> list[GNode]:
        """Nodes that store data (map to naive-schema columns)."""
        return [node for node in self.iter_nodes() if node.stores_data]

    def node_count(self) -> int:
        return len(self._by_name)

    # -- display -------------------------------------------------------------------

    def render(self) -> str:
        """ASCII rendering of the tree (paper Figure 2 style)."""
        lines: list[str] = []

        def visit(node: GNode, depth: int) -> None:
            marker = "*" if node.stores_data else " "
            lines.append(f"{'  ' * depth}{marker} {node.name} [{node.control_type}]")
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"GTree({self.tool_name} v{self.tool_version}, form={self.form_name!r}, "
            f"{self.node_count()} nodes)"
        )
