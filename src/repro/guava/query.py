"""Queries against g-trees.

"The g-tree behaves like a view; when analysts write classifiers, they
express queries against the g-trees."  A :class:`GTreeQuery` names the
data nodes of interest, optionally filters with a condition over node
names, and optionally derives computed values — everything an analyst
needs without ever seeing the physical schema.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GuavaError
from repro.expr.analysis import referenced_identifiers
from repro.expr.ast import Expression
from repro.expr.parser import parse
from repro.guava.gtree import GTree


@dataclass(frozen=True)
class GTreeQuery:
    """An immutable query over one g-tree.

    ``nodes`` — data nodes whose values to return (empty = all data nodes);
    ``condition`` — boolean filter over node names;
    ``derivations`` — (name, arithmetic expression) computed columns.
    The record key is always included so results stay joinable.
    """

    gtree: GTree
    nodes: tuple[str, ...] = ()
    condition: Expression | None = None
    derivations: tuple[tuple[str, Expression], ...] = ()

    def __post_init__(self) -> None:
        for name in self.nodes:
            node = self.gtree.node(name)  # raises on unknown
            if not node.stores_data:
                raise GuavaError(
                    f"node {name!r} stores no data and cannot be selected"
                )
        for expression in self._expressions():
            for identifier in referenced_identifiers(expression):
                leaf = identifier.split(".")[-1]
                if not self.gtree.has_node(leaf):
                    raise GuavaError(
                        f"query references unknown g-tree node {identifier!r}"
                    )
                if not self.gtree.node(leaf).stores_data:
                    raise GuavaError(
                        f"node {identifier!r} stores no data (a "
                        f"{self.gtree.node(leaf).control_type}) and cannot "
                        "appear in a condition"
                    )

    def _expressions(self) -> list[Expression]:
        found = [expr for _, expr in self.derivations]
        if self.condition is not None:
            found.append(self.condition)
        return found

    # -- builder API -------------------------------------------------------------

    def select(self, *names: str) -> "GTreeQuery":
        """Return a query selecting the named data nodes."""
        return GTreeQuery(self.gtree, self.nodes + names, self.condition, self.derivations)

    def where(self, condition: str | Expression) -> "GTreeQuery":
        """Add a filter; multiple calls AND together."""
        expr = parse(condition) if isinstance(condition, str) else condition
        if self.condition is not None:
            from repro.expr.ast import BinaryOp

            expr = BinaryOp("AND", self.condition, expr)
        return GTreeQuery(self.gtree, self.nodes, expr, self.derivations)

    def derive(self, name: str, expression: str | Expression) -> "GTreeQuery":
        """Add a computed column."""
        expr = parse(expression) if isinstance(expression, str) else expression
        return GTreeQuery(
            self.gtree, self.nodes, self.condition, self.derivations + ((name, expr),)
        )

    # -- introspection ---------------------------------------------------------------

    def referenced_nodes(self) -> set[str]:
        """All g-tree node names this query touches."""
        names = set(self.nodes)
        for expression in self._expressions():
            for identifier in referenced_identifiers(expression):
                names.add(identifier.split(".")[-1])
        return names

    def selected_nodes(self) -> tuple[str, ...]:
        """The output node columns (all data nodes when none were named)."""
        if self.nodes:
            return self.nodes
        return tuple(node.name for node in self.gtree.data_nodes())
