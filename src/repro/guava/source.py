"""A GUAVA source: reporting tool + pattern chain + physical database.

This is one "contributor" box of the paper's Figure 1: the tool defines
the UI, the chain defines how screens land in the database, and GUAVA
exposes it all through g-trees.
"""

from __future__ import annotations

from repro.errors import GuavaError
from repro.guava.derive import derive_all
from repro.guava.gtree import GTree
from repro.guava.query import GTreeQuery
from repro.guava.translate import translate_query
from repro.patterns.chain import PatternChain
from repro.relational.database import Database
from repro.relational.query import optimize
from repro.relational.sql import to_sql
from repro.ui.session import DataEntrySession
from repro.ui.toolkit import ReportingTool
from repro.util.clock import Clock

Row = dict[str, object]


class GuavaSource:
    """One contributor data source, fully wired.

    >>> source = GuavaSource("clinic_a", tool, chain)
    >>> session = source.session()                  # clinicians enter data
    >>> rows = source.query("procedure").where("hypoxia = TRUE").run()
    """

    def __init__(
        self,
        name: str,
        tool: ReportingTool,
        chain: PatternChain,
        db: Database | None = None,
        clock: Clock | None = None,
    ):
        missing = [
            form for form in tool.form_names() if form not in chain.naive_schemas
        ]
        if missing:
            raise GuavaError(
                f"pattern chain does not cover form(s) {missing} of {tool.name}"
            )
        self.name = name
        self.tool = tool
        self.chain = chain
        self.db = db or Database(name)
        chain.deploy(self.db)
        self.gtrees: dict[str, GTree] = derive_all(tool, clock=clock)

    # -- data entry -------------------------------------------------------------

    def session(self, first_record_id: int = 1) -> DataEntrySession:
        """A data-entry session writing through the pattern chain."""
        return DataEntrySession(
            self.tool, writer=self.chain.writer(self.db), first_record_id=first_record_id
        )

    # -- querying ----------------------------------------------------------------

    def gtree(self, form_name: str) -> GTree:
        """The g-tree of one form."""
        if form_name not in self.gtrees:
            raise GuavaError(f"source {self.name} has no form {form_name!r}")
        return self.gtrees[form_name]

    def query(self, form_name: str) -> "BoundQuery":
        """Start a query against one form's g-tree."""
        return BoundQuery(self, GTreeQuery(self.gtree(form_name)))

    def execute(self, query: GTreeQuery) -> list[Row]:
        """Translate and run a g-tree query against the physical database."""
        plan = optimize(translate_query(query, self.chain))
        return plan.execute(self.db)

    def explain(self, query: GTreeQuery) -> str:
        """The SQL the translated query corresponds to (documentation)."""
        return to_sql(translate_query(query, self.chain))

    def __repr__(self) -> str:
        return f"GuavaSource({self.name!r}, tool={self.tool.name} v{self.tool.version})"


class BoundQuery:
    """A g-tree query bound to its source, with a fluent interface."""

    def __init__(self, source: GuavaSource, query: GTreeQuery):
        self._source = source
        self._query = query

    def select(self, *names: str) -> "BoundQuery":
        return BoundQuery(self._source, self._query.select(*names))

    def where(self, condition) -> "BoundQuery":
        return BoundQuery(self._source, self._query.where(condition))

    def derive(self, name: str, expression) -> "BoundQuery":
        return BoundQuery(self._source, self._query.derive(name, expression))

    @property
    def query(self) -> GTreeQuery:
        return self._query

    def run(self) -> list[Row]:
        return self._source.execute(self._query)

    def sql(self) -> str:
        return self._source.explain(self._query)
