"""A GUAVA source: reporting tool + pattern chain + physical database.

This is one "contributor" box of the paper's Figure 1: the tool defines
the UI, the chain defines how screens land in the database, and GUAVA
exposes it all through g-trees.

The source also keeps a *change feed* for incremental consumers: every
record saved through :meth:`GuavaSource.session` (and every out-of-band
mutation registered via :meth:`GuavaSource.track_change`) is logged
against the database's monotone data version, so a warehouse refresh can
ask "which records changed since version v?" and reclassify only those.
Mutations that bypass both paths are detected by comparing the database
version against the last accounted write, and answered with "unknown" —
the caller then falls back to a full rebuild instead of trusting a stale
feed.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import GuavaError
from repro.expr.ast import Identifier, InList, Literal
from repro.guava.derive import derive_all
from repro.guava.gtree import GTree
from repro.guava.query import GTreeQuery
from repro.guava.translate import translate_query
from repro.patterns.chain import PatternChain
from repro.relational.algebra import Select
from repro.relational.database import Database
from repro.relational.query import optimize, prepare_stream_plan
from repro.relational.snapshot import database_version
from repro.relational.sql import to_sql
from repro.ui.form import RECORD_ID
from repro.ui.session import DataEntrySession
from repro.ui.toolkit import ReportingTool
from repro.util.clock import Clock

Row = dict[str, object]

#: Change-feed entries kept before the oldest half is pruned; pruned spans
#: can no longer be enumerated and force a full rebuild.
CHANGE_LOG_LIMIT = 100_000


class ChangeFeedState:
    """The change feed's durable core: entries, floor, accounted version.

    Split out of :class:`GuavaSource` so the storage layer can persist it
    (``to_doc``/``from_doc`` round-trip through snapshots) and replay
    logged ``note`` calls during recovery with *identical* semantics —
    including the pruning policy, which moves the enumeration floor and
    therefore changes which refreshes fall back to full rebuilds.
    """

    __slots__ = ("log", "floor", "accounted")

    def __init__(self, accounted: int = 0):
        #: (data version after the write, form name, record id) entries.
        #: Forms have independent record-id spaces, so entries carry both.
        self.log: list[tuple[int, str | None, int]] = []
        #: Versions at or below the floor cannot be enumerated (pruned log
        #: or an unattributed change).
        self.floor = 0
        self.accounted = accounted

    def note(self, version: int, record_id: int | None, form: str | None) -> None:
        """Account one mutation at ``version`` (None record id = unknown)."""
        self.accounted = version
        if record_id is None:
            # Unattributable change: everything before it is unenumerable.
            self.floor = version
            self.log.clear()
            return
        self.log.append((version, form, record_id))
        if len(self.log) > CHANGE_LOG_LIMIT:
            half = len(self.log) // 2
            self.floor = self.log[half - 1][0]
            del self.log[:half]

    def to_doc(self) -> dict:
        return {
            "floor": self.floor,
            "accounted": self.accounted,
            "log": [[version, form, rid] for version, form, rid in self.log],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ChangeFeedState":
        state = cls(int(doc.get("accounted", 0)))
        state.floor = int(doc.get("floor", 0))
        state.log = [
            (int(version), form, int(rid))
            for version, form, rid in doc.get("log", [])
        ]
        return state


class GuavaSource:
    """One contributor data source, fully wired.

    >>> source = GuavaSource("clinic_a", tool, chain)
    >>> session = source.session()                  # clinicians enter data
    >>> rows = source.query("procedure").where("hypoxia = TRUE").run()
    """

    def __init__(
        self,
        name: str,
        tool: ReportingTool,
        chain: PatternChain,
        db: Database | None = None,
        clock: Clock | None = None,
    ):
        missing = [
            form for form in tool.form_names() if form not in chain.naive_schemas
        ]
        if missing:
            raise GuavaError(
                f"pattern chain does not cover form(s) {missing} of {tool.name}"
            )
        self.name = name
        self.tool = tool
        self.chain = chain
        self.db = db or Database(name)
        chain.deploy(self.db)
        self.gtrees: dict[str, GTree] = derive_all(tool, clock=clock)
        #: The durable change-feed state; a DurableStore may swap in a
        #: recovered instance via :meth:`adopt_feed`.
        self.feed = ChangeFeedState(database_version(self.db))
        #: Durability hook: called as ``(version, record_id, form)`` after
        #: every feed note so the storage layer can mirror it into the WAL.
        self.on_feed_change: (
            "Callable[[int, int | None, str | None], None] | None"
        ) = None

    # -- data entry -------------------------------------------------------------

    def session(self, first_record_id: int = 1) -> DataEntrySession:
        """A data-entry session writing through the pattern chain.

        Writes are mirrored into the source's change feed so incremental
        consumers can enumerate exactly which records a refresh must touch.
        """
        writer = self.chain.writer(self.db)

        def tracked(form_name: str, naive_row: dict[str, object]) -> None:
            writer(form_name, naive_row)
            self._note_change(naive_row.get(RECORD_ID), form_name)

        return DataEntrySession(
            self.tool, writer=tracked, first_record_id=first_record_id
        )

    # -- change tracking ---------------------------------------------------------

    def data_version(self) -> int:
        """The physical database's monotone data version."""
        return database_version(self.db)

    def track_change(
        self, record_id: int | None = None, form: str | None = None
    ) -> None:
        """Register an out-of-band mutation (call *after* mutating the db).

        ``record_id`` names the logical record whose physical rows changed
        (``form`` scopes it when the tool has several forms); ``None`` means
        "something changed but the record is unknown", which keeps the feed
        honest but forces the next incremental consumer into a full rebuild.
        """
        self._note_change(record_id, form)

    def changed_record_ids(self, since: int, form: str | None = None) -> set[int] | None:
        """Record ids changed after data version ``since``.

        ``form`` restricts the answer to one form's record-id space (entries
        logged without a form always match, conservatively).  Returns
        ``None`` when the span cannot be enumerated: untracked mutations
        happened (the database version drifted from the feed), ``since``
        predates the pruned log, or ``since`` comes from another lineage
        entirely.  Callers must treat ``None`` as "rebuild fully".
        """
        current = database_version(self.db)
        feed = self.feed
        if current != feed.accounted:
            return None  # mutations bypassed the feed
        if since > current or since < feed.floor:
            return None  # foreign or pruned lineage
        return {
            rid
            for version, logged_form, rid in feed.log
            if version > since
            and (form is None or logged_form is None or logged_form == form)
        }

    def adopt_feed(self, state: ChangeFeedState) -> None:
        """Share a (recovered) feed state object with the storage layer.

        After adoption the source and the DurableStore hold the *same*
        object, so checkpoints see every subsequent note without a copy.
        """
        self.feed = state

    def _note_change(self, record_id: object, form: str | None = None) -> None:
        version = database_version(self.db)
        rid = record_id if isinstance(record_id, int) else None
        self.feed.note(version, rid, form)
        hook = self.on_feed_change
        if hook is not None:
            hook(version, rid, form)

    # -- querying ----------------------------------------------------------------

    def gtree(self, form_name: str) -> GTree:
        """The g-tree of one form."""
        if form_name not in self.gtrees:
            raise GuavaError(f"source {self.name} has no form {form_name!r}")
        return self.gtrees[form_name]

    def query(self, form_name: str) -> "BoundQuery":
        """Start a query against one form's g-tree."""
        return BoundQuery(self, GTreeQuery(self.gtree(form_name)))

    def execute(
        self, query: GTreeQuery, record_ids: Iterable[int] | None = None
    ) -> list[Row]:
        """Translate and run a g-tree query against the physical database.

        ``record_ids`` restricts the result to those logical records — the
        re-extraction path incremental materialization uses for deltas.
        The restriction composes at the relational level (``record_id`` is
        the reserved key column every translation emits, not a g-tree node,
        so it cannot appear in the g-tree query itself).
        """
        plan = translate_query(query, self.chain)
        if record_ids is not None:
            membership = InList(
                Identifier.of(RECORD_ID),
                tuple(Literal(rid) for rid in sorted(set(record_ids))),
            )
            # Record-scoped extraction is the hot delta path of incremental
            # materialization: let the optimizer push the membership test
            # down to the base tables and build the record-id index it
            # needs, so a small delta costs proportionally, not a full
            # re-extraction.
            plan = prepare_stream_plan(Select(plan, membership), self.db)
            return plan.execute(self.db)
        # Passing the database unlocks index lowering, the vectorize pass,
        # and the plan cache — pattern-chain pulls re-translate structurally
        # identical plans, so repeat executions skip lowering entirely.
        return optimize(plan, self.db).execute(self.db)

    def explain(self, query: GTreeQuery) -> str:
        """The SQL the translated query corresponds to (documentation)."""
        return to_sql(translate_query(query, self.chain))

    def __repr__(self) -> str:
        return f"GuavaSource({self.name!r}, tool={self.tool.name} v{self.tool.version})"


class BoundQuery:
    """A g-tree query bound to its source, with a fluent interface."""

    def __init__(self, source: GuavaSource, query: GTreeQuery):
        self._source = source
        self._query = query

    def select(self, *names: str) -> "BoundQuery":
        return BoundQuery(self._source, self._query.select(*names))

    def where(self, condition) -> "BoundQuery":
        return BoundQuery(self._source, self._query.where(condition))

    def derive(self, name: str, expression) -> "BoundQuery":
        return BoundQuery(self._source, self._query.derive(name, expression))

    @property
    def query(self) -> GTreeQuery:
        return self._query

    def run(self) -> list[Row]:
        return self._source.execute(self._query)

    def sql(self) -> str:
        return self._source.explain(self._query)
