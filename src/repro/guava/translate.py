"""Translation of g-tree queries into relational algebra (paper Figure 6).

"We can translate queries specified against the g-tree into predefined SQL
queries and ETL components that depend on the database patterns used."

The translation is compositional: the pattern chain reconstructs the naive
relation; the query's condition/derivations/selection layer on top.  The
result is an ordinary :class:`~repro.relational.algebra.Plan`, renderable
to SQL with :func:`repro.relational.sql.to_sql`.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.guava.query import GTreeQuery
from repro.patterns.chain import PatternChain
from repro.relational.algebra import Compute, Plan, Project, Select
from repro.ui.form import RECORD_ID


def translate_query(query: GTreeQuery, chain: PatternChain) -> Plan:
    """Lower ``query`` to a physical plan through ``chain``.

    Output columns: ``record_id``, the selected node columns, then the
    derived columns, in that order.
    """
    form_name = query.gtree.form_name
    if form_name not in chain.naive_schemas:
        raise TranslationError(
            f"pattern chain has no mapping for form {form_name!r}"
        )
    plan: Plan = chain.plan_for(form_name)
    if query.condition is not None:
        plan = Select(plan, query.condition)
    if query.derivations:
        plan = Compute(plan, query.derivations)
    columns = (RECORD_ID,) + query.selected_nodes() + tuple(
        name for name, _ in query.derivations
    )
    return Project(plan, columns)
