"""XML serialization of g-trees.

"The g-tree is stored as an XML Schema, which mimics the hierarchical
nature of the form interface."  Round-trips: ``gtree_from_xml(
gtree_to_xml(t))`` equals ``t`` structurally (annotations are provenance,
not structure, and are serialized separately if needed).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from datetime import date

from repro.errors import GTreeError
from repro.expr.parser import parse
from repro.guava.gtree import GNode, GTree
from repro.relational.types import DataType


def gtree_to_xml(tree: GTree) -> str:
    """Serialize a g-tree to an XML string."""
    root = ET.Element(
        "gtree",
        {"tool": tree.tool_name, "version": tree.tool_version},
    )
    root.append(_node_to_element(tree.root))
    return ET.tostring(root, encoding="unicode")


def gtree_from_xml(text: str) -> GTree:
    """Parse a g-tree from XML produced by :func:`gtree_to_xml`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise GTreeError(f"invalid g-tree XML: {exc}") from exc
    if root.tag != "gtree":
        raise GTreeError(f"expected <gtree> root, found <{root.tag}>")
    node_elements = [child for child in root if child.tag == "node"]
    if len(node_elements) != 1:
        raise GTreeError("g-tree XML must contain exactly one root <node>")
    return GTree(
        tool_name=root.get("tool", ""),
        tool_version=root.get("version", ""),
        root=_element_to_node(node_elements[0]),
    )


# -- encoding ------------------------------------------------------------------


def _node_to_element(node: GNode) -> ET.Element:
    attrs = {
        "name": node.name,
        "type": node.control_type,
    }
    if node.question:
        attrs["question"] = node.question
    if node.required:
        attrs["required"] = "true"
    if node.is_form:
        attrs["form"] = "true"
    if node.allows_free_text:
        attrs["free_text"] = "true"
    if node.data_type is not None:
        attrs["stores"] = node.data_type.value
    if node.enablement is not None:
        attrs["enabled_when"] = node.enablement.to_source()
    element = ET.Element("node", attrs)
    if node.default is not None:
        default = ET.SubElement(element, "default")
        _write_value(default, node.default)
    for value, label in node.options:
        option = ET.SubElement(element, "option")
        option.set("label", label)
        _write_value(option, value)
    for child in node.children:
        element.append(_node_to_element(child))
    return element


def _element_to_node(element: ET.Element) -> GNode:
    name = element.get("name")
    if not name:
        raise GTreeError("<node> missing name attribute")
    default = None
    options: list[tuple[object, str]] = []
    children: list[GNode] = []
    for child in element:
        if child.tag == "default":
            default = _read_value(child)
        elif child.tag == "option":
            options.append((_read_value(child), child.get("label", "")))
        elif child.tag == "node":
            children.append(_element_to_node(child))
        else:
            raise GTreeError(f"unexpected element <{child.tag}> in g-tree XML")
    stores = element.get("stores")
    enablement_text = element.get("enabled_when")
    return GNode(
        name=name,
        control_type=element.get("type", ""),
        question=element.get("question", ""),
        options=tuple(options),
        default=default,
        required=element.get("required") == "true",
        allows_free_text=element.get("free_text") == "true",
        data_type=DataType(stores) if stores else None,
        enablement=parse(enablement_text) if enablement_text else None,
        is_form=element.get("form") == "true",
        children=children,
    )


def _write_value(element: ET.Element, value: object) -> None:
    if isinstance(value, bool):
        element.set("kind", "boolean")
        element.text = "true" if value else "false"
    elif isinstance(value, int):
        element.set("kind", "integer")
        element.text = str(value)
    elif isinstance(value, float):
        element.set("kind", "float")
        element.text = repr(value)
    elif isinstance(value, date):
        element.set("kind", "date")
        element.text = value.isoformat()
    else:
        element.set("kind", "text")
        element.text = str(value)


def _read_value(element: ET.Element) -> object:
    kind = element.get("kind", "text")
    text = element.text or ""
    if kind == "boolean":
        return text == "true"
    if kind == "integer":
        return int(text)
    if kind == "float":
        return float(text)
    if kind == "date":
        return date.fromisoformat(text)
    return text
