"""MultiClass: per-study integration and classification.

The paper's second component.  Analysts describe what they study in a
*study schema* (a has-a hierarchy of entities whose attributes each carry
*multiple domains*), then write *classifiers* — lists of declarative
``A <- B`` rules over g-tree nodes — to map contributor data into those
domains, differently for different studies.  Entity classifiers identify
the objects to bring forward.  Studies bundle schema elements, filters,
and classifier choices; they compile to ETL workflows and their artifacts
are annotated so decisions can be audited and reused.
"""

from repro.multiclass.domain import Domain
from repro.multiclass.study_schema import Attribute, Entity, StudySchema
from repro.multiclass.classifier import Classifier, EntityClassifier, Rule
from repro.multiclass.cleaning import (
    CleaningRule,
    Quarantine,
    QuarantinedRow,
    parse_cleaning_rule,
)
from repro.multiclass.language import (
    format_classifier,
    format_entity_classifier,
    parse_classifier,
    parse_entity_classifier,
)
from repro.multiclass.study import Study, StudyResult
from repro.multiclass.registry import Registry
from repro.multiclass.versioning import PropagationReport, propagate_classifiers
from repro.multiclass.datalog import classifier_to_datalog, study_to_datalog
from repro.multiclass.lint import CoverageGap, LintReport, lint_all, lint_classifier
from repro.multiclass.suggest import Suggestion, suggest_all, suggest_classifiers
from repro.multiclass.xquery import study_to_xquery

__all__ = [
    "Attribute",
    "Classifier",
    "CleaningRule",
    "CoverageGap",
    "LintReport",
    "lint_all",
    "lint_classifier",
    "Quarantine",
    "QuarantinedRow",
    "parse_cleaning_rule",
    "Domain",
    "Entity",
    "EntityClassifier",
    "PropagationReport",
    "Registry",
    "Rule",
    "Study",
    "StudyResult",
    "StudySchema",
    "Suggestion",
    "classifier_to_datalog",
    "suggest_all",
    "suggest_classifiers",
    "format_classifier",
    "format_entity_classifier",
    "parse_classifier",
    "parse_entity_classifier",
    "propagate_classifiers",
    "study_to_datalog",
    "study_to_xquery",
]
