"""Classifiers: declarative ``A <- B`` rule lists (paper Figure 5).

"An analyst creates a classifier to relate nodes in a g-tree with domain
entries in a study schema.  Each classifier is a list of declarative
statements of the form A <- B, where A is an arithmetic calculation and B
is a Boolean condition.  Both clauses use nodes in a g-tree as arguments."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ClassifierError
from repro.expr.analysis import is_union_of_conjunctions, referenced_identifiers
from repro.expr.ast import Expression, Literal
from repro.expr.compile import compile_expression, compile_predicate
from repro.expr.parser import parse
from repro.guava.gtree import GTree
from repro.multiclass.domain import Domain
from repro.util.annotations import Annotated

Environment = dict[str, object]


@dataclass(frozen=True)
class Rule:
    """One statement ``output <- guard``."""

    output: Expression
    guard: Expression

    @classmethod
    def of(cls, output: str | Expression, guard: str | Expression) -> "Rule":
        return cls(
            parse(output) if isinstance(output, str) else output,
            parse(guard) if isinstance(guard, str) else guard,
        )

    def to_source(self) -> str:
        return f"{self.output.to_source()} <- {self.guard.to_source()}"


@dataclass
class Classifier(Annotated):
    """Maps g-tree data into one domain of one study-schema attribute.

    Rules are tried top to bottom; the first satisfied guard produces the
    value.  No satisfied guard (or a NULL guard, e.g. the question was
    never answered) leaves the record *unclassified* (NULL), never a
    silently wrong category.
    """

    name: str
    target_entity: str
    target_attribute: str
    target_domain: str
    rules: list[Rule] = field(default_factory=list)
    description: str = ""
    source_form: str = ""

    def __post_init__(self) -> None:
        if not self.rules:
            raise ClassifierError(f"classifier {self.name!r} has no rules")

    # -- evaluation -----------------------------------------------------------

    def classify(self, env: Environment, domain: Domain | None = None) -> object:
        """Apply the rules to one record's node values."""
        value, _ = self.explain(env, domain)
        return value

    def explain(
        self, env: Environment, domain: Domain | None = None
    ) -> tuple[object, int | None]:
        """Like :meth:`classify` but also reports which rule fired (index)."""
        # Guards and outputs compile to closures once per distinct expression
        # (memoized in repro.expr.compile), so classifying N records walks
        # each rule's AST once, not N times.
        for index, rule in enumerate(self.rules):
            if compile_predicate(rule.guard)(env):
                value = compile_expression(rule.output)(env)
                if domain is not None:
                    value = domain.check(value)
                return value, index
        return None, None

    # -- static analysis ----------------------------------------------------------

    def input_nodes(self) -> set[str]:
        """G-tree node names this classifier reads (for versioning)."""
        names: set[str] = set()
        for rule in self.rules:
            names |= referenced_identifiers(rule.guard)
            names |= referenced_identifiers(rule.output)
        return {name.split(".")[-1] for name in names}

    def validate_against(self, gtree: GTree) -> list[str]:
        """Node references absent from ``gtree`` (empty list = valid)."""
        return sorted(
            name for name in self.input_nodes() if not gtree.has_node(name)
        )

    def is_union_of_conjunctions(self) -> bool:
        """Hypothesis 3: every guard normalizes to a union of conjunctions."""
        return all(is_union_of_conjunctions(rule.guard) for rule in self.rules)

    @property
    def target(self) -> tuple[str, str, str]:
        return (self.target_entity, self.target_attribute, self.target_domain)

    def to_source(self) -> str:
        """The classifier in the analyst-facing mini-language."""
        from repro.multiclass.language import format_classifier

        return format_classifier(self)

    def __repr__(self) -> str:
        return (
            f"Classifier({self.name!r} -> {self.target_entity}."
            f"{self.target_attribute}:{self.target_domain}, {len(self.rules)} rules)"
        )


@dataclass
class EntityClassifier(Annotated):
    """Identifies unique objects in a g-tree to bring into the study.

    "An analyst creates an entity classifier just like any other
    classifier, except the target object of the classifier is an entity
    rather than a domain.  Also, the classifier must refer to at least one
    node in the g-tree that represents a form."
    """

    name: str
    target_entity: str
    form: str
    condition: Expression = field(default_factory=lambda: Literal(True))
    description: str = ""
    #: For child entities of the has-a tree: the g-tree node holding the
    #: parent entity's record id (e.g. the finding form's ``procedure_id``).
    #: Study output then carries ``parent_record_id`` so warehouse queries
    #: can traverse the has-a edge.
    parent_link: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.condition, str):
            self.condition = parse(self.condition)

    def admits(self, env: Environment) -> bool:
        """True when a record qualifies as an instance of the entity."""
        return compile_predicate(self.condition)(env)

    def input_nodes(self) -> set[str]:
        names = referenced_identifiers(self.condition)
        return {name.split(".")[-1] for name in names} | {self.form}

    def validate_against(self, gtree: GTree) -> list[str]:
        """Problems with this entity classifier against a g-tree."""
        problems: list[str] = []
        if self.form != gtree.form_name:
            problems.append(
                f"form node {self.form!r} is not the g-tree's form "
                f"({gtree.form_name!r})"
            )
        for name in sorted(self.input_nodes() - {self.form}):
            if not gtree.has_node(name):
                problems.append(f"unknown node {name!r}")
        if self.parent_link is not None and not gtree.has_node(self.parent_link):
            problems.append(f"unknown parent-link node {self.parent_link!r}")
        return problems

    def __repr__(self) -> str:
        return (
            f"EntityClassifier({self.name!r}: {self.form} -> "
            f"{self.target_entity} WHERE {self.condition.to_source()})"
        )
