"""Data cleaning in the classifier language (paper §6 future work).

"We want to extend the classifier language to allow data cleaning, since
analysts may also choose to discard data based on the needs of the
particular study they wish to run."

A :class:`CleaningRule` is a declarative ``DISCARD WHEN <condition>``
statement over the same g-tree nodes (pre-classification) or study columns
(post-classification) the rest of the language uses.  Discards are never
silent: each discarded record is quarantined with the rule that removed it
and the rule's documented reason, so the analyst can audit exactly what a
study excluded and why — the same provenance discipline as classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ClassifierError
from repro.expr.analysis import referenced_identifiers
from repro.expr.ast import Expression
from repro.expr.evaluator import Evaluator
from repro.expr.parser import parse

_EVALUATOR = Evaluator()

Row = dict[str, object]


@dataclass
class CleaningRule:
    """One ``DISCARD WHEN`` statement.

    ``scope`` states which vocabulary the condition speaks:

    * ``"record"`` — g-tree node values, applied per source before
      classification (e.g. discard test patients, impossible vitals);
    * ``"study"``  — classified output columns, applied after the union
      (e.g. discard records left unclassified by a required element).
    """

    name: str
    condition: Expression
    reason: str = ""
    scope: str = "record"
    #: Record-scoped rules speak one source's g-tree vocabulary; ``source``
    #: restricts the rule to that contributor (None = every source, for
    #: rules over nodes all contributors share).
    source: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.condition, str):
            self.condition = parse(self.condition)
        if self.scope not in ("record", "study"):
            raise ClassifierError(
                f"cleaning rule {self.name!r}: scope must be 'record' or 'study'"
            )
        if self.scope == "study" and self.source is not None:
            raise ClassifierError(
                f"cleaning rule {self.name!r}: study-scoped rules run after "
                "the union and cannot bind to one source"
            )

    @classmethod
    def of(
        cls,
        name: str,
        condition: str | Expression,
        reason: str = "",
        scope: str = "record",
        source: str | None = None,
    ) -> "CleaningRule":
        return cls(
            name,
            condition if isinstance(condition, Expression) else parse(condition),
            reason,
            scope,
            source,
        )

    def discards(self, row: Row) -> bool:
        """True when the row must be removed (NULL condition keeps it)."""
        return _EVALUATOR.satisfied(self.condition, row)

    def input_nodes(self) -> set[str]:
        """Referenced names (for validation and version propagation)."""
        return {
            name.split(".")[-1]
            for name in referenced_identifiers(self.condition)
        }

    def to_source(self) -> str:
        reason = f"  -- {self.reason}" if self.reason else ""
        return f"DISCARD {self.name} WHEN {self.condition.to_source()}{reason}"


@dataclass
class QuarantinedRow:
    """One discarded record with its provenance."""

    rule: str
    reason: str
    source: str
    row: Row


@dataclass
class Quarantine:
    """Everything a study run discarded, auditable per rule."""

    rows: list[QuarantinedRow] = field(default_factory=list)

    def add(self, rule: CleaningRule, source: str, row: Row) -> None:
        self.rows.append(
            QuarantinedRow(rule=rule.name, reason=rule.reason, source=source, row=dict(row))
        )

    def by_rule(self, name: str) -> list[QuarantinedRow]:
        return [q for q in self.rows if q.rule == name]

    def counts(self) -> dict[str, int]:
        """Discard count per rule name."""
        out: dict[str, int] = {}
        for quarantined in self.rows:
            out[quarantined.rule] = out.get(quarantined.rule, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.rows)


def apply_rules(
    rules: list[CleaningRule],
    rows: list[Row],
    source: str,
    scope: str,
    quarantine: Quarantine,
) -> list[Row]:
    """Filter ``rows`` through every rule of ``scope``; quarantine discards."""
    active = [
        rule
        for rule in rules
        if rule.scope == scope and rule.source in (None, source)
    ]
    if not active:
        return rows
    kept: list[Row] = []
    for row in rows:
        discarded = False
        for rule in active:
            if rule.discards(row):
                quarantine.add(rule, source, row)
                discarded = True
                break
        if not discarded:
            kept.append(row)
    return kept


def parse_cleaning_rule(text: str) -> CleaningRule:
    """Parse the mini-language form::

        DISCARD <name> WHEN <condition> [-- reason]
        DISCARD STUDY <name> WHEN <condition> [-- reason]
    """
    stripped = text.strip()
    if not stripped.upper().startswith("DISCARD "):
        raise ClassifierError(f"expected DISCARD, got {stripped[:20]!r}")
    rest = stripped[len("DISCARD ") :].strip()
    scope = "record"
    if rest.upper().startswith("STUDY "):
        scope = "study"
        rest = rest[len("STUDY ") :].strip()
    name, _, remainder = rest.partition(" ")
    keyword, _, condition_text = remainder.strip().partition(" ")
    if keyword.upper() != "WHEN":
        raise ClassifierError("cleaning rule needs WHEN after the name")
    reason = ""
    if "--" in condition_text:
        condition_text, _, reason = condition_text.partition("--")
    return CleaningRule(
        name=name,
        condition=parse(condition_text.strip()),
        reason=reason.strip(),
        scope=scope,
    )
