"""Emit classifiers as Datalog programs.

"To date, we have successfully hand-translated several collections of
classifiers into both XQuery and Datalog."  This module automates the
Datalog direction: each classifier rule becomes one (or more) Datalog
rules whose bodies are the DNF clauses of the guard — making the
"conjunctive queries with union" equivalence (Hypothesis 3) visible: one
Datalog rule per conjunction, several rules per predicate for the union.
"""

from __future__ import annotations

from repro.expr.analysis import referenced_identifiers, to_dnf
from repro.expr.ast import (
    BinaryOp,
    Expression,
    FunctionCall,
    Identifier,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.multiclass.classifier import Classifier, EntityClassifier
from repro.multiclass.study import Study, element_column

_OP_TEXT = {
    "=": "=",
    "!=": "\\=",
    "<": "<",
    "<=": "=<",
    ">": ">",
    ">=": ">=",
}


def classifier_to_datalog(classifier: Classifier, relation: str = "record") -> str:
    """Render one classifier as Datalog rules.

    The source relation is ``record(Id, node..., value...)`` flattened as
    ``node(Id, Value)`` facts; the classifier becomes rules defining
    ``<entity>_<attribute>_<domain>(Id, Value)``.  Earlier-rule precedence
    is encoded by negating earlier guards in later rules (first-match
    semantics), keeping the program declarative.
    """
    head_name = "{}_{}_{}".format(*classifier.target).lower()
    lines = [f"% classifier {classifier.name}: {classifier.description}".rstrip()]
    earlier_guards: list[Expression] = []
    for rule in classifier.rules:
        guard_clauses = to_dnf(rule.guard)
        negations = [f"\\+ {_guard_predicate(g)}" for g in earlier_guards]
        for clause in guard_clauses:
            body = [_bind_atoms(clause)]
            body.extend(negations)
            value_term = _term(rule.output)
            lines.append(
                f"{head_name}(Id, {value_term}) :- {', '.join(filter(None, body))}."
            )
        earlier_guards.append(rule.guard)
    return "\n".join(lines)


def entity_classifier_to_datalog(classifier: EntityClassifier) -> str:
    """Render an entity classifier as a selection rule."""
    head = f"{classifier.target_entity.lower()}(Id)"
    clauses = to_dnf(classifier.condition)
    lines = [f"% entity classifier {classifier.name}: {classifier.description}".rstrip()]
    for clause in clauses:
        body = _bind_atoms(clause)
        lines.append(f"{head} :- {body or 'true'}.")
    return "\n".join(lines)


def study_to_datalog(study: Study) -> str:
    """Render a whole study: entity classifiers, classifiers, study tables."""
    parts: list[str] = [f"% study {study.name}"]
    for binding in study.bindings:
        parts.append(f"% --- source {binding.source.name}")
        for ec in binding.entity_classifiers.values():
            parts.append(entity_classifier_to_datalog(ec))
        for classifier in binding.classifiers.values():
            parts.append(classifier_to_datalog(classifier))
    for entity in study.entities_in_play():
        columns = [
            element_column(attribute, domain)
            for _, attribute, domain in study.elements_of(entity)
        ]
        head_vars = ", ".join(["Id"] + [c.title().replace("_", "") for c in columns])
        body_parts = [f"{entity.lower()}(Id)"]
        for element, column in zip(study.elements_of(entity), columns):
            predicate = "{}_{}_{}".format(*element).lower()
            body_parts.append(f"{predicate}(Id, {column.title().replace('_', '')})")
        parts.append(f"study_{entity.lower()}({head_vars}) :- {', '.join(body_parts)}.")
    return "\n\n".join(parts)


# -- expression rendering ------------------------------------------------------


def _bind_atoms(clause: list[Expression]) -> str:
    """Render a conjunction: node bindings then comparisons."""
    bindings: dict[str, str] = {}
    for atom in clause:
        for name in sorted(referenced_identifiers(atom)):
            leaf = name.split(".")[-1]
            if leaf not in bindings:
                bindings[leaf] = f"{leaf.lower()}(Id, {_var(leaf)})"
    atoms_text = [text for text in bindings.values()]
    atoms_text.extend(_atom(atom) for atom in clause)
    return ", ".join(atoms_text)


def _guard_predicate(guard: Expression) -> str:
    clauses = to_dnf(guard)
    rendered = ["(" + _bind_atoms(clause) + ")" for clause in clauses]
    if len(rendered) > 1:
        # Parenthesize the whole disjunction so "\+" negates all of it.
        return "(" + "; ".join(rendered) + ")"
    return rendered[0]


def _atom(expr: Expression) -> str:
    if isinstance(expr, BinaryOp) and expr.op in _OP_TEXT:
        return f"{_term(expr.left)} {_OP_TEXT[expr.op]} {_term(expr.right)}"
    if isinstance(expr, IsNull):
        inner = _term(expr.operand)
        return f"{'nonnull' if expr.negated else 'null'}({inner})"
    if isinstance(expr, InList):
        items = "; ".join(f"{_term(expr.operand)} = {_term(i)}" for i in expr.items)
        body = f"({items})"
        return f"\\+ {body}" if expr.negated else body
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return f"\\+ ({_atom(expr.operand)})"
    if isinstance(expr, Literal) and isinstance(expr.value, bool):
        return "true" if expr.value else "fail"
    return _term(expr)


def _term(expr: Expression) -> str:
    if isinstance(expr, Literal):
        if expr.value is None:
            return "null"
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if isinstance(expr.value, str):
            return f"'{expr.value}'"
        return str(expr.value)
    if isinstance(expr, Identifier):
        return _var(expr.leaf)
    if isinstance(expr, BinaryOp):
        return f"({_term(expr.left)} {expr.op} {_term(expr.right)})"
    if isinstance(expr, UnaryOp):
        return f"(-{_term(expr.operand)})" if expr.op == "-" else f"\\+ {_term(expr.operand)}"
    if isinstance(expr, FunctionCall):
        args = ", ".join(_term(a) for a in expr.args)
        return f"{expr.name.lower()}({args})"
    return str(expr)


def _var(name: str) -> str:
    return name[0].upper() + name[1:] if name else "X"
