"""Domains: the alternative representations of a study-schema attribute.

Paper Table 2 — the smoking attribute has three domains (packs per day;
None/Current/Previous; None/Light/Moderate/Heavy) and "there is no way to
translate any one representation into another without losing information".
Domains are "a concept from statistics", so analysts find them familiar.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DomainError


class DomainKind(enum.Enum):
    CATEGORICAL = "categorical"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    TEXT = "text"


@dataclass(frozen=True)
class Domain:
    """One representation for an attribute's values."""

    name: str
    kind: DomainKind
    description: str = ""
    #: Ordered categories (categorical domains only).
    categories: tuple[str, ...] = ()
    minimum: float | None = None
    maximum: float | None = None

    def __post_init__(self) -> None:
        if self.kind is DomainKind.CATEGORICAL and not self.categories:
            raise DomainError(f"categorical domain {self.name!r} needs categories")
        if self.kind is not DomainKind.CATEGORICAL and self.categories:
            raise DomainError(f"{self.kind.value} domain {self.name!r} cannot have categories")
        if len(set(self.categories)) != len(self.categories):
            raise DomainError(f"domain {self.name!r} has duplicate categories")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def categorical(cls, name: str, categories: list[str], description: str = "") -> "Domain":
        return cls(name, DomainKind.CATEGORICAL, description, tuple(categories))

    @classmethod
    def integer(
        cls,
        name: str,
        description: str = "",
        minimum: float | None = None,
        maximum: float | None = None,
    ) -> "Domain":
        return cls(name, DomainKind.INTEGER, description, (), minimum, maximum)

    @classmethod
    def real(
        cls,
        name: str,
        description: str = "",
        minimum: float | None = None,
        maximum: float | None = None,
    ) -> "Domain":
        return cls(name, DomainKind.FLOAT, description, (), minimum, maximum)

    @classmethod
    def boolean(cls, name: str, description: str = "") -> "Domain":
        return cls(name, DomainKind.BOOLEAN, description)

    @classmethod
    def text(cls, name: str, description: str = "") -> "Domain":
        return cls(name, DomainKind.TEXT, description)

    # -- membership ----------------------------------------------------------

    def contains(self, value: object) -> bool:
        """True when ``value`` is a member of this domain (NULL never is)."""
        if value is None:
            return False
        if self.kind is DomainKind.CATEGORICAL:
            return isinstance(value, str) and value in self.categories
        if self.kind is DomainKind.BOOLEAN:
            return isinstance(value, bool)
        if self.kind is DomainKind.TEXT:
            return isinstance(value, str)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        if self.kind is DomainKind.INTEGER and not float(value).is_integer():
            return False
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True

    def check(self, value: object) -> object:
        """Return ``value`` if in-domain, else raise :class:`DomainError`."""
        if value is None:
            return None  # unclassified stays NULL
        if not self.contains(value):
            raise DomainError(f"value {value!r} is outside domain {self.name!r}")
        return value

    @property
    def cardinality(self) -> float:
        """Number of distinct values (``inf`` for unbounded domains)."""
        if self.kind is DomainKind.CATEGORICAL:
            return float(len(self.categories))
        if self.kind is DomainKind.BOOLEAN:
            return 2.0
        if (
            self.kind is DomainKind.INTEGER
            and self.minimum is not None
            and self.maximum is not None
        ):
            return float(int(self.maximum) - int(self.minimum) + 1)
        return float("inf")

    def __str__(self) -> str:
        if self.kind is DomainKind.CATEGORICAL:
            return f"{self.name} {{{', '.join(self.categories)}}}"
        bounds = ""
        if self.minimum is not None or self.maximum is not None:
            bounds = f" [{self.minimum if self.minimum is not None else ''}..{self.maximum if self.maximum is not None else ''}]"
        return f"{self.name} ({self.kind.value}{bounds})"
