"""The analyst-facing classifier mini-language.

A classifier is written as a header plus one ``output <- guard`` line per
rule, matching the look of the paper's Figure 5::

    CLASSIFIER Habits_Cancer
    TARGET Procedure.Smoking
    DOMAIN smoking_class
    FORM procedure
    DESCRIPTION Classifies packs per day per cancer-study conversation 2002-05-03
    RULE 'None' <- PacksPerDay = 0
    RULE 'Light' <- PacksPerDay > 0 AND PacksPerDay < 2

    ENTITY CLASSIFIER Relevant_Procedures
    TARGET Procedure
    FORM procedure
    DESCRIPTION Only consider procedures where surgery was performed
    WHERE SurgeryPerformed = TRUE

``parse_classifier``/``format_classifier`` round-trip.
"""

from __future__ import annotations

from repro.errors import ClassifierError
from repro.expr.parser import parse
from repro.multiclass.classifier import Classifier, EntityClassifier, Rule


def parse_classifier(text: str) -> Classifier:
    """Parse a domain classifier from the mini-language."""
    fields = _parse_lines(text, "CLASSIFIER")
    target = fields.get("TARGET", "")
    if "." not in target:
        raise ClassifierError(f"TARGET must be Entity.Attribute, got {target!r}")
    entity, attribute = target.split(".", 1)
    if "DOMAIN" not in fields:
        raise ClassifierError("classifier needs a DOMAIN line")
    rules = [
        _parse_rule(line) for line in fields.get("__rules__", [])  # type: ignore[union-attr]
    ]
    if not rules:
        raise ClassifierError("classifier needs at least one RULE line")
    return Classifier(
        name=fields["__name__"],  # type: ignore[index]
        target_entity=entity,
        target_attribute=attribute,
        target_domain=fields["DOMAIN"],  # type: ignore[index]
        rules=rules,
        description=fields.get("DESCRIPTION", ""),  # type: ignore[arg-type]
        source_form=fields.get("FORM", ""),  # type: ignore[arg-type]
    )


def parse_entity_classifier(text: str) -> EntityClassifier:
    """Parse an entity classifier from the mini-language."""
    fields = _parse_lines(text, "ENTITY CLASSIFIER")
    if "TARGET" not in fields:
        raise ClassifierError("entity classifier needs a TARGET line")
    if "FORM" not in fields:
        raise ClassifierError("entity classifier needs a FORM line")
    condition = parse(fields["WHERE"]) if "WHERE" in fields else parse("TRUE")  # type: ignore[arg-type]
    return EntityClassifier(
        name=fields["__name__"],  # type: ignore[index]
        target_entity=fields["TARGET"],  # type: ignore[index]
        form=fields["FORM"],  # type: ignore[index]
        condition=condition,
        description=fields.get("DESCRIPTION", ""),  # type: ignore[arg-type]
    )


def format_classifier(classifier: Classifier) -> str:
    """Render a classifier back to the mini-language."""
    lines = [
        f"CLASSIFIER {classifier.name}",
        f"TARGET {classifier.target_entity}.{classifier.target_attribute}",
        f"DOMAIN {classifier.target_domain}",
    ]
    if classifier.source_form:
        lines.append(f"FORM {classifier.source_form}")
    if classifier.description:
        lines.append(f"DESCRIPTION {classifier.description}")
    for rule in classifier.rules:
        lines.append(f"RULE {rule.output.to_source()} <- {rule.guard.to_source()}")
    return "\n".join(lines)


def format_entity_classifier(classifier: EntityClassifier) -> str:
    """Render an entity classifier back to the mini-language."""
    lines = [
        f"ENTITY CLASSIFIER {classifier.name}",
        f"TARGET {classifier.target_entity}",
        f"FORM {classifier.form}",
    ]
    if classifier.description:
        lines.append(f"DESCRIPTION {classifier.description}")
    lines.append(f"WHERE {classifier.condition.to_source()}")
    return "\n".join(lines)


# -- internals ---------------------------------------------------------------


def _parse_lines(text: str, header: str) -> dict[str, object]:
    lines = [line.strip() for line in text.strip().splitlines() if line.strip()]
    if not lines:
        raise ClassifierError("empty classifier text")
    first = lines[0]
    if not first.upper().startswith(header + " "):
        raise ClassifierError(f"expected {header!r} header, got {first!r}")
    fields: dict[str, object] = {
        "__name__": first[len(header) :].strip(),
        "__rules__": [],
    }
    for line in lines[1:]:
        keyword, _, rest = line.partition(" ")
        keyword = keyword.upper()
        if keyword == "RULE":
            fields["__rules__"].append(rest.strip())  # type: ignore[union-attr]
        elif keyword in ("TARGET", "DOMAIN", "FORM", "DESCRIPTION", "WHERE"):
            if keyword in fields:
                raise ClassifierError(f"duplicate {keyword} line")
            fields[keyword] = rest.strip()
        else:
            raise ClassifierError(f"unknown line keyword {keyword!r}")
    return fields


def _parse_rule(text: str) -> Rule:
    if "<-" not in text:
        raise ClassifierError(f"rule needs '<-': {text!r}")
    output_text, _, guard_text = text.partition("<-")
    return Rule(parse(output_text.strip()), parse(guard_text.strip()))
