"""Classifier linting: find inputs a classifier silently leaves unclassified.

Hypothesis 2 wants analysts to "extract only and all relevant data".  A
classifier with a coverage gap — an answer combination no rule matches —
quietly drops records instead.  The linter enumerates the classifier's
input space where the g-tree makes it enumerable (choice controls list
their options, booleans have two values, anything can be unanswered;
numeric nodes are probed on a grid around the rule constants) and reports
every combination that classifies to NULL.

Gaps are not always bugs — leaving free text unclassified is often the
analyst's intent — so the linter reports findings for review, mirroring
how :mod:`repro.multiclass.suggest` never auto-adopts drafts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.expr.ast import Literal
from repro.guava.gtree import GNode, GTree
from repro.multiclass.classifier import Classifier
from repro.relational.types import DataType

#: Refuse to enumerate beyond this many input combinations.
MAX_COMBINATIONS = 20_000


@dataclass(frozen=True)
class CoverageGap:
    """One input combination no rule classifies."""

    inputs: tuple[tuple[str, object], ...]

    def describe(self) -> str:
        rendered = ", ".join(f"{name}={value!r}" for name, value in self.inputs)
        return f"unclassified when {rendered}"


@dataclass
class LintReport:
    """Outcome of linting one classifier against one g-tree."""

    classifier: str
    checked_combinations: int
    gaps: list[CoverageGap]
    skipped_nodes: list[str]  # nodes whose value space was not enumerable

    @property
    def is_exhaustive(self) -> bool:
        """True when no gap was found over the enumerated space."""
        return not self.gaps

    def summary(self) -> str:
        skipped = (
            f"; {len(self.skipped_nodes)} node(s) not enumerable"
            if self.skipped_nodes
            else ""
        )
        return (
            f"{self.classifier}: {len(self.gaps)} gap(s) in "
            f"{self.checked_combinations} combination(s){skipped}"
        )


def lint_classifier(classifier: Classifier, gtree: GTree) -> LintReport:
    """Enumerate the classifier's inputs and report unclassified combos.

    The value space per input node: every option of a choice control,
    True/False for checkboxes, a probe grid around the classifier's own
    numeric constants for numeric nodes, and always NULL (unanswered).
    NULL-only gaps for a single node are expected (unanswered questions
    stay unclassified by design) and are not reported; a gap needs at
    least one answered node.
    """
    nodes = sorted(classifier.input_nodes())
    spaces: list[tuple[str, list[object]]] = []
    skipped: list[str] = []
    constants = _numeric_constants(classifier)
    for name in nodes:
        if not gtree.has_node(name):
            skipped.append(name)
            continue
        space = _value_space(gtree.node(name), constants)
        if space is None:
            skipped.append(name)
            continue
        spaces.append((name, space))

    total = 1
    for _, space in spaces:
        total *= len(space)
    if total > MAX_COMBINATIONS or not spaces:
        return LintReport(classifier.name, 0, [], skipped or nodes)

    gaps: list[CoverageGap] = []
    names = [name for name, _ in spaces]
    checked = 0
    for combo in itertools.product(*(space for _, space in spaces)):
        env = dict(zip(names, combo))
        for name in skipped:
            env[name] = None
        if not _screen_consistent(env, gtree):
            continue  # the GUI could never save this combination
        if all(value is None for value in combo):
            continue  # a fully unanswered screen is legitimately unclassified
        checked += 1
        if classifier.classify(env) is None:
            gaps.append(CoverageGap(tuple(zip(names, combo))))
    return LintReport(classifier.name, checked, gaps, skipped)


def lint_all(classifiers: list[Classifier], gtree: GTree) -> list[LintReport]:
    """Lint a classifier set; reports in input order."""
    return [lint_classifier(classifier, gtree) for classifier in classifiers]


# -- internals ---------------------------------------------------------------


def _screen_consistent(env: dict[str, object], gtree: GTree) -> bool:
    """Could the GUI save a screen with these values?

    Two g-tree facts prune impossible combinations:

    * a control with a default and no enablement condition always holds a
      value (a checkbox is never NULL once the form opens);
    * a control with an enablement condition only holds data while that
      condition is satisfied.

    Enablement conditions referencing nodes outside ``env`` cannot be
    decided here and are given the benefit of the doubt.
    """
    from repro.expr.analysis import referenced_identifiers
    from repro.expr.evaluator import Evaluator

    evaluator = Evaluator()
    for name, value in env.items():
        if not gtree.has_node(name):
            continue
        node = gtree.node(name)
        if value is None:
            if node.default is not None and node.enablement is None:
                return False  # never blank: it has a default and no gate
            continue
        if node.enablement is not None:
            referenced = {
                n.split(".")[-1] for n in referenced_identifiers(node.enablement)
            }
            if referenced <= set(env):
                if evaluator.satisfied(node.enablement, env) is not True:
                    return False  # holds data while its gate is closed
    return True


def _value_space(node: GNode, constants: list[float]) -> list[object] | None:
    if node.options and not node.allows_free_text:
        return [value for value, _ in node.options] + [None]
    if node.data_type is DataType.BOOLEAN:
        return [True, False, None]
    if node.data_type in (DataType.INTEGER, DataType.FLOAT):
        probes: list[object] = [None]
        grid: set[float] = {0.0}
        for constant in constants:
            grid.update(
                {constant - 0.5, constant, constant + 0.5}
            )
        for value in sorted(grid):
            if value >= 0:  # clinical quantities are non-negative
                probes.append(
                    int(value) if node.data_type is DataType.INTEGER and float(value).is_integer() else value
                )
        return probes
    return None  # free text / dates: not enumerable


def _numeric_constants(classifier: Classifier) -> list[float]:
    constants: list[float] = []
    for rule in classifier.rules:
        for expression in (rule.guard, rule.output):
            for node in expression.walk():
                if isinstance(node, Literal) and isinstance(node.value, (int, float)):
                    if not isinstance(node.value, bool):
                        constants.append(float(node.value))
    return constants
