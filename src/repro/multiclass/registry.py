"""The registry: document, inspect, reuse, and modify prior decisions.

"Analysts are also able to use MultiClass to document, inspect, reuse, and
modify integration decisions from prior studies" and "may choose to look
at other studies that use the same study schema to make informed decisions
as to which classifiers to use."
"""

from __future__ import annotations

from repro.errors import MultiClassError
from repro.multiclass.classifier import Classifier, EntityClassifier
from repro.multiclass.study import Study
from repro.multiclass.study_schema import StudySchema


class Registry:
    """Named store of study schemas, classifiers, and studies."""

    def __init__(self) -> None:
        self._schemas: dict[str, StudySchema] = {}
        self._classifiers: dict[str, Classifier] = {}
        self._entity_classifiers: dict[str, EntityClassifier] = {}
        self._studies: dict[str, Study] = {}

    # -- registration -----------------------------------------------------------

    def add_schema(self, schema: StudySchema) -> StudySchema:
        if schema.name in self._schemas:
            raise MultiClassError(f"study schema {schema.name!r} already registered")
        self._schemas[schema.name] = schema
        return schema

    def add_classifier(self, classifier: Classifier) -> Classifier:
        if classifier.name in self._classifiers:
            raise MultiClassError(f"classifier {classifier.name!r} already registered")
        self._classifiers[classifier.name] = classifier
        return classifier

    def add_entity_classifier(self, classifier: EntityClassifier) -> EntityClassifier:
        if classifier.name in self._entity_classifiers:
            raise MultiClassError(
                f"entity classifier {classifier.name!r} already registered"
            )
        self._entity_classifiers[classifier.name] = classifier
        return classifier

    def add_study(self, study: Study) -> Study:
        if study.name in self._studies:
            raise MultiClassError(f"study {study.name!r} already registered")
        self._studies[study.name] = study
        return study

    # -- lookup -------------------------------------------------------------------

    def schema(self, name: str) -> StudySchema:
        return self._get(self._schemas, name, "study schema")

    def classifier(self, name: str) -> Classifier:
        return self._get(self._classifiers, name, "classifier")

    def entity_classifier(self, name: str) -> EntityClassifier:
        return self._get(self._entity_classifiers, name, "entity classifier")

    def study(self, name: str) -> Study:
        return self._get(self._studies, name, "study")

    @staticmethod
    def _get(table: dict, name: str, kind: str):
        if name not in table:
            raise MultiClassError(f"no {kind} named {name!r}")
        return table[name]

    # -- reuse support -----------------------------------------------------------

    def classifiers_for(
        self, entity: str, attribute: str, domain: str | None = None
    ) -> list[Classifier]:
        """All classifiers targeting an attribute — "MultiClass allows more
        than one classifier to map data from the same contributor to the
        same domain"."""
        return [
            classifier
            for classifier in self._classifiers.values()
            if classifier.target_entity == entity
            and classifier.target_attribute == attribute
            and (domain is None or classifier.target_domain == domain)
        ]

    def studies_using_schema(self, schema_name: str) -> list[Study]:
        """Prior studies over the same study schema (reuse discovery)."""
        return [
            study
            for study in self._studies.values()
            if study.schema.name == schema_name
        ]

    def studies_using_classifier(self, classifier_name: str) -> list[Study]:
        """Which studies chose a given classifier (decision audit)."""
        found = []
        for study in self._studies.values():
            for binding in study.bindings:
                if any(
                    classifier.name == classifier_name
                    for classifier in binding.classifiers.values()
                ):
                    found.append(study)
                    break
        return found

    # -- persistence ------------------------------------------------------------

    def export_text(self) -> str:
        """All classifiers and entity classifiers in the mini-language.

        The document is the analyst-shareable form of the registry:
        human-readable, diffable, and re-importable with
        :meth:`import_text`.  (Studies bind to live sources, so they are
        reconstructed from code, not text.)
        """
        from repro.multiclass.language import (
            format_classifier,
            format_entity_classifier,
        )

        blocks = [
            format_classifier(classifier)
            for _, classifier in sorted(self._classifiers.items())
        ]
        blocks.extend(
            format_entity_classifier(classifier)
            for _, classifier in sorted(self._entity_classifiers.items())
        )
        return "\n\n---\n\n".join(blocks) + ("\n" if blocks else "")

    def import_text(self, text: str) -> dict[str, int]:
        """Register every classifier in a mini-language document.

        Blocks are separated by ``---`` lines; returns counts per kind.
        Raises on the first malformed block or duplicate name, leaving
        earlier blocks registered (import is incremental by design —
        an analyst fixes the reported block and re-imports the rest).
        """
        from repro.multiclass.language import (
            parse_classifier,
            parse_entity_classifier,
        )

        imported = {"classifiers": 0, "entity_classifiers": 0}
        for block in text.split("---"):
            block = block.strip()
            if not block:
                continue
            if block.upper().startswith("ENTITY CLASSIFIER"):
                self.add_entity_classifier(parse_entity_classifier(block))
                imported["entity_classifiers"] += 1
            else:
                self.add_classifier(parse_classifier(block))
                imported["classifiers"] += 1
        return imported

    # -- stats ---------------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        return {
            "schemas": len(self._schemas),
            "classifiers": len(self._classifiers),
            "entity_classifiers": len(self._entity_classifiers),
            "studies": len(self._studies),
        }
