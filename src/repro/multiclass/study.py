"""Studies: the unit of analyst work.

"A study comprises all of the decisions that a data analyst makes from the
time a request arrives to when final statistical analyses are run."  A
:class:`Study` bundles:

* the study-schema elements of interest (entity, attribute, domain),
* WHERE-like filters over the classified output,
* per-source bindings: an entity classifier per entity and a domain
  classifier per element,

and executes by pulling each source's data through GUAVA, classifying, and
unioning — "MultiClass simply unions together the results of ETL workflows
from different contributors."  Direct execution here is the semantic
reference; :mod:`repro.etl.compile` turns the same study into an ETL
workflow and Hypothesis 3 checks the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StudyError
from repro.expr.ast import BinaryOp, Expression
from repro.expr.evaluator import Evaluator
from repro.expr.parser import parse
from repro.guava.query import GTreeQuery
from repro.guava.source import GuavaSource
from repro.multiclass.classifier import Classifier, EntityClassifier
from repro.multiclass.cleaning import CleaningRule, Quarantine, apply_rules
from repro.multiclass.study_schema import StudySchema
from repro.ui.form import RECORD_ID
from repro.util.annotations import Annotated

_EVALUATOR = Evaluator()

Row = dict[str, object]

#: An element the analyst selected: (entity, attribute, domain).
Element = tuple[str, str, str]


#: Output column carrying the has-a parent's record id (child entities).
PARENT_RECORD_ID = "parent_record_id"


def element_column(attribute: str, domain: str) -> str:
    """The output column name for an (attribute, domain) selection."""
    return f"{attribute}_{domain}"


@dataclass
class SourceBinding:
    """One contributor's classifiers for a study."""

    source: GuavaSource
    entity_classifiers: dict[str, EntityClassifier] = field(default_factory=dict)
    classifiers: dict[Element, Classifier] = field(default_factory=dict)


@dataclass
class Study(Annotated):
    """A named, reusable, annotated set of integration decisions."""

    name: str
    schema: StudySchema
    description: str = ""
    elements: list[Element] = field(default_factory=list)
    filters: dict[str, Expression] = field(default_factory=dict)  # entity -> filter
    bindings: list[SourceBinding] = field(default_factory=list)
    #: §6 data cleaning: DISCARD WHEN rules per entity.
    cleaning: dict[str, list[CleaningRule]] = field(default_factory=dict)

    # -- declaration ---------------------------------------------------------

    def add_element(self, entity: str, attribute: str, domain: str) -> Element:
        """Select a study-schema element (validates it exists)."""
        self.schema.domain_of(entity, attribute, domain)
        element = (entity, attribute, domain)
        if element in self.elements:
            raise StudyError(f"element {element} already selected")
        self.elements.append(element)
        return element

    def where(self, entity: str, condition: str | Expression) -> None:
        """Filter an entity's classified rows (conditions AND together).

        Conditions reference output columns (``attribute_domain``) plus
        ``record_id`` and ``source``.
        """
        expr = parse(condition) if isinstance(condition, str) else condition
        if entity in self.filters:
            expr = BinaryOp("AND", self.filters[entity], expr)
        self.filters[entity] = expr

    def add_cleaning_rule(self, entity: str, rule: CleaningRule) -> CleaningRule:
        """Attach a DISCARD WHEN rule to an entity (paper §6).

        ``record``-scoped rules see g-tree node values before
        classification; ``study``-scoped rules see the classified output
        columns after the union.
        """
        if not self.schema.has_entity(entity):
            raise StudyError(f"study schema has no entity {entity!r}")
        self.cleaning.setdefault(entity, []).append(rule)
        return rule

    def bind(
        self,
        source: GuavaSource,
        entity_classifiers: list[EntityClassifier],
        classifiers: list[Classifier],
    ) -> SourceBinding:
        """Attach one contributor with its classifier choices.

        Validates every classifier against the source's g-trees and
        against the study schema, so binding errors surface at study
        definition time, not mid-run.
        """
        binding = SourceBinding(source)
        for ec in entity_classifiers:
            if not self.schema.has_entity(ec.target_entity):
                raise StudyError(
                    f"entity classifier {ec.name!r} targets unknown entity "
                    f"{ec.target_entity!r}"
                )
            problems = ec.validate_against(source.gtree(ec.form))
            if problems:
                raise StudyError(
                    f"entity classifier {ec.name!r} invalid for source "
                    f"{source.name!r}: {problems}"
                )
            if ec.target_entity in binding.entity_classifiers:
                raise StudyError(
                    f"duplicate entity classifier for {ec.target_entity!r}"
                )
            binding.entity_classifiers[ec.target_entity] = ec
        for classifier in classifiers:
            self.schema.domain_of(*classifier.target)  # raises if unknown
            ec = binding.entity_classifiers.get(classifier.target_entity)
            if ec is None:
                raise StudyError(
                    f"classifier {classifier.name!r} targets entity "
                    f"{classifier.target_entity!r} with no entity classifier bound"
                )
            form = classifier.source_form or ec.form
            missing = classifier.validate_against(source.gtree(form))
            if missing:
                raise StudyError(
                    f"classifier {classifier.name!r} references unknown "
                    f"node(s) {missing} in source {source.name!r}"
                )
            binding.classifiers[classifier.target] = classifier
        self.bindings.append(binding)
        return binding

    # -- execution -------------------------------------------------------------

    def elements_of(self, entity: str) -> list[Element]:
        return [element for element in self.elements if element[0] == entity]

    def entities_in_play(self) -> list[str]:
        """Entities with at least one selected element, in schema order."""
        wanted = {element[0] for element in self.elements}
        return [e.name for e in self.schema.entities() if e.name in wanted]

    def run(self) -> "StudyResult":
        """Execute the study directly (the semantic reference)."""
        if not self.bindings:
            raise StudyError(f"study {self.name!r} has no sources bound")
        if not self.elements:
            raise StudyError(f"study {self.name!r} selects no elements")
        tables: dict[str, list[Row]] = {}
        quarantine = Quarantine()
        for entity in self.entities_in_play():
            rows: list[Row] = []
            for binding in self.bindings:
                rows.extend(self._run_entity(binding, entity, quarantine))
            rules = self.cleaning.get(entity, [])
            rows = apply_rules(rules, rows, "study", "study", quarantine)
            condition = self.filters.get(entity)
            if condition is not None:
                rows = [row for row in rows if _EVALUATOR.satisfied(condition, row)]
            tables[entity] = rows
        return StudyResult(self.name, tables, quarantine)

    def _run_entity(
        self,
        binding: SourceBinding,
        entity: str,
        quarantine: Quarantine | None = None,
    ) -> list[Row]:
        ec = binding.entity_classifiers.get(entity)
        if ec is None:
            raise StudyError(
                f"source {binding.source.name!r} has no entity classifier "
                f"for {entity!r}"
            )
        gtree = binding.source.gtree(ec.form)
        base = GTreeQuery(gtree).where(ec.condition)
        records = binding.source.execute(base)
        if quarantine is not None:
            records = apply_rules(
                self.cleaning.get(entity, []),
                records,
                binding.source.name,
                "record",
                quarantine,
            )
        out: list[Row] = []
        for record in records:
            row: Row = {
                RECORD_ID: record[RECORD_ID],
                "source": binding.source.name,
            }
            if ec.parent_link is not None:
                row[PARENT_RECORD_ID] = record.get(ec.parent_link)
            for element in self.elements_of(entity):
                _, attribute, domain_name = element
                classifier = binding.classifiers.get(element)
                if classifier is None:
                    raise StudyError(
                        f"source {binding.source.name!r} has no classifier for "
                        f"{element}"
                    )
                domain = self.schema.domain_of(*element)
                row[element_column(attribute, domain_name)] = classifier.classify(
                    record, domain
                )
            out.append(row)
        return out

    def output_columns(self, entity: str) -> tuple[str, ...]:
        """Column names of an entity's study table."""
        base: tuple[str, ...] = (RECORD_ID, "source")
        if self.has_parent_link(entity):
            base = base + (PARENT_RECORD_ID,)
        return base + tuple(
            element_column(attribute, domain)
            for _, attribute, domain in self.elements_of(entity)
        )

    def has_parent_link(self, entity: str) -> bool:
        """True when every bound entity classifier provides a parent link.

        The link column only appears when it is total: a partially-linked
        union would silently mix linkable and orphan rows.
        """
        classifiers = [
            binding.entity_classifiers[entity]
            for binding in self.bindings
            if entity in binding.entity_classifiers
        ]
        return bool(classifiers) and all(
            ec.parent_link is not None for ec in classifiers
        )


@dataclass
class StudyResult:
    """Classified, cleaned, filtered, unioned rows per entity."""

    study_name: str
    tables: dict[str, list[Row]]
    quarantine: Quarantine = field(default_factory=Quarantine)

    def rows(self, entity: str) -> list[Row]:
        if entity not in self.tables:
            raise StudyError(f"study result has no entity {entity!r}")
        return self.tables[entity]

    def count(self, entity: str) -> int:
        return len(self.rows(entity))

    def distribution(self, entity: str, column: str) -> dict[object, int]:
        """Value counts of one output column — the analyst's first look."""
        counts: dict[object, int] = {}
        for row in self.rows(entity):
            key = row.get(column)
            counts[key] = counts.get(key, 0) + 1
        return counts
