"""Study schemas: what analysts want to study (paper Figure 4).

"A study schema simplifies the traditional ER model in that the only
relationship type is has-a with a single entity of primary interest
sitting atop a tree ... The biggest difference between a study schema and
an ER diagram is the addition of multiple domains for an attribute."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import StudySchemaError
from repro.multiclass.domain import Domain
from repro.util.annotations import Annotated


@dataclass
class Attribute:
    """One attribute with one or more alternative domains."""

    name: str
    domains: dict[str, Domain] = field(default_factory=dict)
    description: str = ""

    def add_domain(self, domain: Domain) -> Domain:
        """Register another representation for this attribute."""
        if domain.name in self.domains:
            raise StudySchemaError(
                f"attribute {self.name!r} already has domain {domain.name!r}"
            )
        self.domains[domain.name] = domain
        return domain

    def domain(self, name: str) -> Domain:
        if name not in self.domains:
            raise StudySchemaError(
                f"attribute {self.name!r} has no domain {name!r} "
                f"(has {sorted(self.domains)})"
            )
        return self.domains[name]


@dataclass
class Entity:
    """One entity in the has-a tree."""

    name: str
    attributes: dict[str, Attribute] = field(default_factory=dict)
    children: list["Entity"] = field(default_factory=list)
    description: str = ""

    def add_attribute(self, name: str, *domains: Domain, description: str = "") -> Attribute:
        """Add an attribute with its initial domain(s)."""
        if name in self.attributes:
            raise StudySchemaError(f"entity {self.name!r} already has attribute {name!r}")
        attribute = Attribute(name, description=description)
        for domain in domains:
            attribute.add_domain(domain)
        self.attributes[name] = attribute
        return attribute

    def attribute(self, name: str) -> Attribute:
        if name not in self.attributes:
            raise StudySchemaError(
                f"entity {self.name!r} has no attribute {name!r} "
                f"(has {sorted(self.attributes)})"
            )
        return self.attributes[name]

    def add_child(self, entity: "Entity") -> "Entity":
        """Attach a has-a child entity."""
        self.children.append(entity)
        return entity

    def iter_tree(self) -> Iterator["Entity"]:
        yield self
        for child in self.children:
            yield from child.iter_tree()


@dataclass
class StudySchema(Annotated):
    """The has-a tree with its primary entity at the top.

    Analysts expand the schema as studies require: add entities,
    attributes, and domains — never remove silently (annotations record
    every change).
    """

    name: str
    primary: Entity

    def __post_init__(self) -> None:
        self._check()

    def _check(self) -> None:
        names: list[str] = []
        seen: set[int] = set()
        for entity in self.primary.iter_tree():
            if id(entity) in seen:
                raise StudySchemaError(
                    f"entity {entity.name!r} appears twice in the has-a tree"
                )
            seen.add(id(entity))
            names.append(entity.name)
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise StudySchemaError(f"duplicate entity names: {sorted(duplicates)}")

    # -- lookup ------------------------------------------------------------------

    def entity(self, name: str) -> Entity:
        for entity in self.primary.iter_tree():
            if entity.name == name:
                return entity
        raise StudySchemaError(f"study schema has no entity {name!r}")

    def has_entity(self, name: str) -> bool:
        return any(entity.name == name for entity in self.primary.iter_tree())

    def entities(self) -> list[Entity]:
        return list(self.primary.iter_tree())

    def domain_of(self, entity: str, attribute: str, domain: str) -> Domain:
        """Resolve an (entity, attribute, domain) target."""
        return self.entity(entity).attribute(attribute).domain(domain)

    def parent_of(self, name: str) -> Entity | None:
        """The has-a parent of an entity (None for the primary)."""
        for entity in self.primary.iter_tree():
            for child in entity.children:
                if child.name == name:
                    return entity
        if name == self.primary.name:
            return None
        raise StudySchemaError(f"study schema has no entity {name!r}")

    # -- statistics ---------------------------------------------------------------

    def attribute_count(self) -> int:
        return sum(len(entity.attributes) for entity in self.entities())

    def domain_count(self) -> int:
        return sum(
            len(attribute.domains)
            for entity in self.entities()
            for attribute in entity.attributes.values()
        )

    # -- display --------------------------------------------------------------------

    def render(self) -> str:
        """ASCII rendering in the style of the paper's Figure 4."""
        lines: list[str] = []

        def visit(entity: Entity, depth: int) -> None:
            lines.append(f"{'  ' * depth}Entity: {entity.name}")
            for attribute in entity.attributes.values():
                domains = " | ".join(str(d) for d in attribute.domains.values())
                lines.append(f"{'  ' * depth}  {attribute.name}: {domains}")
            for child in entity.children:
                visit(child, depth + 1)

        visit(self.primary, 0)
        return "\n".join(lines)
