"""Vocabulary-assisted classifier suggestions (paper §3.1).

"Note that controlled vocabularies or ontology, or other automated schema
matching tools may be useful in conjunction with GUAVA to assist the
user."  This module is that assist: given a g-tree and a study-schema
target, it drafts candidate classifiers by matching node *context* —
name tokens, question wording, option values, stored types — against the
attribute and its domain.  Suggestions are drafts for the analyst to
review, never silently adopted: each carries a confidence and a rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guava.gtree import GNode, GTree
from repro.multiclass.classifier import Classifier, Rule
from repro.multiclass.domain import Domain, DomainKind
from repro.multiclass.study_schema import StudySchema
from repro.relational.types import DataType
from repro.util.ids import slugify

#: Generic words that carry no matching signal.
_STOPWORDS = frozenset(
    {"the", "a", "an", "of", "is", "does", "do", "per", "in", "has", "have", "patient"}
)


def _tokens(*texts: str) -> set[str]:
    out: set[str] = set()
    for text in texts:
        for token in slugify(text).split("_"):
            if token and token not in _STOPWORDS:
                out.add(token)
    return out


def _camel_split(name: str) -> str:
    """Insert separators at camel-case boundaries: TransientHypoxia -> ..."""
    parts: list[str] = []
    for ch in name:
        if ch.isupper() and parts and parts[-1] != " ":
            parts.append(" ")
        parts.append(ch)
    return "".join(parts)


def _name_similarity(attribute: str, node: GNode) -> float:
    """Jaccard overlap between attribute tokens and node name+question."""
    attribute_tokens = _tokens(_camel_split(attribute))
    node_tokens = _tokens(node.name, node.question)
    if not attribute_tokens or not node_tokens:
        return 0.0
    overlap = attribute_tokens & node_tokens
    return len(overlap) / len(attribute_tokens | node_tokens)


@dataclass(frozen=True)
class Suggestion:
    """One draft classifier with its evidence."""

    classifier: Classifier
    confidence: float
    rationale: str

    def __repr__(self) -> str:
        return (
            f"Suggestion({self.classifier.name!r}, confidence="
            f"{self.confidence:.2f})"
        )


def suggest_classifiers(
    gtree: GTree,
    schema: StudySchema,
    entity: str,
    attribute: str,
    domain_name: str,
    limit: int = 3,
) -> list[Suggestion]:
    """Draft classifiers for one (entity, attribute, domain) target.

    Ranked best-first; empty when no node resembles the target.
    """
    domain = schema.domain_of(entity, attribute, domain_name)
    suggestions: list[Suggestion] = []
    for node in gtree.data_nodes():
        drafted = _draft_for_node(node, gtree, entity, attribute, domain_name, domain)
        if drafted is not None:
            suggestions.append(drafted)
    suggestions.sort(key=lambda s: -s.confidence)
    return suggestions[:limit]


def suggest_all(
    gtree: GTree, schema: StudySchema, entity: str, limit: int = 1
) -> dict[tuple[str, str], list[Suggestion]]:
    """Suggestions for every (attribute, domain) of one entity."""
    out: dict[tuple[str, str], list[Suggestion]] = {}
    for attribute in schema.entity(entity).attributes.values():
        for domain_name in attribute.domains:
            found = suggest_classifiers(
                gtree, schema, entity, attribute.name, domain_name, limit=limit
            )
            if found:
                out[(attribute.name, domain_name)] = found
    return out


# -- drafting ---------------------------------------------------------------


def _draft_for_node(
    node: GNode,
    gtree: GTree,
    entity: str,
    attribute: str,
    domain_name: str,
    domain: Domain,
) -> Suggestion | None:
    name_score = _name_similarity(attribute, node)
    if name_score == 0.0:
        return None
    shape = _shape_match(node, domain)
    if shape is None:
        return None
    rules, shape_score, shape_note = shape
    confidence = round(0.6 * name_score + 0.4 * shape_score, 3)
    classifier = Classifier(
        name=f"suggested_{slugify(attribute)}_{domain_name}_from_{node.name}",
        target_entity=entity,
        target_attribute=attribute,
        target_domain=domain_name,
        rules=rules,
        description=(
            f"DRAFT suggested from node {node.name!r} "
            f"(question: {node.question!r}); review before use"
        ),
        source_form=gtree.form_name,
    )
    rationale = (
        f"name overlap {name_score:.2f} with node {node.name!r}; {shape_note}"
    )
    return Suggestion(classifier, confidence, rationale)


def _shape_match(
    node: GNode, domain: Domain
) -> tuple[list[Rule], float, str] | None:
    """Can this node's values populate the domain?  Returns draft rules."""
    if domain.kind is DomainKind.BOOLEAN:
        if node.data_type is DataType.BOOLEAN:
            return (
                [Rule.of(node.name, f"{node.name} IS NOT NULL")],
                1.0,
                "boolean checkbox feeds boolean domain directly",
            )
        return None
    if domain.kind is DomainKind.CATEGORICAL:
        if not node.options:
            return None
        option_values = [str(value) for value, _ in node.options]
        matches = _option_alignment(option_values, domain.categories)
        if not matches:
            return None
        rules = [
            Rule.of(f"'{category}'", f"{node.name} = '{option}'")
            for option, category in matches
        ]
        coverage = len(matches) / len(domain.categories)
        return (
            rules,
            coverage,
            f"{len(matches)}/{len(domain.categories)} categories align "
            f"with the node's options",
        )
    if domain.kind in (DomainKind.INTEGER, DomainKind.FLOAT):
        if node.data_type in (DataType.INTEGER, DataType.FLOAT):
            return (
                [Rule.of(node.name, f"{node.name} IS NOT NULL")],
                0.9,
                "numeric control feeds numeric domain directly",
            )
        return None
    if domain.kind is DomainKind.TEXT:
        if node.data_type is DataType.TEXT:
            return (
                [Rule.of(node.name, f"{node.name} IS NOT NULL")],
                0.7,
                "text control feeds text domain",
            )
    return None


def _option_alignment(
    options: list[str], categories: tuple[str, ...]
) -> list[tuple[str, str]]:
    """Pair node options with domain categories by token similarity."""
    pairs: list[tuple[str, str]] = []
    used_categories: set[str] = set()
    for option in options:
        option_tokens = _tokens(option)
        best: tuple[float, str] | None = None
        for category in categories:
            if category in used_categories:
                continue
            category_tokens = _tokens(category)
            if not option_tokens or not category_tokens:
                continue
            overlap = option_tokens & category_tokens
            if not overlap:
                continue
            score = len(overlap) / len(option_tokens | category_tokens)
            if best is None or score > best[0]:
                best = (score, category)
        if best is not None:
            used_categories.add(best[1])
            pairs.append((option, best[1]))
    return pairs
