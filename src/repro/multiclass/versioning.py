"""Classifier propagation across reporting-tool versions (paper §6).

"We are also interested in handling new versions of a reporting tool by
propagating classifiers to the next version if their input nodes did not
change, and suggest new classifiers if there is a change."

:func:`propagate_classifiers` compares two g-trees of the same form and
sorts classifiers into *propagated* (inputs unchanged), *flagged* (an
input's context changed — options, type, question), and *broken* (an input
disappeared), with rename suggestions for the broken ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guava.gtree import GNode, GTree
from repro.multiclass.classifier import Classifier


@dataclass(frozen=True)
class NodeChange:
    """How one input node differs between versions."""

    node: str
    kind: str  # "missing", "options", "type", "question"
    detail: str
    suggestion: str | None = None


@dataclass
class PropagationReport:
    """Outcome of propagating one classifier set to a new tool version."""

    propagated: list[Classifier] = field(default_factory=list)
    flagged: list[tuple[Classifier, list[NodeChange]]] = field(default_factory=list)
    broken: list[tuple[Classifier, list[NodeChange]]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.propagated) + len(self.flagged) + len(self.broken)

    def summary(self) -> str:
        return (
            f"{len(self.propagated)} propagated, {len(self.flagged)} flagged, "
            f"{len(self.broken)} broken of {self.total}"
        )


def propagate_classifiers(
    old: GTree, new: GTree, classifiers: list[Classifier]
) -> PropagationReport:
    """Sort ``classifiers`` by whether their inputs survive old → new."""
    report = PropagationReport()
    for classifier in classifiers:
        changes = _changes_for(classifier, old, new)
        if not changes:
            report.propagated.append(classifier)
        elif any(change.kind == "missing" for change in changes):
            report.broken.append((classifier, changes))
        else:
            report.flagged.append((classifier, changes))
    return report


def _changes_for(classifier: Classifier, old: GTree, new: GTree) -> list[NodeChange]:
    changes: list[NodeChange] = []
    for name in sorted(classifier.input_nodes()):
        if not old.has_node(name):
            # The classifier never matched the old tree on this node; treat
            # as missing so the analyst investigates.
            changes.append(
                NodeChange(name, "missing", "node absent from the old g-tree")
            )
            continue
        old_node = old.node(name)
        if not new.has_node(name):
            changes.append(
                NodeChange(
                    name,
                    "missing",
                    "node removed in the new version",
                    suggestion=_suggest_rename(old_node, new),
                )
            )
            continue
        changes.extend(_compare_nodes(old_node, new.node(name)))
    return changes


def _compare_nodes(old_node: GNode, new_node: GNode) -> list[NodeChange]:
    changes: list[NodeChange] = []
    if old_node.data_type != new_node.data_type:
        changes.append(
            NodeChange(
                old_node.name,
                "type",
                f"stored type changed "
                f"{_type_name(old_node)} -> {_type_name(new_node)}",
            )
        )
    if old_node.options != new_node.options:
        old_values = {value for value, _ in old_node.options}
        new_values = {value for value, _ in new_node.options}
        added = sorted(str(v) for v in new_values - old_values)
        removed = sorted(str(v) for v in old_values - new_values)
        detail = []
        if added:
            detail.append(f"options added: {added}")
        if removed:
            detail.append(f"options removed: {removed}")
        if not detail:
            detail.append("option labels reworded")
        changes.append(NodeChange(old_node.name, "options", "; ".join(detail)))
    if old_node.question != new_node.question:
        changes.append(
            NodeChange(
                old_node.name,
                "question",
                f"question wording changed {old_node.question!r} -> "
                f"{new_node.question!r}",
            )
        )
    return changes


def _suggest_rename(old_node: GNode, new: GTree) -> str | None:
    """Suggest the new-version node that most resembles a removed one.

    Resemblance: identical question wording first, then identical options
    with a similar name.  Returns None when nothing plausible exists.
    """
    candidates = [node for node in new.iter_nodes() if node.stores_data]
    for node in candidates:
        if node.question and node.question == old_node.question:
            return node.name
    for node in candidates:
        if node.options and node.options == old_node.options:
            return node.name
    return None


def _type_name(node: GNode) -> str:
    return node.data_type.value if node.data_type else "none"
