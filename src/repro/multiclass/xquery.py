"""Emit studies as XQuery programs.

The paper's translation recipe (§4.2): "treat each entity classifier as a
for-each to iterate through objects, each domain classifier as a variable
assignment, and each rule in a classifier as a conditional statement."
G-trees are stored as XML, so records are XML documents; the emitted
program is documentation-faithful FLWOR text.
"""

from __future__ import annotations

from repro.expr.ast import (
    BinaryOp,
    Expression,
    FunctionCall,
    Identifier,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.multiclass.classifier import Classifier, EntityClassifier
from repro.multiclass.study import Study, element_column


def study_to_xquery(study: Study) -> str:
    """Render a study as one XQuery program per source and entity."""
    parts: list[str] = [f"(: study {study.name} :)"]
    for binding in study.bindings:
        for entity in study.entities_in_play():
            ec = binding.entity_classifiers.get(entity)
            if ec is None:
                continue
            parts.append(_entity_query(study, binding.source.name, ec))
    return "\n\n".join(parts)


def _entity_query(study: Study, source_name: str, ec: EntityClassifier) -> str:
    lines = [
        f"(: source {source_name}, entity {ec.target_entity} :)",
        f"for $r in doc('{source_name}.xml')//{ec.form}",
        f"where {_xq(ec.condition)}",
    ]
    for element in study.elements_of(ec.target_entity):
        _, attribute, domain = element
        binding_classifiers = _classifier_for(study, source_name, element)
        if binding_classifiers is None:
            continue
        lines.append(
            f"let ${element_column(attribute, domain)} := "
            f"{_classifier_expression(binding_classifiers)}"
        )
    columns = ", ".join(
        f"${element_column(attribute, domain)}"
        for _, attribute, domain in study.elements_of(ec.target_entity)
    )
    lines.append(f"return <{ec.target_entity.lower()}> {{{columns}}} </{ec.target_entity.lower()}>")
    return "\n".join(lines)


def _classifier_for(study: Study, source_name: str, element):
    for binding in study.bindings:
        if binding.source.name == source_name:
            return binding.classifiers.get(element)
    return None


def _classifier_expression(classifier: Classifier) -> str:
    """Each rule becomes a conditional; rules chain as if/else."""
    text = "()"
    for rule in reversed(classifier.rules):
        text = f"if ({_xq(rule.guard)}) then {_xq(rule.output)} else {text}"
    return text


def _xq(expr: Expression) -> str:
    if isinstance(expr, Literal):
        if expr.value is None:
            return "()"
        if isinstance(expr.value, bool):
            return "true()" if expr.value else "false()"
        if isinstance(expr.value, str):
            return f'"{expr.value}"'
        return str(expr.value)
    if isinstance(expr, Identifier):
        return "$r/" + "/".join(expr.path)
    if isinstance(expr, BinaryOp):
        op = {
            "=": "eq",
            "!=": "ne",
            "<": "lt",
            "<=": "le",
            ">": "gt",
            ">=": "ge",
            "AND": "and",
            "OR": "or",
            "+": "+",
            "-": "-",
            "*": "*",
            "/": "div",
            "%": "mod",
            "LIKE": "matches",
        }[expr.op]
        if expr.op == "LIKE":
            return f"matches({_xq(expr.left)}, {_xq(expr.right)})"
        return f"({_xq(expr.left)} {op} {_xq(expr.right)})"
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            return f"not({_xq(expr.operand)})"
        return f"(-{_xq(expr.operand)})"
    if isinstance(expr, FunctionCall):
        args = ", ".join(_xq(a) for a in expr.args)
        return f"{expr.name.lower()}({args})"
    if isinstance(expr, InList):
        tests = " or ".join(f"{_xq(expr.operand)} eq {_xq(i)}" for i in expr.items)
        return f"not({tests})" if expr.negated else f"({tests})"
    if isinstance(expr, IsNull):
        inner = f"empty({_xq(expr.operand)})"
        return f"not({inner})" if expr.negated else inner
    raise TypeError(f"cannot render {type(expr).__name__} to XQuery")
