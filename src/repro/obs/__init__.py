"""Engine-wide observability: tracing, metrics, and plan profiling.

:mod:`repro.obs.trace` is the dependency-free core (spans, tracers, the
off-by-default context switch); :mod:`repro.obs.explain` builds on the
relational layer to offer ``explain_analyze`` — an executed, annotated
plan tree with actual row counts and wall times per operator.

``explain`` imports the relational layer, which itself hooks into
``trace``; to keep that cycle-free this package eagerly exposes only the
trace core and loads :func:`~repro.obs.explain.explain_analyze` lazily.
"""

from typing import Any

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    TreeRecorder,
    current_span,
    current_tracer,
    enabled,
    install,
    span,
    tracing,
    uninstall,
)

__all__ = [
    "NULL_SPAN",
    "ExplainReport",
    "Span",
    "Tracer",
    "TreeRecorder",
    "current_span",
    "current_tracer",
    "enabled",
    "explain_analyze",
    "install",
    "span",
    "tracing",
    "uninstall",
]


def __getattr__(name: str) -> Any:
    if name in ("explain_analyze", "ExplainReport"):
        from repro.obs import explain

        return getattr(explain, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
