"""``explain_analyze``: execute a query under tracing, report the profile.

This is the one-call profiling API over the trace core: it optimizes and
executes a query (or raw plan) with a private tracer installed and
returns an :class:`ExplainReport` bundling the result rows, the final
physical plan, and the recorded span trees — the ``optimize`` span with
its rewrite counters and costed access-path events, and the ``execute``
span whose children mirror the plan tree with actual ``rows_out`` and
wall time per operator.

>>> report = explain_analyze(Query.table("visits").where("age >= 50"), db)
>>> print(report.render())        # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.trace import Span, Tracer, tracing
from repro.relational.algebra import Plan
from repro.relational.cost import estimate_plan_rows
from repro.relational.database import Database
from repro.relational.query import Query, optimize

Row = dict[str, object]


@dataclass
class ExplainReport:
    """Result rows plus the optimizer/executor span trees for one query."""

    rows: list[Row]
    plan: Plan
    tracer: Tracer
    optimized: bool = True
    #: Populated lazily; maps plan nodes to their executor spans.
    _node_spans: list[tuple[Plan, Span]] = field(default_factory=list, repr=False)

    @property
    def optimize_span(self) -> Span | None:
        """The ``optimize`` span (None when ``optimized=False``)."""
        for root in self.tracer.roots:
            if root.name == "optimize":
                return root
        return None

    @property
    def execute_span(self) -> Span | None:
        """The ``execute:*`` root span recorded by the executor."""
        for root in self.tracer.roots:
            if root.name.startswith("execute:"):
                return root
        return None

    @property
    def plan_span(self) -> Span | None:
        """The span of the plan's root operator."""
        executed = self.execute_span
        if executed is not None and executed.children:
            return executed.children[0]
        return None

    def node_spans(self) -> list[tuple[Plan, Span]]:
        """(plan node, executor span) pairs, pre-order over the plan tree.

        The executor's span tree is built by eagerly mirroring the plan
        tree, so both structures walk in lockstep.
        """
        if self._node_spans:
            return self._node_spans
        root_span = self.plan_span
        if root_span is None:
            return []

        def pair(node: Plan, node_span: Span) -> None:
            self._node_spans.append((node, node_span))
            for child, child_span in zip(node.children(), node_span.children):
                pair(child, child_span)

        pair(self.plan, root_span)
        return self._node_spans

    def rewrites_applied(self) -> dict[str, int]:
        """``rewrite.<rule>`` counters from the optimize span, unprefixed."""
        opt = self.optimize_span
        if opt is None:
            return {}
        return {
            key.removeprefix("rewrite."): value
            for key, value in opt.attrs.items()
            if key.startswith("rewrite.")
        }

    def render(self) -> str:
        """Annotated text report: rewrites applied, then the metered plan."""
        lines = [f"rows: {len(self.rows)}"]
        opt = self.optimize_span
        if opt is not None:
            lines.append(opt.render())
        executed = self.execute_span
        if executed is not None:
            lines.append(executed.render())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "row_count": len(self.rows),
            "optimized": self.optimized,
            "spans": [root.to_dict() for root in self.tracer.roots],
        }


def explain_analyze(
    query: Query | Plan,
    db: Database,
    optimized: bool = True,
    executor: str = "batch",
    workers: int | None = None,
) -> ExplainReport:
    """Optimize and execute ``query`` under tracing; return the profile.

    Installs a private tracer for the duration of the call, so this works
    (and stays self-contained) whether or not the caller is already
    tracing.  Pass ``optimized=False`` to profile the naive plan — the
    EXPERIMENTS.md before/after traces are produced exactly that way.
    ``executor="row"`` disables the vectorize pass so the same query can be
    profiled on the row-at-a-time path (batch operator spans additionally
    carry ``batches`` and ``rows_per_batch``); ``executor="parallel"`` runs
    any vectorized subtree morsel-parallel on ``workers`` threads
    (default 4) and annotates per-worker utilization into its span.

    Every operator span that reports actual ``rows_out`` is additionally
    annotated post-execution with the planner's ``estimated_rows`` and the
    resulting ``q_error`` — ``max(est/actual, actual/est)`` with both
    sides floored at one row, so 1.0 is a perfect estimate and the metric
    is symmetric in over- and under-estimation.
    """
    if executor not in ("row", "batch", "parallel"):
        raise ValueError(
            f"executor must be 'row', 'batch', or 'parallel', got {executor!r}"
        )
    parallel = (workers or 4) if executor == "parallel" else None
    plan = query.plan if isinstance(query, Query) else query
    tracer = Tracer()
    with tracing(tracer):
        final = (
            optimize(plan, db, vectorize=executor != "row") if optimized else plan
        )
        rows = final.execute(db, parallel=parallel)
    report = ExplainReport(rows=rows, plan=final, tracer=tracer, optimized=optimized)
    _annotate_estimates(report, db)
    return report


def _annotate_estimates(report: ExplainReport, db: Database) -> None:
    """Attach ``estimated_rows``/``q_error`` to every measured operator span."""
    memo: dict[int, float] = {}
    for node, span in report.node_spans():
        actual = span.attrs.get("rows_out")
        if not isinstance(actual, int):
            continue
        estimate = estimate_plan_rows(node, db, memo)
        floored_estimate = max(estimate, 1.0)
        floored_actual = max(float(actual), 1.0)
        span.set("estimated_rows", round(estimate, 1))
        span.set(
            "q_error",
            round(
                max(
                    floored_estimate / floored_actual,
                    floored_actual / floored_estimate,
                ),
                2,
            ),
        )
