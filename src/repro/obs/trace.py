"""Span-based tracing: the engine's zero-dependency observability core.

A :class:`Span` is one timed region of work — a plan node's streaming, an
optimizer pass, an ETL step — carrying counters/gauges (``attrs``), point
events, and child spans.  A :class:`Tracer` collects spans into trees.

Tracing is **off by default** and contract-bound to stay cheap when off:
the active tracer lives in a :data:`contextvars.ContextVar` whose default
is ``None``, and every hook in the engine reduces to one ``None`` check
per *operator or step* (never per row) when disabled.  The bench suite
measures this (``bench_relational_core.py`` filtered-scan, <2% budget).

Three ways to use it::

    with tracing() as tracer:            # install a tracer for a block
        rows = query.execute(db)         # engine hooks record into it
    print(tracer.root.render())

    with span("materialize.build") as s: # explicit spans (no-op when off)
        s.set("decision", "incremental")

    report = explain_analyze(query, db)  # repro.obs.explain, one-call API

Span context managers nest via a per-tracer stack and are meant for
single-threaded use; cross-thread work (the parallel ETL engine) records
raw timings and assembles its span tree after the run — worker threads
start with a fresh context and therefore see tracing as disabled.

Exports are JSON (``to_dict``/``to_json``), an annotated tree
(``render``), and collapsed-stack flamegraph text (``flamegraph_lines``),
one line per span path weighted by self time in microseconds.
"""

from __future__ import annotations

import json
from contextlib import AbstractContextManager
from contextvars import ContextVar, Token
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterator


@dataclass
class Span:
    """One timed region of work, with counters, events, and children."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    #: ``perf_counter`` at open; spans assembled post-hoc may leave it 0.
    start_s: float = 0.0
    #: Accumulated wall time, inclusive of children.
    duration_s: float = 0.0

    # -- counters / gauges ---------------------------------------------------

    def incr(self, key: str, n: int = 1) -> None:
        """Increment a counter attribute."""
        self.attrs[key] = self.attrs.get(key, 0) + n

    def set(self, key: str, value: object) -> None:
        """Set a gauge/annotation attribute."""
        self.attrs[key] = value

    def event(self, name: str, **data: object) -> None:
        """Record a point event (e.g. one costed access-path decision)."""
        self.events.append({"event": name, **data})

    def child(self, name: str, **attrs: object) -> "Span":
        """Append and return a manually-managed child span."""
        added = Span(name, attrs=dict(attrs))
        self.children.append(added)
        return added

    # -- structure -----------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span (pre-order) whose name equals or prefixes ``name``."""
        for candidate in self.walk():
            if candidate.name == name or candidate.name.startswith(name):
                return candidate
        return None

    def self_s(self) -> float:
        """Wall time exclusive of children (floored at zero)."""
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_s * 1000, 3),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.events:
            out["events"] = list(self.events)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self, indent: int = 0) -> str:
        """Annotated tree text: one line per span with time and attrs."""
        pad = "  " * indent
        parts = [f"{pad}{self.name}  {self.duration_s * 1000:.3f} ms"]
        if self.attrs:
            inline = ", ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
            parts[0] += f"  [{inline}]"
        for entry in self.events:
            data = ", ".join(f"{k}={v}" for k, v in entry.items() if k != "event")
            parts.append(f"{pad}  * {entry['event']}: {data}")
        for child in self.children:
            parts.append(child.render(indent + 1))
        return "\n".join(parts)

    def flamegraph_lines(self) -> list[str]:
        """Collapsed-stack lines (``a;b;c <self-time-us>``) for flamegraphs."""
        lines: list[str] = []

        def visit(span: "Span", prefix: str) -> None:
            path = f"{prefix};{span.name}" if prefix else span.name
            lines.append(f"{path} {int(span.self_s() * 1_000_000)}")
            for child in span.children:
                visit(child, path)

        visit(self, "")
        return lines


class _NullSpan(Span):
    """The shared do-nothing span handed out when tracing is disabled."""

    def __init__(self) -> None:
        super().__init__("null")

    def incr(self, key: str, n: int = 1) -> None:
        pass

    def set(self, key: str, value: object) -> None:
        pass

    def event(self, name: str, **data: object) -> None:
        pass

    def child(self, name: str, **attrs: object) -> "Span":
        return self


#: Singleton no-op span; ``span(...)`` yields it when tracing is off.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees for one traced region (one install)."""

    __slots__ = ("roots", "_stack")

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def root(self) -> Span | None:
        """The first top-level span, if any."""
        return self.roots[0] if self.roots else None

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(
        self, name: str, parent: Span | None = None, **attrs: object
    ) -> "_SpanHandle":
        """Context manager opening a child of ``parent`` (default: current)."""
        return _SpanHandle(self, name, parent, attrs)

    def attach(self, span: Span) -> None:
        """Adopt an externally-assembled span tree at the current position."""
        parent = self.current()
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)

    def to_dict(self) -> dict[str, Any]:
        return {"spans": [span.to_dict() for span in self.roots]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)


class _SpanHandle(AbstractContextManager[Span]):
    """Opens a span on enter, closes (duration + stack pop) on exit."""

    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "_span")

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        parent: Span | None,
        attrs: dict[str, object],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        opened = Span(self._name, attrs=dict(self._attrs), start_s=perf_counter())
        parent = self._parent or self._tracer.current()
        if parent is not None:
            parent.children.append(opened)
        else:
            self._tracer.roots.append(opened)
        self._tracer._stack.append(opened)
        self._span = opened
        return opened

    def __exit__(self, *exc_info: object) -> None:
        closed = self._span
        if closed is None:
            return
        closed.duration_s += perf_counter() - closed.start_s
        stack = self._tracer._stack
        if stack and stack[-1] is closed:
            stack.pop()


class _NullHandle(AbstractContextManager[Span]):
    """Context manager yielding :data:`NULL_SPAN`; used when disabled."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_HANDLE = _NullHandle()

#: The active tracer.  ``None`` (the default) is the module's off switch:
#: every engine hook checks this exactly once per operator/step.
_ACTIVE: ContextVar[Tracer | None] = ContextVar("repro_obs_tracer", default=None)


def enabled() -> bool:
    """True when a tracer is installed in the current context."""
    return _ACTIVE.get() is not None


def current_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is disabled."""
    return _ACTIVE.get()


def current_span() -> Span | None:
    """The innermost open span of the installed tracer, if any."""
    tracer = _ACTIVE.get()
    return tracer.current() if tracer is not None else None


def install(tracer: Tracer) -> Token[Tracer | None]:
    """Install ``tracer`` for the current context; returns the reset token."""
    return _ACTIVE.set(tracer)


def uninstall(token: Token[Tracer | None]) -> None:
    """Restore the tracer that was active before :func:`install`."""
    _ACTIVE.reset(token)


class _Tracing(AbstractContextManager[Tracer]):
    """``with tracing() as tracer`` — install a fresh tracer for a block."""

    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._tracer = tracer if tracer is not None else Tracer()
        self._token: Token[Tracer | None] | None = None

    def __enter__(self) -> Tracer:
        self._token = install(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info: object) -> None:
        if self._token is not None:
            uninstall(self._token)
            self._token = None


def tracing(tracer: Tracer | None = None) -> _Tracing:
    """Context manager installing (and on exit removing) a tracer."""
    return _Tracing(tracer)


def span(name: str, **attrs: object) -> AbstractContextManager[Span]:
    """Open a span on the active tracer; a shared no-op when disabled."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_HANDLE
    return tracer.span(name, **attrs)


class TreeRecorder:
    """Mirrors a static operator tree into spans and meters its iterators.

    Built once per traced execution: the plan tree is walked up front so
    the span tree reflects operator structure even though streaming
    interleaves the operators' actual work.  Each node's iterator is then
    wrapped to accumulate wall time (inclusive of children, since a pull
    recurses) and a ``rows_out`` counter into its own span.

    Spans are keyed by node identity; a node object shared between two
    tree positions accumulates into one span (counts then sum).
    """

    __slots__ = ("_spans",)

    def __init__(
        self,
        root: object,
        parent_span: Span,
        label: Callable[[Any], str],
        children: Callable[[Any], tuple[Any, ...]],
    ) -> None:
        self._spans: dict[int, tuple[object, Span]] = {}

        def build(node: object, parent: Span) -> None:
            node_span = parent.child(label(node))
            self._spans.setdefault(id(node), (node, node_span))
            for child in children(node):
                build(child, node_span)

        build(root, parent_span)

    def span_of(self, node: object) -> Span | None:
        entry = self._spans.get(id(node))
        if entry is not None and entry[0] is node:
            return entry[1]
        return None

    def annotate(self, node: object, **attrs: object) -> None:
        """Attach gauges to a node's span (no-op for unknown nodes)."""
        node_span = self.span_of(node)
        if node_span is not None:
            node_span.attrs.update(attrs)

    def wrap(
        self, node: object, iterator: Iterator[Any], setup_s: float = 0.0
    ) -> Iterator[Any]:
        """Meter ``iterator`` into the node's span (rows_out + wall time)."""
        node_span = self.span_of(node)
        if node_span is None:
            return iterator
        node_span.duration_s += setup_s

        def generate() -> Iterator[Any]:
            rows = 0
            timer = perf_counter
            started = timer()
            try:
                for item in iterator:
                    node_span.duration_s += timer() - started
                    rows += 1
                    yield item
                    started = timer()
                node_span.duration_s += timer() - started
            finally:
                node_span.attrs["rows_out"] = node_span.attrs.get("rows_out", 0) + rows

        return generate()
