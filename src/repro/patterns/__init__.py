"""Database design patterns (paper Table 1 and §4.2).

A *design pattern* encapsulates one systematic difference between a
reporting tool's naive schema (one table per screen, one column per
control) and its physical database layout.  Each pattern is bidirectional:

* a **write path** used by the simulated reporting tool when a clinician
  saves a screen, and
* a **read path**: a relational-algebra rewrite GUAVA uses to reconstruct
  the naive relation, so g-tree queries can be translated all the way down
  to the physical tables.

Patterns compose into a :class:`~repro.patterns.chain.PatternChain`; the
paper: "several put together describe how to translate a query against the
g-tree into one against the database."  The paper's prototype implements
the patterns of Table 1 and reports identifying 11 in total; this library
implements all eleven (see :data:`repro.patterns.catalog.ALL_PATTERNS`).
"""

from repro.patterns.base import DesignPattern, WriteEmit
from repro.patterns.chain import PatternChain
from repro.patterns.naive import NaivePattern
from repro.patterns.merge import MergePattern
from repro.patterns.split import SplitPattern
from repro.patterns.generic import GenericPattern
from repro.patterns.audit import AuditPattern
from repro.patterns.lookup import LookupPattern
from repro.patterns.encoding import EncodingPattern
from repro.patterns.multivalue import MultivaluePattern
from repro.patterns.versioned import VersionedPattern
from repro.patterns.blob import BlobPattern
from repro.patterns.partition import PartitionPattern
from repro.patterns.catalog import ALL_PATTERNS, TABLE1_PATTERNS, pattern_summary

__all__ = [
    "ALL_PATTERNS",
    "AuditPattern",
    "BlobPattern",
    "DesignPattern",
    "EncodingPattern",
    "GenericPattern",
    "LookupPattern",
    "MergePattern",
    "MultivaluePattern",
    "NaivePattern",
    "PartitionPattern",
    "PatternChain",
    "SplitPattern",
    "TABLE1_PATTERNS",
    "VersionedPattern",
    "WriteEmit",
    "pattern_summary",
]
