"""The Audit pattern: soft deletes behind a sentinel column."""

from __future__ import annotations

from typing import Mapping

from repro.expr.ast import BinaryOp, Identifier, Literal
from repro.patterns.base import ChildPlan, DesignPattern, Schemas, WriteEmit
from repro.relational.algebra import Plan, Project, Select
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


class AuditPattern(DesignPattern):
    """No rows are ever deleted; a sentinel column deprecates them.

    Read path (Table 1): "Pull only data where C = 0 (0 is a sentinel to
    indicate that the row has not been deleted)."  The reporting tool only
    displays current data; deprecated rows remain for audit.

    ``tables`` limits the pattern to specific upstream tables; by default
    every table at this level gains the sentinel.
    """

    name = "audit"
    provides_audit = True

    def __init__(self, deleted_column: str = "is_deleted", tables: list[str] | None = None):
        self.deleted_column = deleted_column
        self.tables = list(tables) if tables is not None else None

    def _applies(self, table: str) -> bool:
        return self.tables is None or table in self.tables

    def apply_schema(self, schemas: Schemas) -> Schemas:
        out: Schemas = {}
        for name, schema in schemas.items():
            if not self._applies(name):
                out[name] = schema
                continue
            if schema.has_column(self.deleted_column):
                out[name] = schema
                continue
            # The sentinel joins the primary key's world: never NULL.
            sentinel = Column(self.deleted_column, DataType.BOOLEAN, nullable=False)
            # Deprecation rewrites rows in place, so the original primary
            # key stays valid (one live row per key).
            out[name] = TableSchema(
                name, schema.columns + (sentinel,), schema.primary_key
            )
        return out

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        if not self._applies(table):
            return [(table, dict(row))]
        stamped = dict(row)
        stamped[self.deleted_column] = False
        return [(table, stamped)]

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        if not self._applies(table):
            return child(table)
        live = Select(
            child(table),
            BinaryOp("=", Identifier.of(self.deleted_column), Literal(False)),
        )
        return Project(live, schemas[table].column_names)

    # locate: identity — the sentinel is applied by PatternChain.soft_delete.
