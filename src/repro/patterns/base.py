"""The design-pattern abstraction.

A pattern transforms a level of *virtual schemas* (initially the tool's
naive schemas) into the next, more physical level.  The three directions:

* ``apply_schema``  — schema level: upstream table schemas → downstream.
* ``write``         — data level: one upstream row → downstream rows.
* ``plan``          — query level: a relational-algebra plan computing an
  upstream relation from plans over downstream relations (the "data
  transformation" column of the paper's Table 1, inverted for reading).
* ``locate``        — provenance level: map an upstream record locator to
  downstream locators, so soft deletes (Audit pattern) and corrections can
  find every physical row a screen produced.

The default implementations are identity/pass-through, so a pattern only
overrides behaviour for tables it actually rearranges.
"""

from __future__ import annotations

import abc
from typing import Callable, Mapping

from repro.relational.algebra import Plan
from repro.relational.schema import TableSchema

Row = dict[str, object]
Schemas = dict[str, TableSchema]
#: (table name, row) pairs a write emits downstream.
WriteEmit = list[tuple[str, Row]]
#: Equality locator: table → column/value pairs identifying rows.
Locator = tuple[str, dict[str, object]]
#: Provides the downstream plan for a downstream table name.
ChildPlan = Callable[[str], Plan]


class DesignPattern(abc.ABC):
    """One schema design pattern; see module docstring for the contract."""

    #: Short identifier used by the catalog and benchmark reports.
    name: str = "abstract"

    #: True when this pattern gives the source soft-delete semantics.
    provides_audit: bool = False

    def apply_schema(self, schemas: Schemas) -> Schemas:
        """Downstream schemas for the given upstream schemas.

        Must be pure: called at deploy time and whenever a chain describes
        itself.  Tables the pattern does not touch pass through unchanged.
        """
        return dict(schemas)

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        """Transform one upstream row into downstream writes.

        ``schemas`` is the *upstream* schema level, for patterns that need
        column metadata (types, ordering).
        """
        return [(table, dict(row))]

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        """A plan computing the upstream relation ``table``.

        ``child(name)`` returns the plan for downstream relation ``name``
        (eventually a :class:`Scan` of a physical table).
        """
        return child(table)

    def locate(self, table: str, key: dict[str, object]) -> list[Locator]:
        """Downstream locators for upstream rows matching ``key``."""
        return [(table, dict(key))]

    def describe(self) -> str:
        """One-line description for catalogs and reports."""
        doc = (self.__doc__ or "").strip().splitlines()
        return f"{self.name}: {doc[0] if doc else ''}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
