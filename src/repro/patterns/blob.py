"""The Blob pattern: whole screens serialized into one document column."""

from __future__ import annotations

import json
from datetime import date
from typing import Mapping

from repro.errors import PatternConfigError
from repro.patterns.base import ChildPlan, DesignPattern, Schemas, WriteEmit
from repro.relational.algebra import Coerce, Compute, Plan, Project
from repro.expr.ast import FunctionCall, Identifier, Literal
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


class BlobPattern(DesignPattern):
    """Store each saved screen as ``(key, JSON document)``.

    Several commercial reporting tools persist forms as serialized
    documents (XML/JSON) rather than columns.  The read path extracts
    fields with ``JSON_GET`` and coerces them back to the naive types —
    exactly the kind of relationship only GUAVA's pattern machinery can
    surface to an analyst.
    """

    name = "blob"

    def __init__(self, forms: list[str], key: str = "record_id", blob_column: str = "document"):
        if not forms:
            raise PatternConfigError("blob needs at least one form")
        self.forms = list(forms)
        self.key = key
        self.blob_column = blob_column

    def apply_schema(self, schemas: Schemas) -> Schemas:
        missing = [form for form in self.forms if form not in schemas]
        if missing:
            raise PatternConfigError(f"blob references unknown tables {missing}")
        out = dict(schemas)
        for form in self.forms:
            key_column = schemas[form].column(self.key)
            out[form] = TableSchema(
                form,
                (key_column, Column(self.blob_column, DataType.TEXT, nullable=False)),
                primary_key=(self.key,),
            )
        return out

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        if table not in self.forms:
            return [(table, dict(row))]
        payload = {
            column: _jsonable(value)
            for column, value in row.items()
            if column != self.key and value is not None
        }
        return [
            (
                table,
                {
                    self.key: row.get(self.key),
                    self.blob_column: json.dumps(payload, sort_keys=True),
                },
            )
        ]

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        if table not in self.forms:
            return child(table)
        schema = schemas[table]
        fields = tuple(c for c in schema.column_names if c != self.key)
        derivations = tuple(
            (
                column,
                FunctionCall(
                    "JSON_GET", (Identifier.of(self.blob_column), Literal(column))
                ),
            )
            for column in fields
        )
        extracted = Compute(child(table), derivations)
        coerced = Coerce(
            extracted, tuple((c, schema.column(c).dtype) for c in fields)
        )
        return Project(coerced, schema.column_names)


def _jsonable(value: object) -> object:
    if isinstance(value, date):
        return value.isoformat()
    return value
