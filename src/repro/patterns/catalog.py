"""Catalog of the implemented design patterns.

The paper: "Though we have identified 11 distinct database patterns so
far, our initial prototype only considers the patterns listed in Table 1."
This library implements the Table 1 five and six more that complete a
plausible set of eleven, each observed in real clinical reporting-tool
backends (code tables, in-place encodings, one-to-many answer tables,
version stamps, serialized documents, horizontal partitions).
"""

from __future__ import annotations

from repro.patterns.audit import AuditPattern
from repro.patterns.blob import BlobPattern
from repro.patterns.encoding import EncodingPattern
from repro.patterns.generic import GenericPattern
from repro.patterns.lookup import LookupPattern
from repro.patterns.merge import MergePattern
from repro.patterns.multivalue import MultivaluePattern
from repro.patterns.naive import NaivePattern
from repro.patterns.partition import PartitionPattern
from repro.patterns.split import SplitPattern
from repro.patterns.versioned import VersionedPattern

#: The five patterns of the paper's Table 1, in table order.
TABLE1_PATTERNS: tuple[type, ...] = (
    NaivePattern,
    MergePattern,
    SplitPattern,
    GenericPattern,
    AuditPattern,
)

#: All eleven implemented patterns.
ALL_PATTERNS: tuple[type, ...] = TABLE1_PATTERNS + (
    LookupPattern,
    EncodingPattern,
    MultivaluePattern,
    VersionedPattern,
    BlobPattern,
    PartitionPattern,
)

#: Table 1-style description per pattern: (name, description, read-path).
_SUMMARY: dict[str, tuple[str, str]] = {
    "naive": (
        "No transformations are applied to the data.",
        "None — this is just the in-memory database.",
    ),
    "merge": (
        "Data from several forms are drawn from the same table.",
        "Pull only data where C = form name (C holds the form).",
    ),
    "split": (
        "Attributes from a single form are distributed over several tables.",
        "Join the part tables on the record key.",
    ),
    "generic": (
        "Each row represents an attribute (Entity, Attribute, Value).",
        "Pivot attribute/value rows back to one column per attribute.",
    ),
    "audit": (
        "No rows are ever deleted; a sentinel column deprecates them.",
        "Pull only data where the sentinel shows the row is live.",
    ),
    "lookup": (
        "Choice values stored as integer codes with code tables.",
        "Join each code table back and restore the label column.",
    ),
    "encoding": (
        "Values stored as in-place vendor codes with no code table.",
        "Decode through the code book captured in the g-tree.",
    ),
    "multivalue": (
        "Multi-select answers stored as one-to-many child rows.",
        "Re-aggregate child rows in position order per record.",
    ),
    "versioned": (
        "Rows stamped with the writing tool's version.",
        "Project the stamp away; it feeds classifier propagation.",
    ),
    "blob": (
        "Whole screens serialized into one document column.",
        "Extract fields with JSON_GET and coerce to naive types.",
    ),
    "partition": (
        "Rows split across tables by a routing column's value.",
        "Union all partitions.",
    ),
}


def pattern_summary() -> list[dict[str, str]]:
    """Rows for the Table 1 reproduction: every implemented pattern."""
    rows = []
    for cls in ALL_PATTERNS:
        name = cls.name
        description, read_path = _SUMMARY[name]
        rows.append(
            {
                "pattern": name,
                "in_table_1": "yes" if cls in TABLE1_PATTERNS else "no",
                "description": description,
                "read_path": read_path,
            }
        )
    return rows
