"""Composing design patterns into a source's storage mapping."""

from __future__ import annotations

from typing import Mapping

from repro.errors import PatternConfigError, PatternWriteError
from repro.patterns.base import DesignPattern, Row, Schemas
from repro.relational.algebra import Plan, Scan
from repro.relational.database import Database
from repro.relational.schema import TableSchema


class PatternChain:
    """An ordered list of design patterns mapping naive ↔ physical.

    Level 0 is the tool's naive schemas; each pattern maps its level to the
    next; the last level is the physical database layout.

    * :meth:`deploy` creates the physical tables in a database.
    * :meth:`write` pushes one saved screen down through every pattern.
    * :meth:`plan_for` builds the algebra plan that reconstructs a form's
      naive relation from the physical tables — the read path GUAVA's
      query translation composes with.
    * :meth:`soft_delete` deprecates a record through the chain; a chain
      containing an Audit pattern sets the sentinel column, otherwise the
      physical rows are removed.
    """

    def __init__(self, naive_schemas: Mapping[str, TableSchema], patterns: list[DesignPattern]):
        if not naive_schemas:
            raise PatternConfigError("chain requires at least one naive schema")
        self.patterns = list(patterns)
        # Precompute schemas per level: levels[0] = naive, levels[-1] = physical.
        self.levels: list[Schemas] = [dict(naive_schemas)]
        for pattern in self.patterns:
            self.levels.append(pattern.apply_schema(self.levels[-1]))

    # -- schema ------------------------------------------------------------

    @property
    def naive_schemas(self) -> Schemas:
        return dict(self.levels[0])

    @property
    def physical_schemas(self) -> Schemas:
        return dict(self.levels[-1])

    def deploy(self, db: Database) -> None:
        """Create every physical table (idempotent per schema)."""
        for schema in self.physical_schemas.values():
            db.ensure_table(schema)

    # -- write path -----------------------------------------------------------

    def write(self, db: Database, form_name: str, naive_row: Mapping[str, object]) -> int:
        """Store one saved screen; returns physical rows written."""
        if form_name not in self.levels[0]:
            raise PatternWriteError(f"chain has no naive table {form_name!r}")
        pairs: list[tuple[str, Row]] = [(form_name, dict(naive_row))]
        for level, pattern in enumerate(self.patterns):
            next_pairs: list[tuple[str, Row]] = []
            for table, row in pairs:
                next_pairs.extend(pattern.write(table, row, self.levels[level]))
            pairs = next_pairs
        for table, row in pairs:
            db.table(table).insert(row)
        return len(pairs)

    def writer(self, db: Database):
        """A ``(form_name, naive_row)`` callback for data-entry sessions."""

        def _write(form_name: str, naive_row: Mapping[str, object]) -> None:
            self.write(db, form_name, naive_row)

        return _write

    # -- read path --------------------------------------------------------------

    def plan_for(self, form_name: str) -> Plan:
        """Algebra plan reconstructing the naive relation of ``form_name``."""
        if form_name not in self.levels[0]:
            raise PatternConfigError(f"chain has no naive table {form_name!r}")
        return self._plan(0, form_name)

    def _plan(self, level: int, table: str) -> Plan:
        if level == len(self.patterns):
            return Scan(table)
        pattern = self.patterns[level]
        return pattern.plan(
            table, lambda name: self._plan(level + 1, name), self.levels[level]
        )

    def read_naive(self, db: Database, form_name: str) -> list[Row]:
        """Execute the read path: the naive relation, reconstructed."""
        return self.plan_for(form_name).execute(db)

    # -- provenance / deletion ------------------------------------------------

    @property
    def provides_audit(self) -> bool:
        return any(pattern.provides_audit for pattern in self.patterns)

    def locate_physical(
        self, form_name: str, record_id: object
    ) -> list[tuple[str, dict[str, object]]]:
        """Physical locators for one naive record."""
        from repro.ui.form import RECORD_ID

        locators: list[tuple[str, dict[str, object]]] = [
            (form_name, {RECORD_ID: record_id})
        ]
        for pattern in self.patterns:
            next_locators: list[tuple[str, dict[str, object]]] = []
            for table, key in locators:
                next_locators.extend(pattern.locate(table, key))
            locators = next_locators
        return locators

    def soft_delete(self, db: Database, form_name: str, record_id: object) -> int:
        """Deprecate one record (Audit sentinel) or delete it physically."""
        affected = 0
        for table, key in self.locate_physical(form_name, record_id):
            if not db.has_table(table):
                continue
            target = db.table(table)

            def matches(row: Row, key: dict[str, object] = key) -> bool:
                return all(row.get(column) == value for column, value in key.items())

            if self.provides_audit and target.schema.has_column(_audit_column(self)):
                affected += target.update(matches, {_audit_column(self): True})
            else:
                affected += target.delete(matches)
        return affected

    # -- description ---------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line summary: pattern stack and physical layout."""
        lines = [f"PatternChain ({len(self.patterns)} pattern(s)):"]
        for pattern in self.patterns:
            lines.append(f"  - {pattern.describe()}")
        lines.append("  physical tables:")
        for schema in self.physical_schemas.values():
            lines.append(f"    {schema}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        names = [pattern.name for pattern in self.patterns]
        return f"PatternChain({names})"


def _audit_column(chain: PatternChain) -> str:
    for pattern in chain.patterns:
        if pattern.provides_audit:
            return getattr(pattern, "deleted_column", "is_deleted")
    return "is_deleted"
