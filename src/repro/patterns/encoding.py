"""The Encoding pattern: values stored as opaque in-place codes."""

from __future__ import annotations

from typing import Mapping

from repro.errors import PatternConfigError, PatternWriteError
from repro.expr.ast import BinaryOp, Expression, FunctionCall, Identifier, Literal
from repro.patterns.base import ChildPlan, DesignPattern, Schemas, WriteEmit
from repro.relational.algebra import Compute, Plan, Project
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


class EncodingPattern(DesignPattern):
    """Columns hold vendor codes instead of the naive values.

    Classic examples: booleans stored as ``'Y'``/``'N'``, options stored as
    ``1``/``2``/``3``.  Unlike :class:`LookupPattern` there is no join
    table — the code book lives only in the application (and, through
    GUAVA, in the g-tree).  ``encodings`` maps ``(table, column)`` to a
    ``{naive value: stored code}`` dict.
    """

    name = "encoding"

    def __init__(self, encodings: Mapping[tuple[str, str], Mapping[object, object]]):
        if not encodings:
            raise PatternConfigError("encoding needs at least one column mapping")
        self.encodings = {key: dict(mapping) for key, mapping in encodings.items()}
        for (table, column), mapping in self.encodings.items():
            if not mapping:
                raise PatternConfigError(f"empty code book for {table}.{column}")
            codes = list(mapping.values())
            if len(set(map(repr, codes))) != len(codes):
                raise PatternConfigError(
                    f"{table}.{column}: distinct values share a code"
                )

    def _columns_of(self, table: str) -> dict[str, dict[object, object]]:
        return {
            column: mapping
            for (t, column), mapping in self.encodings.items()
            if t == table
        }

    @staticmethod
    def _code_type(mapping: Mapping[object, object]) -> DataType:
        codes = list(mapping.values())
        if all(isinstance(code, int) and not isinstance(code, bool) for code in codes):
            return DataType.INTEGER
        if all(isinstance(code, str) for code in codes):
            return DataType.TEXT
        raise PatternConfigError("code book mixes integer and text codes")

    def apply_schema(self, schemas: Schemas) -> Schemas:
        for (table, column) in self.encodings:
            if table not in schemas:
                raise PatternConfigError(f"encoding references unknown table {table!r}")
            if not schemas[table].has_column(column):
                raise PatternConfigError(
                    f"encoding references unknown column {table}.{column}"
                )
        out: Schemas = {}
        for name, schema in schemas.items():
            mapped = self._columns_of(name)
            if not mapped:
                out[name] = schema
                continue
            new_columns = []
            for column in schema.columns:
                if column.name in mapped:
                    new_columns.append(
                        Column(column.name, self._code_type(mapped[column.name]), True)
                    )
                else:
                    new_columns.append(column)
            out[name] = TableSchema(name, tuple(new_columns), schema.primary_key)
        return out

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        mapped = self._columns_of(table)
        if not mapped:
            return [(table, dict(row))]
        encoded = dict(row)
        for column, mapping in mapped.items():
            value = encoded.get(column)
            if value is None:
                continue
            if value not in mapping:
                raise PatternWriteError(
                    f"{table}.{column}: value {value!r} has no code"
                )
            encoded[column] = mapping[value]
        return [(table, encoded)]

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        mapped = self._columns_of(table)
        if not mapped:
            return child(table)
        derivations = []
        for column, mapping in mapped.items():
            derivations.append((column, _decode_expression(column, mapping)))
        decoded = Compute(child(table), tuple(derivations))
        return Project(decoded, schemas[table].column_names)


def _decode_expression(column: str, mapping: Mapping[object, object]) -> Expression:
    """Nested IIF chain turning stored codes back into naive values."""
    expression: Expression = Literal(None)
    for naive_value, code in reversed(list(mapping.items())):
        test = BinaryOp("=", Identifier.of(column), Literal(code))
        expression = FunctionCall("IIF", (test, Literal(naive_value), expression))
    return expression
