"""The Generic pattern: Entity–Attribute–Value physical layout.

"The most frequent type of schematic heterogeneity arises because
contributors often use a generic database layout, where each row in the
database looks like Entity, Attribute, Value."  Read path (Table 1):
"Execute an un-pivot operation" — inverted here, reading back requires the
*pivot*.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import PatternConfigError
from repro.expr.ast import BinaryOp, Identifier, Literal
from repro.patterns.base import ChildPlan, DesignPattern, Schemas, WriteEmit
from repro.relational.algebra import Coerce, Pivot, Plan, Project, Select
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


class GenericPattern(DesignPattern):
    """Store form rows as (entity, record key, attribute, value-as-text).

    ``forms`` lists the naive tables folded into the EAV table; others
    pass through.  Values are stored as text; the read path pivots back to
    one column per attribute and coerces to the naive types.  NULL-valued
    attributes are not stored (the usual EAV economy), which the pivot's
    NULL-filling makes lossless.
    """

    name = "generic"

    def __init__(
        self,
        forms: list[str],
        eav_table: str = "eav",
        key: str = "record_id",
        entity_column: str = "entity",
        attribute_column: str = "attribute",
        value_column: str = "value",
    ):
        if not forms:
            raise PatternConfigError("generic needs at least one form")
        self.forms = list(forms)
        self.eav_table = eav_table
        self.key = key
        self.entity_column = entity_column
        self.attribute_column = attribute_column
        self.value_column = value_column

    def apply_schema(self, schemas: Schemas) -> Schemas:
        missing = [form for form in self.forms if form not in schemas]
        if missing:
            raise PatternConfigError(f"generic references unknown tables {missing}")
        out = {name: schema for name, schema in schemas.items() if name not in self.forms}
        if self.eav_table in out:
            raise PatternConfigError(f"EAV table {self.eav_table!r} collides")
        key_type = schemas[self.forms[0]].column(self.key).dtype
        out[self.eav_table] = TableSchema(
            self.eav_table,
            (
                Column(self.entity_column, DataType.TEXT, nullable=False),
                Column(self.key, key_type, nullable=False),
                Column(self.attribute_column, DataType.TEXT, nullable=False),
                Column(self.value_column, DataType.TEXT, nullable=True),
            ),
        )
        return out

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        if table not in self.forms:
            return [(table, dict(row))]
        emitted: WriteEmit = []
        for column, value in row.items():
            if column == self.key or value is None:
                continue
            emitted.append(
                (
                    self.eav_table,
                    {
                        self.entity_column: table,
                        self.key: row.get(self.key),
                        self.attribute_column: column,
                        self.value_column: DataType.TEXT.coerce(value),
                    },
                )
            )
        if not emitted:
            # A screen saved with every question unanswered still exists;
            # record its key under a reserved attribute so reads see it.
            emitted.append(
                (
                    self.eav_table,
                    {
                        self.entity_column: table,
                        self.key: row.get(self.key),
                        self.attribute_column: "__present__",
                        self.value_column: None,
                    },
                )
            )
        return emitted

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        if table not in self.forms:
            return child(table)
        schema = schemas[table]
        attributes = tuple(c for c in schema.column_names if c != self.key)
        mine = Select(
            child(self.eav_table),
            BinaryOp("=", Identifier.of(self.entity_column), Literal(table)),
        )
        pivoted = Pivot(
            mine,
            key_columns=(self.key,),
            attribute_column=self.attribute_column,
            value_column=self.value_column,
            attributes=attributes,
        )
        coerced = Coerce(
            pivoted,
            tuple((c, schema.column(c).dtype) for c in attributes),
        )
        return Project(coerced, schema.column_names)

    def locate(self, table: str, key: dict[str, object]):
        if table not in self.forms:
            return [(table, dict(key))]
        eav_key = dict(key)
        eav_key[self.entity_column] = table
        return [(self.eav_table, eav_key)]
