"""The Lookup pattern: choice values stored as codes with code tables."""

from __future__ import annotations

from typing import Mapping

from repro.errors import PatternConfigError
from repro.patterns.base import ChildPlan, DesignPattern, Schemas, WriteEmit
from repro.relational.algebra import Join, Plan, Project, Rename
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


class LookupPattern(DesignPattern):
    """Replace text columns with integer codes plus a lookup table each.

    ``columns`` maps ``(table, column)`` to a lookup-table name.  Codes are
    assigned on first sight at write time (as vendor tools do); the read
    path joins the code table back and restores the original column name.
    """

    name = "lookup"

    def __init__(self, columns: Mapping[tuple[str, str], str], key: str = "record_id"):
        if not columns:
            raise PatternConfigError("lookup needs at least one column mapping")
        self.columns = dict(columns)
        self.key = key
        lookup_names = list(self.columns.values())
        if len(set(lookup_names)) != len(lookup_names):
            raise PatternConfigError("lookup tables must be distinct per column")
        # value -> code assignments, per lookup table (write-time state).
        self._codes: dict[str, dict[str, int]] = {name: {} for name in lookup_names}

    def _columns_of(self, table: str) -> dict[str, str]:
        return {
            column: lookup
            for (t, column), lookup in self.columns.items()
            if t == table
        }

    def apply_schema(self, schemas: Schemas) -> Schemas:
        out: Schemas = {}
        for name, schema in schemas.items():
            mapped = self._columns_of(name)
            if not mapped:
                out[name] = schema
                continue
            new_columns: list[Column] = []
            for column in schema.columns:
                if column.name in mapped:
                    if column.dtype is not DataType.TEXT:
                        raise PatternConfigError(
                            f"lookup column {name}.{column.name} must be TEXT"
                        )
                    new_columns.append(
                        Column(f"{column.name}_code", DataType.INTEGER, nullable=True)
                    )
                else:
                    new_columns.append(column)
            out[name] = TableSchema(name, tuple(new_columns), schema.primary_key)
        for (table, column), lookup in self.columns.items():
            if table not in schemas:
                raise PatternConfigError(f"lookup references unknown table {table!r}")
            if not schemas[table].has_column(column):
                raise PatternConfigError(
                    f"lookup references unknown column {table}.{column}"
                )
            if lookup in out:
                raise PatternConfigError(f"lookup table {lookup!r} collides")
            out[lookup] = TableSchema(
                lookup,
                (
                    Column("code", DataType.INTEGER, nullable=False),
                    Column("label", DataType.TEXT, nullable=False),
                ),
                primary_key=("code",),
            )
        return out

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        mapped = self._columns_of(table)
        if not mapped:
            return [(table, dict(row))]
        emitted: WriteEmit = []
        encoded = dict(row)
        for column, lookup in mapped.items():
            value = encoded.pop(column, None)
            if value is None:
                encoded[f"{column}_code"] = None
                continue
            text = str(value)
            codes = self._codes[lookup]
            if text not in codes:
                codes[text] = len(codes) + 1
                emitted.append((lookup, {"code": codes[text], "label": text}))
            encoded[f"{column}_code"] = codes[text]
        emitted.append((table, encoded))
        return emitted

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        mapped = self._columns_of(table)
        if not mapped:
            return child(table)
        plan: Plan = child(table)
        for column, lookup in mapped.items():
            decoded = Rename(
                child(lookup), (("code", f"{column}_code"), ("label", column))
            )
            plan = Join(
                plan,
                decoded,
                on=((f"{column}_code", f"{column}_code"),),
                how="left",
            )
        return Project(plan, schemas[table].column_names)

    def locate(self, table: str, key: dict[str, object]):
        # Lookup rows are shared across records: only the base row locates.
        return [(table, dict(key))]
