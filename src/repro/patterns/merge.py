"""The Merge pattern: several forms stored in one physical table."""

from __future__ import annotations

from typing import Mapping

from repro.errors import PatternConfigError
from repro.expr.ast import BinaryOp, Identifier, Literal
from repro.patterns.base import ChildPlan, DesignPattern, Row, Schemas, WriteEmit
from repro.relational.algebra import Plan, Project, Select
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


class MergePattern(DesignPattern):
    """Data from several forms are drawn from the same table.

    Read path (Table 1): "Pull only data where C = form name (C is a
    column that holds forms)".  The merged table's columns are the union
    of the member forms' columns; values for another form's columns are
    NULL.
    """

    name = "merge"

    def __init__(
        self,
        target_table: str,
        forms: list[str],
        form_column: str = "form_name",
    ):
        if len(forms) < 2:
            raise PatternConfigError("merge needs at least two forms")
        if len(set(forms)) != len(forms):
            raise PatternConfigError("merge form list has duplicates")
        self.target_table = target_table
        self.forms = list(forms)
        self.form_column = form_column

    def apply_schema(self, schemas: Schemas) -> Schemas:
        missing = [form for form in self.forms if form not in schemas]
        if missing:
            raise PatternConfigError(f"merge references unknown tables {missing}")
        out = {name: schema for name, schema in schemas.items() if name not in self.forms}
        columns: list[Column] = [Column(self.form_column, DataType.TEXT, nullable=False)]
        seen: dict[str, Column] = {}
        for form in self.forms:
            for column in schemas[form].columns:
                if column.name == self.form_column:
                    raise PatternConfigError(
                        f"column {column.name!r} collides with the form discriminator"
                    )
                existing = seen.get(column.name)
                if existing is None:
                    # Merged columns must be nullable: other forms leave them NULL.
                    merged = Column(column.name, column.dtype, nullable=True)
                    seen[column.name] = merged
                    columns.append(merged)
                elif existing.dtype != column.dtype:
                    raise PatternConfigError(
                        f"merge type conflict on column {column.name!r}: "
                        f"{existing.dtype.value} vs {column.dtype.value}"
                    )
        if self.target_table in out:
            raise PatternConfigError(
                f"merge target {self.target_table!r} collides with an existing table"
            )
        out[self.target_table] = TableSchema(self.target_table, tuple(columns))
        return out

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        if table not in self.forms:
            return [(table, dict(row))]
        merged: Row = {self.form_column: table}
        merged.update(row)
        return [(self.target_table, merged)]

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        if table not in self.forms:
            return child(table)
        predicate = BinaryOp("=", Identifier.of(self.form_column), Literal(table))
        selected = Select(child(self.target_table), predicate)
        return Project(selected, schemas[table].column_names)

    def locate(self, table: str, key: dict[str, object]):
        if table not in self.forms:
            return [(table, dict(key))]
        merged_key = dict(key)
        merged_key[self.form_column] = table
        return [(self.target_table, merged_key)]
