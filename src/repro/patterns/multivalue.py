"""The Multivalue pattern: multi-select answers stored as child rows."""

from __future__ import annotations

from typing import Mapping

from repro.errors import PatternConfigError
from repro.patterns.base import ChildPlan, DesignPattern, Schemas, WriteEmit
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Join,
    Plan,
    Project,
    Sort,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.ui.controls import CheckList


class MultivaluePattern(DesignPattern):
    """A ``;``-joined multi-select column becomes a one-to-many child table.

    The child table holds ``(key, position, value)``; the read path
    re-aggregates in position order, so the naive canonical encoding is
    restored exactly.  An unanswered multi-select (NULL) has no child rows
    and reads back as NULL through the left join.
    """

    name = "multivalue"

    def __init__(self, form: str, column: str, child_table: str, key: str = "record_id"):
        self.form = form
        self.column = column
        self.child_table = child_table
        self.key = key

    def apply_schema(self, schemas: Schemas) -> Schemas:
        if self.form not in schemas:
            raise PatternConfigError(f"multivalue references unknown table {self.form!r}")
        schema = schemas[self.form]
        if not schema.has_column(self.column):
            raise PatternConfigError(
                f"multivalue references unknown column {self.form}.{self.column}"
            )
        if self.child_table in schemas:
            raise PatternConfigError(f"child table {self.child_table!r} collides")
        out = dict(schemas)
        remaining = tuple(c for c in schema.columns if c.name != self.column)
        out[self.form] = TableSchema(self.form, remaining, schema.primary_key)
        key_type = schema.column(self.key).dtype
        out[self.child_table] = TableSchema(
            self.child_table,
            (
                Column(self.key, key_type, nullable=False),
                Column("position", DataType.INTEGER, nullable=False),
                Column(self.column, DataType.TEXT, nullable=False),
            ),
        )
        return out

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        if table != self.form:
            return [(table, dict(row))]
        main = dict(row)
        stored = main.pop(self.column, None)
        emitted: WriteEmit = [(self.form, main)]
        for position, value in enumerate(CheckList.split(stored)):
            emitted.append(
                (
                    self.child_table,
                    {self.key: row.get(self.key), "position": position, self.column: value},
                )
            )
        return emitted

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        if table != self.form:
            return child(table)
        ordered = Sort(
            child(self.child_table), ((self.key, True), ("position", True))
        )
        aggregated = Aggregate(
            ordered,
            group_by=(self.key,),
            aggregates=(AggregateSpec("STRING_AGG", self.column, self.column),),
        )
        joined = Join(
            child(self.form), aggregated, on=((self.key, self.key),), how="left"
        )
        return Project(joined, schemas[table].column_names)

    def locate(self, table: str, key: dict[str, object]):
        if table != self.form:
            return [(table, dict(key))]
        return [(self.form, dict(key)), (self.child_table, dict(key))]
