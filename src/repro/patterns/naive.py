"""The Naïve pattern: physical layout equals the naive schema."""

from __future__ import annotations

from repro.patterns.base import DesignPattern


class NaivePattern(DesignPattern):
    """No transformation — "this is just the in-memory database".

    Useful as the explicit identity in chains and as the baseline in the
    Table 1 benchmark.
    """

    name = "naive"
