"""The Partition pattern: one form's rows split across tables by value."""

from __future__ import annotations

from typing import Mapping

from repro.errors import PatternConfigError, PatternWriteError
from repro.patterns.base import ChildPlan, DesignPattern, Schemas, WriteEmit
from repro.relational.algebra import Plan, Union


class PartitionPattern(DesignPattern):
    """Horizontal partitioning on a routing column.

    ``routes`` maps a column value to the partition table storing rows with
    that value; ``default_table`` catches everything else.  Read path:
    union of all partitions (partition membership is derivable from the
    routing column, so nothing is lost).
    """

    name = "partition"

    def __init__(
        self,
        form: str,
        column: str,
        routes: Mapping[object, str],
        default_table: str,
    ):
        if not routes:
            raise PatternConfigError("partition needs at least one route")
        self.form = form
        self.column = column
        self.routes = dict(routes)
        self.default_table = default_table
        targets = list(self.routes.values()) + [default_table]
        if len(set(targets)) != len(targets):
            raise PatternConfigError("partition tables must be distinct")

    def apply_schema(self, schemas: Schemas) -> Schemas:
        if self.form not in schemas:
            raise PatternConfigError(f"partition references unknown table {self.form!r}")
        schema = schemas[self.form]
        if not schema.has_column(self.column):
            raise PatternConfigError(
                f"partition references unknown column {self.form}.{self.column}"
            )
        out = {name: s for name, s in schemas.items() if name != self.form}
        for target in list(self.routes.values()) + [self.default_table]:
            if target in out:
                raise PatternConfigError(f"partition table {target!r} collides")
            out[target] = schema.renamed(target)
        return out

    def _route(self, value: object) -> str:
        return self.routes.get(value, self.default_table)

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        if table != self.form:
            return [(table, dict(row))]
        if self.column not in row:
            raise PatternWriteError(
                f"partition column {self.column!r} missing from row"
            )
        return [(self._route(row[self.column]), dict(row))]

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        if table != self.form:
            return child(table)
        targets = list(self.routes.values()) + [self.default_table]
        return Union(tuple(child(target) for target in targets))

    def locate(self, table: str, key: dict[str, object]):
        if table != self.form:
            return [(table, dict(key))]
        # The record's partition is unknown from the key alone; locate in all.
        targets = list(self.routes.values()) + [self.default_table]
        return [(target, dict(key)) for target in targets]
