"""The Split pattern: one form's attributes distributed over several tables."""

from __future__ import annotations

from typing import Mapping

from repro.errors import PatternConfigError
from repro.patterns.base import ChildPlan, DesignPattern, Schemas, WriteEmit
from repro.relational.algebra import Join, Plan, Project
from repro.relational.schema import TableSchema


class SplitPattern(DesignPattern):
    """Attributes from a single form are distributed over several tables.

    Read path (Table 1): Join.  Each part table carries the form's key
    columns; the read path rejoins parts on those keys.
    """

    name = "split"

    def __init__(self, form: str, parts: Mapping[str, list[str]], key: str = "record_id"):
        if len(parts) < 2:
            raise PatternConfigError("split needs at least two part tables")
        self.form = form
        self.parts = {name: list(columns) for name, columns in parts.items()}
        self.key = key
        assigned = [column for columns in self.parts.values() for column in columns]
        duplicates = {c for c in assigned if assigned.count(c) > 1}
        if duplicates:
            raise PatternConfigError(
                f"split assigns column(s) {sorted(duplicates)} to multiple parts"
            )
        if key in assigned:
            raise PatternConfigError(f"key column {key!r} must not be listed in parts")

    def apply_schema(self, schemas: Schemas) -> Schemas:
        if self.form not in schemas:
            raise PatternConfigError(f"split references unknown table {self.form!r}")
        source = schemas[self.form]
        assigned = {column for columns in self.parts.values() for column in columns}
        source_columns = set(source.column_names) - {self.key}
        if assigned != source_columns:
            raise PatternConfigError(
                f"split must cover exactly the non-key columns of {self.form}: "
                f"missing {sorted(source_columns - assigned)}, "
                f"extra {sorted(assigned - source_columns)}"
            )
        out = {name: schema for name, schema in schemas.items() if name != self.form}
        key_column = source.column(self.key)
        for part_name, columns in self.parts.items():
            if part_name in out:
                raise PatternConfigError(f"split part {part_name!r} collides")
            part_columns = [key_column] + [source.column(c) for c in columns]
            out[part_name] = TableSchema(
                part_name, tuple(part_columns), primary_key=(self.key,)
            )
        return out

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        if table != self.form:
            return [(table, dict(row))]
        emitted: WriteEmit = []
        for part_name, columns in self.parts.items():
            part_row = {self.key: row.get(self.key)}
            part_row.update({column: row.get(column) for column in columns})
            emitted.append((part_name, part_row))
        return emitted

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        if table != self.form:
            return child(table)
        part_names = list(self.parts)
        plan: Plan = child(part_names[0])
        for part_name in part_names[1:]:
            plan = Join(plan, child(part_name), on=((self.key, self.key),))
        return Project(plan, schemas[table].column_names)

    def locate(self, table: str, key: dict[str, object]):
        if table != self.form:
            return [(table, dict(key))]
        return [(part_name, dict(key)) for part_name in self.parts]
