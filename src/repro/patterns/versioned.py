"""The Versioned pattern: rows stamped with the writing tool's version."""

from __future__ import annotations

from typing import Mapping

from repro.patterns.base import ChildPlan, DesignPattern, Schemas, WriteEmit
from repro.relational.algebra import Plan, Project
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


class VersionedPattern(DesignPattern):
    """Every row records which tool version produced it.

    The stamp is invisible at the naive level (projected away on read) but
    essential for MultiClass's classifier-propagation support: when a new
    tool version ships, analysts can tell which rows each g-tree version
    explains.
    """

    name = "versioned"

    def __init__(self, version: str, column: str = "tool_version", tables: list[str] | None = None):
        self.version = version
        self.column = column
        self.tables = list(tables) if tables is not None else None

    def _applies(self, table: str) -> bool:
        return self.tables is None or table in self.tables

    def apply_schema(self, schemas: Schemas) -> Schemas:
        out: Schemas = {}
        for name, schema in schemas.items():
            if not self._applies(name) or schema.has_column(self.column):
                out[name] = schema
                continue
            stamp = Column(self.column, DataType.TEXT, nullable=False)
            out[name] = TableSchema(name, schema.columns + (stamp,), schema.primary_key)
        return out

    def write(self, table: str, row: Mapping[str, object], schemas: Schemas) -> WriteEmit:
        if not self._applies(table):
            return [(table, dict(row))]
        stamped = dict(row)
        stamped[self.column] = self.version
        return [(table, stamped)]

    def plan(self, table: str, child: ChildPlan, schemas: Schemas) -> Plan:
        if not self._applies(table):
            return child(table)
        return Project(child(table), schemas[table].column_names)
