"""In-memory relational engine.

This is the substrate standing in for the contributor databases and the
warehouse DBMS: typed tables, a relational algebra with an executor, a
light plan optimizer, and a SQL renderer used to document generated ETL.
"""

from repro.relational.types import DataType
from repro.relational.schema import (
    Column,
    HashPartitioning,
    PartitionScheme,
    RangePartitioning,
    TableSchema,
)
from repro.relational.table import Table
from repro.relational.database import Database
from repro.relational.index import HashIndex
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Coerce,
    Compute,
    Distinct,
    ExecContext,
    IndexLookup,
    InLookup,
    Join,
    Limit,
    PartitionScan,
    Pivot,
    Plan,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    TopK,
    Union,
    Unpivot,
    Values,
)
from repro.relational.algebra import canonical_key
from repro.relational.batch import BATCH_SIZE, Batch
from repro.relational.cost import (
    column_ndv,
    column_null_fraction,
    conjunct_error_free,
    costing_enabled,
    estimate_plan_rows,
    refresh_planning_stats,
    set_costing_enabled,
)
from repro.relational.interpret import execute_interpreted
from repro.relational.query import Query, optimize, plan_fingerprint, prepare_stream_plan
from repro.relational.snapshot import database_version, load_database, save_database
from repro.relational.sql import to_sql
from repro.relational.parallel import (
    ThreadWorkerPool,
    available_cores,
    execute_parallel,
    set_worker_pool_factory,
    set_worker_pool_mode,
    worker_pool_mode,
)
from repro.relational.stats import (
    ChunkStats,
    Dictionary,
    SelectAnalysis,
    column_zone_map,
    encoded_columns,
    encoding_states,
    set_statistics_enabled,
    statistics_enabled,
    table_statistics_report,
)
from repro.relational.vectorize import Vectorized, execute_vectorized

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "BATCH_SIZE",
    "Batch",
    "ChunkStats",
    "Coerce",
    "Column",
    "Compute",
    "Dictionary",
    "DataType",
    "Database",
    "Distinct",
    "ExecContext",
    "HashIndex",
    "HashPartitioning",
    "IndexLookup",
    "InLookup",
    "Join",
    "Limit",
    "PartitionScan",
    "PartitionScheme",
    "Pivot",
    "Plan",
    "Project",
    "Query",
    "RangePartitioning",
    "Rename",
    "Scan",
    "Select",
    "SelectAnalysis",
    "Sort",
    "Table",
    "TableSchema",
    "ThreadWorkerPool",
    "TopK",
    "Union",
    "Unpivot",
    "Values",
    "Vectorized",
    "available_cores",
    "canonical_key",
    "column_ndv",
    "column_null_fraction",
    "column_zone_map",
    "conjunct_error_free",
    "costing_enabled",
    "encoded_columns",
    "encoding_states",
    "estimate_plan_rows",
    "refresh_planning_stats",
    "set_costing_enabled",
    "execute_interpreted",
    "execute_parallel",
    "execute_vectorized",
    "database_version",
    "load_database",
    "optimize",
    "plan_fingerprint",
    "prepare_stream_plan",
    "save_database",
    "set_statistics_enabled",
    "set_worker_pool_factory",
    "set_worker_pool_mode",
    "statistics_enabled",
    "worker_pool_mode",
    "table_statistics_report",
    "to_sql",
]
