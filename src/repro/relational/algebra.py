"""Logical plans and their streaming executor.

Plans are immutable trees of operator nodes; ``Plan.execute(db)`` runs the
tree against a :class:`~repro.relational.database.Database` and returns a
list of row dicts.  Predicates and computed columns use the shared
expression language, so the same conditions analysts write in classifiers
run here unchanged.

Execution is *streaming*: every operator implements :meth:`Plan.stream`,
yielding rows through iterators instead of materializing a list at each
node.  ``Scan`` (and the index-backed ``IndexLookup``) yield the table's
internal row dicts without copying; operators never mutate rows they
receive, and ``Plan.execute`` restores the defensive-copy contract at the
API boundary — only for plans whose output can still alias table storage
(see :meth:`Plan.shares_storage`).  Predicates and derivations are lowered
once per plan node via :mod:`repro.expr.compile` rather than tree-walked
per row; ``repro.relational.interpret`` keeps the original materializing
interpreter as the executable specification both paths are property-tested
against.

``Unpivot`` and ``Pivot`` are first-class because the paper's *Generic*
design pattern (EAV layouts) hinges on them: "Execute an un-pivot
operation, either in code or SQL if the operator exists in the DBMS".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from decimal import Decimal
from itertools import islice
from time import perf_counter
from typing import Iterable, Iterator, Sequence

from repro.errors import QueryError
from repro.expr.ast import Expression
from repro.expr.compile import compile_expression, compile_predicate
from repro.expr.evaluator import sql_equal
from repro.obs.trace import TreeRecorder, current_tracer
from repro.relational.database import Database
from repro.relational.types import DataType

Row = dict[str, object]


class ExecContext:
    """Per-execution memo shared across one plan tree.

    ``output_columns`` of a node is O(depth) to compute; operators that
    consult child schemas (Project, Join, Union, Distinct) would otherwise
    each trigger a full recursion, turning deep pattern chains into
    O(depth²) schema work (ablation A6).  The context memoizes columns by
    node identity so one execute computes each node's schema exactly once.

    ``recorder`` (normally None) is the observability hook: when set, the
    base :meth:`Plan.stream` meters every node's iterator into the
    recorder's span tree.  The disabled cost is one attribute check per
    operator per execution — never per row.

    ``parallel`` (normally None) is a worker count: when set, Vectorized
    subtrees route to the morsel-parallel executor in
    :mod:`repro.relational.parallel` instead of the serial batch loop.
    """

    __slots__ = ("db", "recorder", "parallel", "_columns")

    def __init__(
        self,
        db: Database,
        recorder: TreeRecorder | None = None,
        parallel: int | None = None,
    ):
        self.db = db
        self.recorder = recorder
        self.parallel = parallel
        # Keyed by node identity; the entry pins the node so a recycled id()
        # of a garbage-collected plan can never alias a stale cache hit.
        self._columns: dict[int, tuple["Plan", tuple[str, ...]]] = {}

    def annotate(self, plan: "Plan", **attrs: object) -> None:
        """Record runtime gauges for a node (no-op when not tracing)."""
        if self.recorder is not None:
            self.recorder.annotate(plan, **attrs)

    def columns(self, plan: "Plan") -> tuple[str, ...]:
        """Memoized ``plan.output_columns`` against this context's database."""
        key = id(plan)
        cached = self._columns.get(key)
        if cached is not None and cached[0] is plan:
            return cached[1]
        columns = plan._columns(self)
        self._columns[key] = (plan, columns)
        return columns


@dataclass(frozen=True)
class Plan:
    """Base class for all plan nodes."""

    def children(self) -> tuple["Plan", ...]:
        return ()

    def execute(self, db: Database, parallel: int | None = None) -> list[Row]:
        """Run the plan against ``db`` and materialize the result.

        Under an installed tracer (``repro.obs.tracing()``) the execution
        is profiled: a span tree mirroring the plan records per-node row
        counts and wall time.  ``parallel`` carries a worker count down to
        any ``Vectorized`` subtree, which then runs morsel-parallel.
        """
        tracer = current_tracer()
        if tracer is not None:
            return self._execute_traced(db, tracer, parallel)
        rows = self.stream(ExecContext(db, parallel=parallel))
        if self.shares_storage():
            # The stream may yield dicts owned by table storage; copy at the
            # boundary so callers can mutate results freely.
            return [dict(row) for row in rows]
        return list(rows)

    def _execute_traced(
        self, db: Database, tracer, parallel: int | None = None
    ) -> list[Row]:
        with tracer.span(f"execute:{type(self).__name__}") as root:
            recorder = TreeRecorder(
                self, root, label=trace_label, children=lambda p: p.children()
            )
            rows = self.stream(ExecContext(db, recorder, parallel))
            if self.shares_storage():
                result = [dict(row) for row in rows]
            else:
                result = list(rows)
            root.set("rows_out", len(result))
            return result

    def stream(self, ctx: ExecContext) -> Iterator[Row]:
        """Yield result rows lazily.

        Rows may alias table storage when :meth:`shares_storage` is true;
        treat streamed rows as read-only unless that method returns False.
        Dispatches to the node's :meth:`_stream`; when the context carries
        a recorder, the iterator is metered into the node's span (any
        eager setup work a node does — e.g. a join's build side — counts
        toward its span as ``setup_s``).
        """
        recorder = ctx.recorder
        if recorder is None:
            return self._stream(ctx)
        started = perf_counter()
        iterator = self._stream(ctx)
        return recorder.wrap(self, iterator, setup_s=perf_counter() - started)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        """The node's streaming implementation (see :meth:`stream`)."""
        raise NotImplementedError

    def shares_storage(self) -> bool:
        """True when streamed rows may be the backing table's own dicts."""
        return False

    def output_columns(self, db: Database) -> tuple[str, ...]:
        """Column names this node produces, in order."""
        return ExecContext(db).columns(self)

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        raise NotImplementedError

    def walk(self) -> Iterable["Plan"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Scan(Plan):
    """Read a base table's full extent (zero-copy; see ``shares_storage``)."""

    table: str

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        return ctx.db.table(self.table).iter_rows()

    def shares_storage(self) -> bool:
        return True

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return ctx.db.table(self.table).schema.column_names


@dataclass(frozen=True)
class IndexLookup(Plan):
    """Conjunctive equality probe on a base table, via a hash index.

    Produced by the optimizer from ``Select(Scan(t), col = literal AND …)``
    when the table has a covering :class:`~repro.relational.index.HashIndex`.
    Falls back to a filtered scan when no index matches at execution time,
    so the node is always executable; the equality post-filter keeps SQL
    semantics exact even across hash-equal keys (``1`` vs ``TRUE``).
    """

    table: str
    items: tuple[tuple[str, object], ...]

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        table = ctx.db.table(self.table)
        items = self.items
        index = table.matching_index([column for column, _ in items])
        if index is None:
            ctx.annotate(self, access_path="scan_fallback")
            return (
                row
                for row in table.iter_rows()
                if all(sql_equal(row.get(column), value) for column, value in items)
            )
        values = dict(items)
        key = tuple(values[column] for column in index.columns)
        positions = index.lookup(key)
        ctx.annotate(
            self,
            access_path="index",
            index_columns=",".join(index.columns),
            bucket_rows=len(positions),
        )
        candidates = table.rows_at(positions)
        # Bucket rows are Python-equal to the probe on the indexed columns,
        # and table extents are coerced to their declared types on write.
        # SQL equality then only disagrees with bucket membership when the
        # probe value's bool-ness differs from the column's (TRUE vs 1), so
        # every other indexed item needs no per-row re-check.
        covered = set(index.columns)
        residual = tuple(
            (column, value)
            for column, value in items
            if column not in covered
            or isinstance(value, bool)
            != (table.schema.column(column).dtype is DataType.BOOLEAN)
        )
        if not residual:
            return candidates
        return (
            row
            for row in candidates
            if all(sql_equal(row.get(column), value) for column, value in residual)
        )

    def shares_storage(self) -> bool:
        return True

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return ctx.db.table(self.table).schema.column_names


@dataclass(frozen=True)
class InLookup(Plan):
    """Multi-probe equality lookup: ``column IN (v1, …)`` via a hash index.

    Produced by the optimizer from a ``col IN (literals)`` conjunct over a
    scanned table with a single-column hash index on ``col``; remaining
    conjuncts stay behind in a residual :class:`Select` above this node.
    Matched positions are merged and sorted, so rows stream in extent
    order — exactly the order of the filtered scan this replaces.
    """

    table: str
    column: str
    values: tuple[object, ...]

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        table = ctx.db.table(self.table)
        index = table.matching_index([self.column])
        if index is None:
            ctx.annotate(self, access_path="scan_fallback")
            column, values = self.column, self.values
            return (
                row
                for row in table.iter_rows()
                if any(sql_equal(row.get(column), value) for value in values)
            )
        # Bucket keys hash/compare Python-style; SQL equality only diverges
        # on bool-vs-non-bool probes (TRUE vs 1), so those are skipped, and
        # NULL probes never match.  Everything else needs no re-check
        # because extents are coerced to their declared type on write.
        boolish = table.schema.column(self.column).dtype is DataType.BOOLEAN
        positions: set[int] = set()
        for value in self.values:
            if value is None or isinstance(value, bool) != boolish:
                continue
            positions.update(index.lookup((value,)))
        ctx.annotate(
            self,
            access_path="index",
            probe_values=len(self.values),
            bucket_rows=len(positions),
        )
        return table.rows_at(sorted(positions))

    def shares_storage(self) -> bool:
        return True

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return ctx.db.table(self.table).schema.column_names


@dataclass(frozen=True)
class PartitionScan(Plan):
    """Read only the listed partitions of a partitioned base table.

    Produced by the optimizer when a conjunct on the partition key proves
    the other partitions cannot hold matching rows.  The *full* original
    predicate always stays behind in a residual :class:`Select` above this
    node — pruning narrows the scanned superset, it never filters — so a
    stale or mismatched scheme at execution time can safely fall back to a
    full scan.  Merged partition positions are ascending, so rows stream in
    extent (insertion) order, exactly like the scan this replaces.
    """

    table: str
    partitions: tuple[int, ...]

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        table = ctx.db.table(self.table)
        scheme = table.partitioning
        total = scheme.partition_count if scheme is not None else 0
        if scheme is None or any(pid >= total for pid in self.partitions):
            # The scheme changed under a cached/hand-built plan; the pruning
            # decision no longer applies, so scan everything (the residual
            # Select above still enforces the predicate).
            ctx.annotate(self, access_path="scan_fallback")
            return table.iter_rows()
        positions = table.positions_for_partitions(self.partitions)
        ctx.annotate(
            self,
            access_path="partition",
            partitions_scanned=len(set(self.partitions)),
            partitions_pruned=total - len(set(self.partitions)),
            partitions_total=total,
            bucket_rows=len(positions),
        )
        return table.rows_at(positions)

    def shares_storage(self) -> bool:
        return True

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return ctx.db.table(self.table).schema.column_names


@dataclass(frozen=True)
class Values(Plan):
    """A literal relation (used by tests and by ETL staging steps)."""

    columns: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        columns = self.columns
        return (dict(zip(columns, row)) for row in self.rows)

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return self.columns


@dataclass(frozen=True)
class Select(Plan):
    """Keep rows whose predicate evaluates to TRUE (NULL filters out)."""

    child: Plan
    predicate: Expression

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        return filter(compile_predicate(self.predicate), self.child.stream(ctx))

    def shares_storage(self) -> bool:
        return self.child.shares_storage()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return ctx.columns(self.child)


@dataclass(frozen=True)
class Project(Plan):
    """Keep only the named columns, in the given order."""

    child: Plan
    columns: tuple[str, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        available = set(ctx.columns(self.child))
        missing = [column for column in self.columns if column not in available]
        if missing:
            raise QueryError(f"projection references unknown column(s) {missing}")
        columns = self.columns

        def narrow(row: Row) -> Row:
            try:
                # Rows normally carry every schema column; direct indexing
                # beats a bound .get per column.
                return {column: row[column] for column in columns}
            except KeyError:
                return {column: row.get(column) for column in columns}

        return map(narrow, self.child.stream(ctx))

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return self.columns


@dataclass(frozen=True)
class Compute(Plan):
    """Extend each row with computed columns (generalized projection)."""

    child: Plan
    derivations: tuple[tuple[str, Expression], ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        compiled = tuple(
            (name, compile_expression(expression))
            for name, expression in self.derivations
        )
        # Derivations all evaluate against the child row, not each other.
        def generate() -> Iterator[Row]:
            for row in self.child.stream(ctx):
                extended = dict(row)
                for name, value_of in compiled:
                    extended[name] = value_of(row)
                yield extended

        return generate()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        base = ctx.columns(self.child)
        new = tuple(name for name, _ in self.derivations if name not in base)
        return base + new


@dataclass(frozen=True)
class Rename(Plan):
    """Rename columns: mapping of old name → new name."""

    child: Plan
    mapping: tuple[tuple[str, str], ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        table = dict(self.mapping)
        return (
            {table.get(column, column): value for column, value in row.items()}
            for row in self.child.stream(ctx)
        )

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        table = dict(self.mapping)
        return tuple(table.get(column, column) for column in ctx.columns(self.child))


@dataclass(frozen=True)
class Join(Plan):
    """Equi-join on column pairs.  ``how`` is ``inner`` or ``left``.

    Non-join columns of the two sides must be disjoint; collide-by-accident
    joins are a classic silent-corruption source in hand-written ETL, so we
    refuse them and force an explicit :class:`Rename`.

    ``build`` is a physical hint set by the cost-based optimizer: hash
    executors build their table on that side (``"right"``, the default, or
    ``"left"``).  It never changes output rows, order, or columns — the
    left-build batch algorithm re-emits matches left-major — so the
    streaming and interpreted executors are free to ignore it.
    """

    left: Plan
    right: Plan
    on: tuple[tuple[str, str], ...]
    how: str = "inner"
    build: str = "right"

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        if self.how not in ("inner", "left"):
            raise QueryError(f"unsupported join type {self.how!r}")
        left_cols = ctx.columns(self.left)
        right_cols = ctx.columns(self.right)
        right_keys = {rk for _, rk in self.on}
        overlap = (set(left_cols) & set(right_cols)) - right_keys
        if overlap:
            raise QueryError(
                f"join would collide on columns {sorted(overlap)}; rename one side"
            )
        # Build the hash side once; payloads drop the join keys up front so
        # the probe loop is one dict copy + update per match.  Single-column
        # joins (the overwhelmingly common case) bucket on the bare value to
        # skip a per-row tuple.
        on = self.on
        null_right = {column: None for column in right_cols if column not in right_keys}
        how = self.how

        # Buckets key on canonical_key so TRUE never meets 1 across a
        # BOOLEAN/INTEGER join — the same rule as group-by and sql_equal.
        if len(on) == 1:
            lk, rk = on[0]
            buckets: dict[object, list[Row]] = {}
            for row in self.right.stream(ctx):
                key = row.get(rk)
                if key is not None:
                    payload = {c: v for c, v in row.items() if c not in right_keys}
                    buckets.setdefault(canonical_key(key), []).append(payload)
            left_stream = self.left.stream(ctx)

            def probe_single() -> Iterator[Row]:
                for row in left_stream:
                    matches = buckets.get(canonical_key(row.get(lk)))
                    if matches:
                        for payload in matches:
                            merged = dict(row)
                            merged.update(payload)
                            yield merged
                    elif how == "left":
                        merged = dict(row)
                        merged.update(null_right)
                        yield merged

            return probe_single()

        multi_buckets: dict[tuple[object, ...], list[Row]] = {}
        for row in self.right.stream(ctx):
            key = tuple(canonical_key(row.get(rk)) for _, rk in on)
            payload = {c: v for c, v in row.items() if c not in right_keys}
            multi_buckets.setdefault(key, []).append(payload)
        left_stream = self.left.stream(ctx)

        def probe() -> Iterator[Row]:
            for row in left_stream:
                key = tuple(canonical_key(row.get(lk)) for lk, _ in on)
                matches = multi_buckets.get(key) if None not in key else None
                if matches:
                    for payload in matches:
                        merged = dict(row)
                        merged.update(payload)
                        yield merged
                elif how == "left":
                    merged = dict(row)
                    merged.update(null_right)
                    yield merged

        return probe()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        right_keys = {rk for _, rk in self.on}
        right_cols = tuple(
            column
            for column in ctx.columns(self.right)
            if column not in right_keys
        )
        return ctx.columns(self.left) + right_cols


@dataclass(frozen=True)
class Union(Plan):
    """Union-all of inputs sharing the same column set.

    This is MultiClass's integration operator: "MultiClass simply unions
    together the results of ETL workflows from different contributors."
    """

    inputs: tuple[Plan, ...]

    def children(self) -> tuple[Plan, ...]:
        return self.inputs

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        if not self.inputs:
            return iter(())
        columns = ctx.columns(self)
        column_set = set(columns)
        for plan in self.inputs:
            plan_columns = set(ctx.columns(plan))
            if plan_columns != column_set:
                raise QueryError(
                    f"union inputs disagree on columns: {sorted(plan_columns)} "
                    f"vs {sorted(columns)}"
                )

        def generate() -> Iterator[Row]:
            for plan in self.inputs:
                for row in plan.stream(ctx):
                    yield {column: row.get(column) for column in columns}

        return generate()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        if not self.inputs:
            return ()
        return ctx.columns(self.inputs[0])


@dataclass(frozen=True)
class Distinct(Plan):
    """Remove duplicate rows, preserving first-seen order."""

    child: Plan

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        columns = ctx.columns(self.child)

        def generate() -> Iterator[Row]:
            seen: set[tuple[object, ...]] = set()
            for row in self.child.stream(ctx):
                key = tuple(canonical_key(row.get(column)) for column in columns)
                if key not in seen:
                    seen.add(key)
                    yield row

        return generate()

    def shares_storage(self) -> bool:
        return self.child.shares_storage()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return ctx.columns(self.child)


@dataclass(frozen=True)
class Unpivot(Plan):
    """Wide → EAV: each value column becomes an (attribute, value) row."""

    child: Plan
    id_columns: tuple[str, ...]
    value_columns: tuple[str, ...]
    attribute_column: str = "attribute"
    value_column: str = "value"

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        for row in self.child.stream(ctx):
            for column in self.value_columns:
                record: Row = {c: row.get(c) for c in self.id_columns}
                record[self.attribute_column] = column
                record[self.value_column] = row.get(column)
                yield record

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return self.id_columns + (self.attribute_column, self.value_column)


@dataclass(frozen=True)
class Pivot(Plan):
    """EAV → wide: rows sharing key columns fold into one row per key.

    Attributes absent for a key yield NULL; duplicate (key, attribute)
    pairs keep the *last* value, matching reporting tools that overwrite
    earlier saves.
    """

    child: Plan
    key_columns: tuple[str, ...]
    attribute_column: str
    value_column: str
    attributes: tuple[str, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        # Ordered dicts double as the insertion-order list; the attribute
        # set and the blank-row template are hoisted out of the fold loop.
        grouped: dict[object, Row] = {}
        key_columns = self.key_columns
        attribute_column, value_column = self.attribute_column, self.value_column
        wanted = set(self.attributes)
        template = dict.fromkeys(self.attributes)
        single = key_columns[0] if len(key_columns) == 1 else None
        for row in self.child.stream(ctx):
            if single is not None:
                # The overwhelmingly common single-key fold skips the tuple
                # allocation per row.
                key = row.get(single)
                base = grouped.get(key)
                if base is None:
                    base = {single: key}
                    base.update(template)
                    grouped[key] = base
            else:
                key = tuple(row.get(column) for column in key_columns)
                base = grouped.get(key)
                if base is None:
                    base = dict(zip(key_columns, key))
                    base.update(template)
                    grouped[key] = base
            attribute = row.get(attribute_column)
            # Only str values can equal a declared attribute name; the
            # isinstance guard also keeps unhashable values out of the set.
            if isinstance(attribute, str) and attribute in wanted:
                base[attribute] = row.get(value_column)
        return iter(grouped.values())

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return self.key_columns + self.attributes


@dataclass(frozen=True)
class Coerce(Plan):
    """Coerce named columns to declared types.

    Read paths of patterns that store values as text (Generic/EAV, Blob)
    end with a Coerce restoring the naive schema's types.
    """

    child: Plan
    column_types: tuple[tuple[str, "DataType"], ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        converters = tuple(
            (column, dtype.coerce) for column, dtype in self.column_types
        )
        # Rows that already left table storage (fresh dicts from the child)
        # can be converted in place; aliased rows still get copied.
        copy = self.child.shares_storage()
        for row in self.child.stream(ctx):
            converted = dict(row) if copy else row
            for column, coerce in converters:
                if column in converted:
                    converted[column] = coerce(converted[column])
            yield converted

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return ctx.columns(self.child)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: ``func`` over ``column`` (None for COUNT(*)) as ``alias``."""

    func: str  # COUNT, COUNT_DISTINCT, SUM, AVG, MIN, MAX
    column: str | None
    alias: str


@dataclass(frozen=True)
class Aggregate(Plan):
    """Group-by aggregation."""

    child: Plan
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        group_by = self.group_by
        groups: dict[tuple[object, ...], list[Row]] = {}
        order: list[tuple[object, ...]] = []
        # Canonical keys are tagged (bools) or repr'd (containers), so output
        # rows carry each group's first-seen original values instead.
        representatives: dict[tuple[object, ...], Row] = {}
        for row in self.child.stream(ctx):
            key = tuple(canonical_key(row.get(column)) for column in group_by)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
                representatives[key] = {
                    column: row.get(column) for column in group_by
                }
            bucket.append(row)

        def generate() -> Iterator[Row]:
            for key in order:
                rows = groups[key]
                result: Row = representatives[key]
                for spec in self.aggregates:
                    result[spec.alias] = _aggregate(spec, rows)
                yield result
            if not order and not self.group_by and self.aggregates:
                # Aggregating an empty input without grouping yields one row.
                yield {spec.alias: _aggregate(spec, []) for spec in self.aggregates}

        return generate()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return self.group_by + tuple(spec.alias for spec in self.aggregates)


@dataclass(frozen=True)
class Sort(Plan):
    """Order rows by keys; each key is (column, ascending)."""

    child: Plan
    keys: tuple[tuple[str, bool], ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        rows = list(self.child.stream(ctx))
        # Apply keys right-to-left so stable sort yields composite ordering.
        for column, ascending in reversed(self.keys):
            rows.sort(key=lambda row: _sort_key(row.get(column)), reverse=not ascending)
        return iter(rows)

    def shares_storage(self) -> bool:
        return self.child.shares_storage()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return ctx.columns(self.child)


@dataclass(frozen=True)
class TopK(Plan):
    """Fused Sort+Limit: heap-select the first ``count`` rows by ``keys``.

    Produced by the optimizer from ``Limit(Sort(child, keys), count)``.
    Uniform-direction key lists ride ``heapq.nsmallest``/``nlargest`` with
    plain tuple keys (both are documented equivalent to a stable
    ``sorted(...)[:n]``, so tie order matches :class:`Sort`'s repeated
    stable sorts); mixed ascending/descending keys fall back to the sort
    itself, truncated.
    """

    child: Plan
    keys: tuple[tuple[str, bool], ...]
    count: int

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        rows = self.child.stream(ctx)
        directions = {ascending for _, ascending in self.keys}
        if len(directions) <= 1:
            select = heapq.nsmallest if directions != {False} else heapq.nlargest
            if len(self.keys) == 1:
                column = self.keys[0][0]

                def single_key(row: Row) -> tuple[int, object]:
                    return _sort_key(row.get(column))

                return iter(select(self.count, rows, key=single_key))
            columns = tuple(column for column, _ in self.keys)

            def key_of(row: Row) -> tuple[tuple[int, object], ...]:
                return tuple(_sort_key(row.get(column)) for column in columns)

            return iter(select(self.count, rows, key=key_of))
        materialized = list(rows)
        for column, ascending in reversed(self.keys):
            materialized.sort(
                key=lambda row: _sort_key(row.get(column)), reverse=not ascending
            )
        return iter(materialized[: self.count])

    def shares_storage(self) -> bool:
        return self.child.shares_storage()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return ctx.columns(self.child)


@dataclass(frozen=True)
class Limit(Plan):
    """Keep the first ``count`` rows."""

    child: Plan
    count: int

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        if self.count < 0:
            # Negative counts keep Python slice semantics (drop from the end),
            # which requires the full child extent.
            rows = list(self.child.stream(ctx))
            return iter(rows[: self.count])
        return islice(self.child.stream(ctx), self.count)

    def shares_storage(self) -> bool:
        return self.child.shares_storage()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return ctx.columns(self.child)


# -- helpers -------------------------------------------------------------------


def trace_label(plan: Plan) -> str:
    """One-line span label for a plan node (type plus its key parameters)."""
    if isinstance(plan, Scan):
        return f"Scan[{plan.table}]"
    if isinstance(plan, IndexLookup):
        columns = ",".join(column for column, _ in plan.items)
        return f"IndexLookup[{plan.table}: {columns}]"
    if isinstance(plan, InLookup):
        return f"InLookup[{plan.table}.{plan.column} IN ({len(plan.values)})]"
    if isinstance(plan, PartitionScan):
        return f"PartitionScan[{plan.table}: {len(plan.partitions)} parts]"
    if isinstance(plan, Values):
        return f"Values[{len(plan.rows)} rows]"
    if isinstance(plan, Select):
        return f"Select[{plan.predicate.to_source()}]"
    if isinstance(plan, Project):
        return f"Project[{','.join(plan.columns)}]"
    if isinstance(plan, Compute):
        return f"Compute[{','.join(name for name, _ in plan.derivations)}]"
    if isinstance(plan, Rename):
        return f"Rename[{','.join(f'{old}->{new}' for old, new in plan.mapping)}]"
    if isinstance(plan, Join):
        on = ",".join(f"{lk}={rk}" for lk, rk in plan.on)
        side = "" if plan.build == "right" else f" build={plan.build}"
        return f"Join[{plan.how}: {on}{side}]"
    if isinstance(plan, Union):
        return f"Union[{len(plan.inputs)} inputs]"
    if isinstance(plan, Pivot):
        return f"Pivot[{','.join(plan.key_columns)}: {len(plan.attributes)} attrs]"
    if isinstance(plan, Unpivot):
        return f"Unpivot[{','.join(plan.value_columns)}]"
    if isinstance(plan, Coerce):
        return f"Coerce[{','.join(column for column, _ in plan.column_types)}]"
    if isinstance(plan, Aggregate):
        funcs = ",".join(spec.alias for spec in plan.aggregates)
        return f"Aggregate[{','.join(plan.group_by)}: {funcs}]"
    if isinstance(plan, Sort):
        keys = ",".join(("" if asc else "-") + col for col, asc in plan.keys)
        return f"Sort[{keys}]"
    if isinstance(plan, TopK):
        keys = ",".join(("" if asc else "-") + col for col, asc in plan.keys)
        return f"TopK[{keys} limit {plan.count}]"
    if isinstance(plan, Limit):
        return f"Limit[{plan.count}]"
    return type(plan).__name__


# Unforgeable tag segregating booleans from their hash-equal integers in
# grouping/join keys; no user value can ever equal a tuple holding it.
_BOOL_TAG = object()

# Types canonical_key maps to themselves (note ``type(True) is bool``, never
# ``int``).  Hot per-row loops check ``type(v) in _IDENTITY_KEY_TYPES``
# inline to skip the function call for the common case.
_IDENTITY_KEY_TYPES = frozenset((int, float, str))


def canonical_key(value: object) -> object:
    """Hash/equality key for one value under SQL semantics.

    Python's ``hash(True) == hash(1)`` (and ``True == 1``) would silently
    merge a BOOLEAN column's ``TRUE`` with an INTEGER ``1`` in group-by,
    distinct, COUNT_DISTINCT, and hash-join keys — but ``sql_equal``
    distinguishes them, so the keys must too.  Booleans are tagged with a
    private sentinel; unhashable containers collapse to their ``repr``.
    All three executors (interpreter, streaming, vectorized) share this
    one function so their grouping/join semantics can never diverge.
    """
    if isinstance(value, bool):
        return (_BOOL_TAG, value)
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


# Historical internal name, kept for callers predating the audit.
_hashable = canonical_key


def _sort_key(value: object) -> tuple[int, object]:
    """Total order with NULLs first and types segregated.

    ``Decimal`` sorts in the numeric band: Python compares Decimal with
    int/float natively, and stringifying it (the old fallback) would have
    ordered ``Decimal("9")`` after ``Decimal("10")``.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float, Decimal)):
        return (2, value)
    return (3, str(value))




def _aggregate(spec: AggregateSpec, rows: Sequence[Row]) -> object:
    func = spec.func.upper()
    if func == "COUNT" and spec.column is None:
        return len(rows)
    if spec.column is None:
        raise QueryError(f"{func} requires a column")
    column = spec.column
    values = [v for row in rows if (v := row.get(column)) is not None]
    return _aggregate_values(func, values, spec.func)


def _aggregate_values(func: str, values: list[object], name: str) -> object:
    """Finalize one aggregate over a column's non-NULL values (row order).

    Shared by the row-at-a-time paths (via :func:`_aggregate`) and the
    vectorized executor's grouped accumulation, so both produce identical
    results by construction.  ``func`` is already upper-cased; ``name`` is
    the spec's original spelling, for error messages.  COUNT(*) is handled
    by the callers (it needs the row count, not a column).
    """
    if func == "COUNT":
        return len(values)
    if func == "COUNT_DISTINCT":
        return len({canonical_key(value) for value in values})
    if func == "STRING_AGG":
        # Joins in input row order; callers sort upstream for canonical order.
        return ";".join(str(value) for value in values) if values else None
    if not values:
        return None
    if func == "SUM":
        return sum(values)  # type: ignore[arg-type]
    if func == "AVG":
        return sum(values) / len(values)  # type: ignore[arg-type]
    if func == "MIN":
        return min(values)  # type: ignore[type-var]
    if func == "MAX":
        return max(values)  # type: ignore[type-var]
    raise QueryError(f"unknown aggregate function {name!r}")
