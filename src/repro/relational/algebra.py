"""Logical plans and their executor.

Plans are immutable trees of operator nodes; ``Plan.execute(db)`` runs the
tree against a :class:`~repro.relational.database.Database` and returns a
list of row dicts.  Predicates and computed columns use the shared
expression language, so the same conditions analysts write in classifiers
run here unchanged.

``Unpivot`` and ``Pivot`` are first-class because the paper's *Generic*
design pattern (EAV layouts) hinges on them: "Execute an un-pivot
operation, either in code or SQL if the operator exists in the DBMS".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import QueryError
from repro.expr.ast import Expression
from repro.expr.evaluator import Evaluator
from repro.relational.database import Database
from repro.relational.types import DataType

Row = dict[str, object]

_EVALUATOR = Evaluator()


@dataclass(frozen=True)
class Plan:
    """Base class for all plan nodes."""

    def children(self) -> tuple["Plan", ...]:
        return ()

    def execute(self, db: Database) -> list[Row]:
        """Run the plan against ``db``."""
        raise NotImplementedError

    def output_columns(self, db: Database) -> tuple[str, ...]:
        """Column names this node produces, in order."""
        raise NotImplementedError

    def walk(self) -> Iterable["Plan"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Scan(Plan):
    """Read a base table's full extent."""

    table: str

    def execute(self, db: Database) -> list[Row]:
        return db.table(self.table).rows()

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return db.table(self.table).schema.column_names


@dataclass(frozen=True)
class Values(Plan):
    """A literal relation (used by tests and by ETL staging steps)."""

    columns: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def execute(self, db: Database) -> list[Row]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return self.columns


@dataclass(frozen=True)
class Select(Plan):
    """Keep rows whose predicate evaluates to TRUE (NULL filters out)."""

    child: Plan
    predicate: Expression

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        rows = self.child.execute(db)
        return [row for row in rows if _EVALUATOR.satisfied(self.predicate, row)]

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return self.child.output_columns(db)


@dataclass(frozen=True)
class Project(Plan):
    """Keep only the named columns, in the given order."""

    child: Plan
    columns: tuple[str, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        rows = self.child.execute(db)
        available = set(self.child.output_columns(db))
        missing = [column for column in self.columns if column not in available]
        if missing:
            raise QueryError(f"projection references unknown column(s) {missing}")
        return [{column: row.get(column) for column in self.columns} for row in rows]

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return self.columns


@dataclass(frozen=True)
class Compute(Plan):
    """Extend each row with computed columns (generalized projection)."""

    child: Plan
    derivations: tuple[tuple[str, Expression], ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        rows = self.child.execute(db)
        out: list[Row] = []
        for row in rows:
            extended = dict(row)
            for name, expression in self.derivations:
                extended[name] = _EVALUATOR.evaluate(expression, row)
            out.append(extended)
        return out

    def output_columns(self, db: Database) -> tuple[str, ...]:
        base = self.child.output_columns(db)
        new = tuple(name for name, _ in self.derivations if name not in base)
        return base + new


@dataclass(frozen=True)
class Rename(Plan):
    """Rename columns: mapping of old name → new name."""

    child: Plan
    mapping: tuple[tuple[str, str], ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        rows = self.child.execute(db)
        table = dict(self.mapping)
        return [
            {table.get(column, column): value for column, value in row.items()}
            for row in rows
        ]

    def output_columns(self, db: Database) -> tuple[str, ...]:
        table = dict(self.mapping)
        return tuple(table.get(column, column) for column in self.child.output_columns(db))


@dataclass(frozen=True)
class Join(Plan):
    """Equi-join on column pairs.  ``how`` is ``inner`` or ``left``.

    Non-join columns of the two sides must be disjoint; collide-by-accident
    joins are a classic silent-corruption source in hand-written ETL, so we
    refuse them and force an explicit :class:`Rename`.
    """

    left: Plan
    right: Plan
    on: tuple[tuple[str, str], ...]
    how: str = "inner"

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def execute(self, db: Database) -> list[Row]:
        if self.how not in ("inner", "left"):
            raise QueryError(f"unsupported join type {self.how!r}")
        left_rows = self.left.execute(db)
        right_rows = self.right.execute(db)
        left_cols = self.left.output_columns(db)
        right_cols = self.right.output_columns(db)
        right_keys = tuple(rk for _, rk in self.on)
        overlap = (set(left_cols) & set(right_cols)) - set(right_keys)
        if overlap:
            raise QueryError(
                f"join would collide on columns {sorted(overlap)}; rename one side"
            )
        # Hash join on the right side.
        buckets: dict[tuple[object, ...], list[Row]] = {}
        for row in right_rows:
            key = tuple(row.get(rk) for _, rk in self.on)
            buckets.setdefault(key, []).append(row)
        null_right = {column: None for column in right_cols if column not in right_keys}
        out: list[Row] = []
        for row in left_rows:
            key = tuple(row.get(lk) for lk, _ in self.on)
            matches = buckets.get(key, []) if None not in key else []
            if matches:
                for match in matches:
                    merged = dict(row)
                    merged.update(
                        {c: v for c, v in match.items() if c not in right_keys}
                    )
                    out.append(merged)
            elif self.how == "left":
                merged = dict(row)
                merged.update(null_right)
                out.append(merged)
        return out

    def output_columns(self, db: Database) -> tuple[str, ...]:
        right_keys = {rk for _, rk in self.on}
        right_cols = tuple(
            column
            for column in self.right.output_columns(db)
            if column not in right_keys
        )
        return self.left.output_columns(db) + right_cols


@dataclass(frozen=True)
class Union(Plan):
    """Union-all of inputs sharing the same column set.

    This is MultiClass's integration operator: "MultiClass simply unions
    together the results of ETL workflows from different contributors."
    """

    inputs: tuple[Plan, ...]

    def children(self) -> tuple[Plan, ...]:
        return self.inputs

    def execute(self, db: Database) -> list[Row]:
        if not self.inputs:
            return []
        columns = self.output_columns(db)
        out: list[Row] = []
        for plan in self.inputs:
            plan_columns = set(plan.output_columns(db))
            if plan_columns != set(columns):
                raise QueryError(
                    f"union inputs disagree on columns: {sorted(plan_columns)} "
                    f"vs {sorted(columns)}"
                )
            for row in plan.execute(db):
                out.append({column: row.get(column) for column in columns})
        return out

    def output_columns(self, db: Database) -> tuple[str, ...]:
        if not self.inputs:
            return ()
        return self.inputs[0].output_columns(db)


@dataclass(frozen=True)
class Distinct(Plan):
    """Remove duplicate rows, preserving first-seen order."""

    child: Plan

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        columns = self.child.output_columns(db)
        seen: set[tuple[object, ...]] = set()
        out: list[Row] = []
        for row in self.child.execute(db):
            key = tuple(_hashable(row.get(column)) for column in columns)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return out

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return self.child.output_columns(db)


@dataclass(frozen=True)
class Unpivot(Plan):
    """Wide → EAV: each value column becomes an (attribute, value) row."""

    child: Plan
    id_columns: tuple[str, ...]
    value_columns: tuple[str, ...]
    attribute_column: str = "attribute"
    value_column: str = "value"

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        out: list[Row] = []
        for row in self.child.execute(db):
            for column in self.value_columns:
                record: Row = {c: row.get(c) for c in self.id_columns}
                record[self.attribute_column] = column
                record[self.value_column] = row.get(column)
                out.append(record)
        return out

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return self.id_columns + (self.attribute_column, self.value_column)


@dataclass(frozen=True)
class Pivot(Plan):
    """EAV → wide: rows sharing key columns fold into one row per key.

    Attributes absent for a key yield NULL; duplicate (key, attribute)
    pairs keep the *last* value, matching reporting tools that overwrite
    earlier saves.
    """

    child: Plan
    key_columns: tuple[str, ...]
    attribute_column: str
    value_column: str
    attributes: tuple[str, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        grouped: dict[tuple[object, ...], Row] = {}
        order: list[tuple[object, ...]] = []
        for row in self.child.execute(db):
            key = tuple(row.get(column) for column in self.key_columns)
            if key not in grouped:
                base: Row = {c: v for c, v in zip(self.key_columns, key)}
                base.update({attribute: None for attribute in self.attributes})
                grouped[key] = base
                order.append(key)
            attribute = row.get(self.attribute_column)
            if attribute in self.attributes:
                grouped[key][str(attribute)] = row.get(self.value_column)
        return [grouped[key] for key in order]

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return self.key_columns + self.attributes


@dataclass(frozen=True)
class Coerce(Plan):
    """Coerce named columns to declared types.

    Read paths of patterns that store values as text (Generic/EAV, Blob)
    end with a Coerce restoring the naive schema's types.
    """

    child: Plan
    column_types: tuple[tuple[str, "DataType"], ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        rows = self.child.execute(db)
        out: list[Row] = []
        for row in rows:
            converted = dict(row)
            for column, dtype in self.column_types:
                if column in converted:
                    converted[column] = dtype.coerce(converted[column])
            out.append(converted)
        return out

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return self.child.output_columns(db)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: ``func`` over ``column`` (None for COUNT(*)) as ``alias``."""

    func: str  # COUNT, COUNT_DISTINCT, SUM, AVG, MIN, MAX
    column: str | None
    alias: str


@dataclass(frozen=True)
class Aggregate(Plan):
    """Group-by aggregation."""

    child: Plan
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        groups: dict[tuple[object, ...], list[Row]] = {}
        order: list[tuple[object, ...]] = []
        for row in self.child.execute(db):
            key = tuple(_hashable(row.get(column)) for column in self.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        out: list[Row] = []
        for key in order:
            rows = groups[key]
            result: Row = dict(zip(self.group_by, key))
            for spec in self.aggregates:
                result[spec.alias] = _aggregate(spec, rows)
            out.append(result)
        if not out and not self.group_by and self.aggregates:
            # Aggregating an empty input without grouping still yields one row.
            out.append({spec.alias: _aggregate(spec, []) for spec in self.aggregates})
        return out

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return self.group_by + tuple(spec.alias for spec in self.aggregates)


@dataclass(frozen=True)
class Sort(Plan):
    """Order rows by keys; each key is (column, ascending)."""

    child: Plan
    keys: tuple[tuple[str, bool], ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        rows = self.child.execute(db)
        # Apply keys right-to-left so stable sort yields composite ordering.
        for column, ascending in reversed(self.keys):
            rows.sort(key=lambda row: _sort_key(row.get(column)), reverse=not ascending)
        return rows

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return self.child.output_columns(db)


@dataclass(frozen=True)
class Limit(Plan):
    """Keep the first ``count`` rows."""

    child: Plan
    count: int

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def execute(self, db: Database) -> list[Row]:
        return self.child.execute(db)[: self.count]

    def output_columns(self, db: Database) -> tuple[str, ...]:
        return self.child.output_columns(db)


# -- helpers -------------------------------------------------------------------


def _hashable(value: object) -> object:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


def _sort_key(value: object) -> tuple[int, object]:
    """Total order with NULLs first and types segregated."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))


def _aggregate(spec: AggregateSpec, rows: Sequence[Row]) -> object:
    func = spec.func.upper()
    if func == "COUNT":
        if spec.column is None:
            return len(rows)
        return sum(1 for row in rows if row.get(spec.column) is not None)
    if spec.column is None:
        raise QueryError(f"{func} requires a column")
    values = [row.get(spec.column) for row in rows if row.get(spec.column) is not None]
    if func == "COUNT_DISTINCT":
        return len({_hashable(value) for value in values})
    if func == "STRING_AGG":
        # Joins in input row order; callers sort upstream for canonical order.
        return ";".join(str(value) for value in values) if values else None
    if not values:
        return None
    if func == "SUM":
        return sum(values)  # type: ignore[arg-type]
    if func == "AVG":
        return sum(values) / len(values)  # type: ignore[arg-type]
    if func == "MIN":
        return min(values)  # type: ignore[type-var]
    if func == "MAX":
        return max(values)  # type: ignore[type-var]
    raise QueryError(f"unknown aggregate function {spec.func!r}")
