"""Columnar batches for the vectorized executor.

A :class:`Batch` holds a fixed-size horizontal slice of a relation as one
Python list per column.  NULL keeps the row-dict convention exactly: the
value ``None`` inside a column list — there is no separate validity mask,
so every 3VL rule from :mod:`repro.expr.evaluator` applies to column
elements unchanged.

Batches can be *lazy gathers*: ``batch.take(indices)`` does not copy any
column up front, it records (source batch, row indices) and materializes a
column only when some kernel first asks for it.  The vectorized AND/OR
kernels rely on this for short-circuit parity — the right operand is
evaluated only over the still-undecided rows, and only for the columns the
operand actually touches, matching the row-at-a-time evaluator which never
evaluates the right side of a decided conjunct (and therefore never raises
its errors).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

Row = dict[str, object]

#: Rows per batch on the vectorized path.  Big enough to amortize the
#: per-batch Python overhead of each kernel, small enough that a lazy
#: gather of one column stays cache-friendly.
BATCH_SIZE = 1024


class Batch:
    """One columnar slice: ``columns`` in output order, column → value list.

    ``data`` may be missing columns when the batch is a lazy gather; use
    :meth:`column` (never ``data[...]`` directly) so gathers materialize on
    demand.  All column lists share one ``length``.
    """

    __slots__ = (
        "columns",
        "length",
        "data",
        "zone",
        "_source",
        "_indices",
        "_runs",
        "_encodings",
    )

    def __init__(
        self,
        columns: tuple[str, ...],
        data: dict[str, list[object]],
        length: int,
        _source: "Batch | None" = None,
        _indices: Sequence[int] | None = None,
        zone: "tuple[object, int | None, int] | None" = None,
        encodings: "dict[str, tuple[object, list[int | None]] | None] | None" = None,
    ):
        self.columns = columns
        self.data = data
        self.length = length
        self._source = _source
        self._indices = _indices
        # Contiguous-run decomposition of _indices, computed on the first
        # gather: a list of (start, stop) slices, None when per-element
        # gathering is cheaper, False while not yet computed.
        self._runs: "list[tuple[int, int]] | None | bool" = False
        # Zone-map identity: (table, partition | None, chunk index) when
        # this batch's rows are a subset of one scanned chunk, else None.
        # Propagated through take() — every skip/all-match rule stays sound
        # on row subsets of the chunk it was computed for.
        self.zone = zone
        # column → (dictionary, code list aligned with this batch's rows)
        # or None (= known unencoded); also the per-batch memo for
        # :meth:`codes` gathers.  None when nothing is known yet.
        self._encodings = encodings

    def __len__(self) -> int:
        return self.length

    def column(self, name: str) -> list[object]:
        """The value list for ``name``, gathering lazily if needed.

        Raises ``KeyError`` for names outside :attr:`columns` — callers
        resolve dotted/suffix identifiers before asking.
        """
        col = self.data.get(name)
        if col is None:
            source = self._source
            if source is None:
                raise KeyError(name)
            base = source.column(name)
            runs = self._gather_runs()
            if runs is None:
                col = [base[i] for i in self._indices]  # type: ignore[union-attr]
            elif len(runs) == 1:
                start, stop = runs[0]
                col = base[start:stop]
            else:
                col = []
                extend = col.extend
                for start, stop in runs:
                    extend(base[start:stop])
            self.data[name] = col
        return col

    def _gather_runs(self) -> "list[tuple[int, int]] | None":
        """Slice runs covering ``_indices``, or None to gather per element.

        Selection vectors from low-selectivity filters (and the morsel
        splitter's ``range`` slices) are mostly ascending stretches of
        consecutive positions; copying those as list slices moves the loop
        into C.  Decomposition is abandoned once runs average under 4
        elements — at that density per-element indexing wins.
        """
        runs = self._runs
        if runs is not False:
            return runs  # type: ignore[return-value]
        indices = self._indices
        if type(indices) is range and indices.step == 1:
            computed = [(indices.start, indices.stop)] if len(indices) else []
            self._runs = computed
            return computed
        n = len(indices)  # type: ignore[arg-type]
        if n < 8:
            self._runs = None
            return None
        computed = []
        append = computed.append
        max_runs = n >> 2
        iterator = iter(indices)  # type: ignore[arg-type]
        start = prev = next(iterator)
        for index in iterator:
            if index == prev + 1:
                prev = index
                continue
            append((start, prev + 1))
            if len(computed) > max_runs:
                self._runs = None
                return None
            start = prev = index
        append((start, prev + 1))
        self._runs = computed
        return computed

    def codes(self, name: str) -> "tuple[object, list[int | None]] | None":
        """Dictionary codes for ``name`` aligned with this batch, or None.

        Returns ``(dictionary, code_list)`` when the column is
        dictionary-encoded (codes gather lazily through the same run
        decomposition as values); None means the column is not encoded and
        the caller must use :meth:`column` values.  The answer is memoized
        per batch either way.
        """
        encodings = self._encodings
        if encodings is None:
            encodings = self._encodings = {}
        entry = encodings.get(name, False)
        if entry is not False:
            return entry  # type: ignore[return-value]
        source = self._source
        base = source.codes(name) if source is not None else None
        if base is None:
            encodings[name] = None
            return None
        dictionary, base_codes = base
        runs = self._gather_runs()
        if runs is None:
            codes = [base_codes[i] for i in self._indices]  # type: ignore[union-attr]
        elif len(runs) == 1:
            start, stop = runs[0]
            codes = base_codes[start:stop]
        else:
            codes = []
            extend = codes.extend
            for start, stop in runs:
                extend(base_codes[start:stop])
        entry = (dictionary, codes)
        encodings[name] = entry
        return entry

    def take(self, indices: Sequence[int]) -> "Batch":
        """A lazy gather of the given row positions (columns on demand).

        Taking from a batch that is itself an unmaterialized gather
        *composes* the index maps instead of chaining ``_source`` hops, so
        any take chain stays at most one gather away from a materialized
        source — deep Select chains would otherwise re-gather per level.
        """
        source = self._source
        if source is not None:
            own = self._indices
            composed = [own[i] for i in indices]  # type: ignore[index]
            return Batch(
                self.columns, {}, len(composed), source, composed, zone=self.zone
            )
        return Batch(self.columns, {}, len(indices), self, indices, zone=self.zone)

    def materialize(self) -> dict[str, list[object]]:
        """All columns, gathered: column name → value list."""
        return {name: self.column(name) for name in self.columns}

    def to_rows(self) -> list[Row]:
        """The batch as row dicts (the row/batch boundary)."""
        return _row_builder(self.columns)(self)

    @classmethod
    def from_rows(
        cls, columns: tuple[str, ...], rows: Sequence[Row]
    ) -> "Batch":
        """Pack row dicts into one batch (the fallback boundary).

        One ``row.get`` comprehension per column, measured fastest at
        batch sizes: single-pass alternatives (generated per-row tuple
        packers + a ``zip(*...)`` transpose, per-column appends in one
        loop, ``itemgetter``) all lose to CPython's C-dispatched
        comprehension loop — 0.3–0.95x at 1024+ rows (see EXPERIMENTS.md
        ZM).  Missing keys contribute NULL, matching every row-wise
        operator that rebuilds rows.
        """
        return cls(
            columns,
            {name: [row.get(name) for row in rows] for name in columns},
            len(rows),
        )

    @classmethod
    def from_columns(
        cls,
        columns: tuple[str, ...],
        data: dict[str, list[object]],
        start: int,
        stop: int,
    ) -> "Batch":
        """One :data:`BATCH_SIZE`-style horizontal slice of columnar data.

        The storage layer frames snapshots as a sequence of these slices —
        the vectorized in-memory format doubling as the on-disk format —
        so a snapshot write is a per-column list slice (C speed) and a cold
        start rehydrates straight into scan-ready columns.
        """
        sliced = {name: data[name][start:stop] for name in columns}
        length = stop - start if columns == () else len(sliced[columns[0]])
        return cls(columns, sliced, length)


def concat(columns: tuple[str, ...], batches: Iterable[Batch]) -> Batch:
    """Concatenate batches into one (for Sort/TopK, which need it all)."""
    data: dict[str, list[object]] = {name: [] for name in columns}
    length = 0
    for batch in batches:
        length += batch.length
        for name in columns:
            data[name].extend(batch.column(name))
    return Batch(columns, data, length)


# Row materialization is the vectorized path's hottest boundary: a generated
# dict-literal builder (constant keys, one list index per column) measured
# ~2x faster than dict(zip(...)) per row.  Builders are cached per column
# tuple; the cache is tiny (one entry per distinct output schema).
_ROW_BUILDERS: dict[tuple[str, ...], Callable[[Batch], list[Row]]] = {}

def _row_builder(columns: tuple[str, ...]) -> Callable[[Batch], list[Row]]:
    builder = _ROW_BUILDERS.get(columns)
    if builder is None:
        if columns:
            names = ", ".join(f"_c{i}" for i in range(len(columns)))
            entries = ", ".join(
                f"{name!r}: _c{i}[_i]" for i, name in enumerate(columns)
            )
            source = f"lambda {names}: [{{{entries}}} for _i in range(len(_c0))]"
            inner = eval(source)  # noqa: S307 - generated from repr'd names only

            def builder(batch: Batch) -> list[Row]:
                return inner(*(batch.column(name) for name in batch.columns))

        else:

            def builder(batch: Batch) -> list[Row]:
                return [{} for _ in range(batch.length)]

        _ROW_BUILDERS[columns] = builder
    return builder
