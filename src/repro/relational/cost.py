"""Cardinality estimation and cost-based planning inputs.

This module turns the PR-7 statistics substrate (zone maps, null counts,
dictionaries in :mod:`repro.relational.stats`) into per-operator row
estimates the optimizer can act on:

* **NDV** — distinct-value counts per column, sourced from a built
  :class:`~repro.relational.stats.Dictionary` when one exists (exact over
  the encoded extent), from a full pass when the extent is small enough
  to count outright, and from a strided sample otherwise.  Each estimate
  reports its source (``dictionary`` / ``extent`` / ``sample``) so traces
  and the CLI can qualify the number.
* **Selectivity** — Selinger-style per-conjunct fractions: equality is
  ``(1 - null_fraction) / ndv``, ranges interpolate the literal's
  position inside each chunk's zone-map band, IN sums equality
  selectivities, ``IS NULL`` reads the measured null fraction, and
  anything unprobeable falls back to the classic constants.
* **Plan rows** — :func:`estimate_plan_rows` folds those numbers through
  the operator tree (joins divide by the larger key NDV, aggregates cap
  at the product of group-key NDVs, limits truncate).

Estimates never gate correctness: every consumer in ``query.py`` pairs
them with a *soundness* proof (:func:`conjunct_error_free` here, key
provenance there) before changing plan shape, so a wildly wrong estimate
can only cost performance, never rows or error parity.

Estimates are cached per table with *staleness tolerance*: an entry
built at data version V keeps serving later versions until the row count
drifts past :data:`PLANNING_STALENESS_FRACTION`, the way production
planners live off periodic ANALYZE runs rather than re-profiling on
every write.  That keeps small-delta workloads (incremental ETL
refreshes) from paying a full-table statistics pass per mutation.  The
*soundness* proofs are exempt — :func:`_range_error_free` always reads
the current-version zone maps through :meth:`Table.derived`, because a
stale band certificate could change error behavior, while a stale
estimate can only change which of several proven-equivalent plans wins.
``set_costing_enabled(False)`` switches the optimizer's cost-based
rewrites off wholesale (benchmark baselines);
``set_statistics_enabled(False)`` degrades estimates to extent counts
and defaults while keeping table-size-driven decisions available.
"""

from __future__ import annotations

import weakref
from datetime import date
from typing import TYPE_CHECKING, Callable

import repro.relational.table as _table_module

from repro.expr.ast import BinaryOp, Expression, Identifier, InList, IsNull, Literal
from repro.expr.evaluator import _like
from repro.relational.algebra import (
    Aggregate,
    Distinct,
    IndexLookup,
    InLookup,
    Join,
    Limit,
    PartitionScan,
    Plan,
    Scan,
    Select,
    Sort,
    TopK,
    Union,
    Unpivot,
    Values,
    canonical_key,
)
from repro.relational.stats import (
    _comparison_item,
    _conjuncts,
    _value_band,
    column_zone_map,
    encoded_columns,
    statistics_enabled,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.relational.database import Database
    from repro.relational.table import Table

# -- global switch ------------------------------------------------------------

_COST_ENABLED = True


def costing_enabled() -> bool:
    """Whether the optimizer applies cost-based rewrites (default on)."""
    return _COST_ENABLED


def set_costing_enabled(enabled: bool) -> bool:
    """Toggle cost-based planning globally; returns the old value.

    Benchmark baselines flip this off to run the *same* logical plan
    without build-side/ordering decisions; estimates themselves (and the
    stats they read) are unaffected.
    """
    global _COST_ENABLED
    previous = _COST_ENABLED
    _COST_ENABLED = bool(enabled)
    return previous


# -- stale-tolerant estimate cache --------------------------------------------

#: A cached planning estimate survives data mutations until the table's
#: row count drifts by this fraction from the count at build time.
PLANNING_STALENESS_FRACTION = 0.10

_PLANNING_CACHE: "weakref.WeakKeyDictionary[Table, dict[object, tuple[int, int, object]]]" = (
    weakref.WeakKeyDictionary()
)


def _planning_cached(table: "Table", key: object, build: Callable[[], object]) -> object:
    """Version-tolerant memo for planning *estimates* (never proofs).

    Unlike :meth:`Table.derived`, an entry here is reused across data
    versions while ``len(table)`` stays within
    :data:`PLANNING_STALENESS_FRACTION` of the row count it was built at
    — small deltas (an incremental refresh touching a handful of
    records) keep planning O(1) instead of re-profiling the extent.
    """
    per_table = _PLANNING_CACHE.get(table)
    if per_table is None:
        per_table = {}
        _PLANNING_CACHE[table] = per_table
    entry = per_table.get(key)
    if entry is not None:
        version, built_rows, value = entry
        if version == table.version or abs(len(table) - built_rows) <= (
            PLANNING_STALENESS_FRACTION * max(built_rows, 1)
        ):
            return value
    value = build()
    per_table[key] = (table.version, len(table), value)
    return value


def refresh_planning_stats(table: "Table") -> None:
    """Drop one table's cached planning estimates (a manual ANALYZE).

    The next estimate request re-profiles against current data even if
    the row count has not drifted past the staleness tolerance.
    """
    _PLANNING_CACHE.pop(table, None)


# The staleness tolerance is exactly wrong across a *restore*: a recovered
# extent can land within the row-count drift window while holding entirely
# different data (and an exactly-restored — possibly rewound — version), so
# snapshot load / WAL replay must clear these estimates unconditionally.
# Registering here keeps table.py free of an import cycle with this module.
_table_module.register_restore_listener(refresh_planning_stats)


# -- NDV estimation -----------------------------------------------------------

#: Extents up to this long are counted exactly; longer ones are sampled
#: with a stride that yields about this many probes.
NDV_SAMPLE_ROWS = 2048

#: Classic fallback selectivities when no statistic answers.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.5
DEFAULT_NULL_FRACTION = 0.1

NDV_SOURCE_DICTIONARY = "dictionary"
NDV_SOURCE_EXTENT = "extent"
NDV_SOURCE_SAMPLE = "sample"


def column_ndv(table: "Table", column: str) -> tuple[float, str] | None:
    """Estimated distinct non-null count for one column, with its source.

    Returns ``(ndv, source)`` or None when statistics are disabled or the
    column does not exist.  Cached with staleness tolerance: see
    :func:`_planning_cached`.
    """
    if not statistics_enabled() or not table.schema.has_column(column):
        return None

    def build() -> tuple[float, str]:
        dictionary = encoded_columns(table).get(column)
        if dictionary is not None:
            return (float(dictionary.cardinality), NDV_SOURCE_DICTIONARY)
        values = table.column_snapshot()[column]
        length = len(values)
        stride = length // NDV_SAMPLE_ROWS
        if stride <= 1:
            distinct = len({canonical_key(v) for v in values if v is not None})
            return (float(max(distinct, 1)), NDV_SOURCE_EXTENT)
        if stride % 2 == 0:
            stride += 1  # odd strides alias less with periodic extents
        sample = values[::stride]
        sampled = len(sample)
        distinct = len({canonical_key(v) for v in sample if v is not None})
        if distinct * 2 >= sampled:
            # Near-unique in the sample: assume uniqueness scales with the
            # extent (the key-column case the join estimator cares about).
            estimate = distinct * (length / max(sampled, 1))
        else:
            # Low cardinality saturates: most values were seen already.
            estimate = float(distinct)
        return (float(max(min(estimate, float(length)), 1.0)), NDV_SOURCE_SAMPLE)

    return _planning_cached(table, ("ndv", column), build)  # type: ignore[return-value]


def column_null_fraction(table: "Table", column: str) -> float | None:
    """Measured NULL fraction from the zone maps, or None without stats."""
    if not statistics_enabled():
        return None

    def build() -> float | None:
        zone = column_zone_map(table, column)
        if not zone:
            return None
        total = sum(stats.length for stats in zone)
        if total == 0:
            return 0.0
        return sum(stats.null_count for stats in zone) / total

    return _planning_cached(table, ("null_fraction", column), build)  # type: ignore[return-value]


# -- conjunct selectivity and evaluation cost ---------------------------------


def _clamp(fraction: float) -> float:
    return min(max(fraction, 0.0), 1.0)


def _equality_selectivity(table: "Table | None", column: str) -> float:
    if table is None:
        return DEFAULT_EQ_SELECTIVITY
    estimate = column_ndv(table, column)
    if estimate is None:
        return DEFAULT_EQ_SELECTIVITY
    null_fraction = column_null_fraction(table, column) or 0.0
    return _clamp((1.0 - null_fraction) / max(estimate[0], 1.0))


def _range_selectivity(table: "Table | None", column: str, op: str, value: object) -> float:
    """Zone-map interpolation of ``column <op> literal`` match fraction."""
    if value is None:
        return 0.0  # ordering vs NULL keeps no rows
    band = _value_band(value)
    if table is None or not statistics_enabled() or band is None:
        return DEFAULT_RANGE_SELECTIVITY

    def build() -> float:
        zone = column_zone_map(table, column)
        if not zone:
            return DEFAULT_RANGE_SELECTIVITY
        total = sum(stats.length for stats in zone)
        if total == 0:
            return 0.0
        matching = 0.0
        for stats in zone:
            populated = stats.length - stats.null_count
            if populated <= 0:
                continue
            if stats.band != band:
                matching += populated * DEFAULT_RANGE_SELECTIVITY
                continue
            matching += populated * _band_fraction(op, value, stats.lo, stats.hi)
        return _clamp(matching / total)

    key = ("range_sel", column, op, canonical_key(value))
    return _planning_cached(table, key, build)  # type: ignore[return-value]


def _band_fraction(op: str, value: object, lo: object, hi: object) -> float:
    """Fraction of a [lo, hi] chunk passing ``x <op> value`` (uniform model)."""
    try:
        if value <= lo:  # type: ignore[operator]
            below = 0.0
        elif value >= hi:  # type: ignore[operator]
            below = 1.0
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            below = (value - lo) / (hi - lo)  # type: ignore[operator]
        else:
            below = DEFAULT_RANGE_SELECTIVITY  # inside a non-numeric band
    except TypeError:
        return DEFAULT_RANGE_SELECTIVITY
    if op in ("<", "<="):
        return _clamp(below)
    return _clamp(1.0 - below)


def conjunct_selectivity(table: "Table | None", conjunct: Expression) -> float:
    """Estimated fraction of rows one conjunct keeps (TRUE under 3VL)."""
    if isinstance(conjunct, IsNull):
        operand = conjunct.operand
        fraction = DEFAULT_NULL_FRACTION
        if table is not None and isinstance(operand, Identifier) and len(operand.path) == 1:
            measured = column_null_fraction(table, operand.name)
            if measured is not None:
                fraction = measured
        return _clamp(1.0 - fraction) if conjunct.negated else _clamp(fraction)
    if isinstance(conjunct, InList):
        operand = conjunct.operand
        if isinstance(operand, Identifier) and len(operand.path) == 1:
            eq = _equality_selectivity(table, operand.name)
        else:
            eq = DEFAULT_EQ_SELECTIVITY
        distinct_items = {
            canonical_key(item.value)
            for item in conjunct.items
            if isinstance(item, Literal) and item.value is not None
        }
        fraction = _clamp(eq * len(distinct_items))
        return _clamp(1.0 - fraction) if conjunct.negated else fraction
    item = _comparison_item(conjunct)
    if item is not None:
        column, op, value = item
        if op == "=":
            if value is None:
                return 0.0
            return _equality_selectivity(table, column)
        if op == "!=":
            if value is None:
                return 0.0
            null_fraction = 0.0
            if table is not None:
                null_fraction = column_null_fraction(table, column) or 0.0
            return _clamp(1.0 - null_fraction - _equality_selectivity(table, column))
        return _range_selectivity(table, column, op, value)
    if isinstance(conjunct, BinaryOp) and conjunct.op == "LIKE":
        return _like_selectivity(table, conjunct)
    if isinstance(conjunct, BinaryOp) and conjunct.op == "OR":
        left = conjunct_selectivity(table, conjunct.left)
        right = conjunct_selectivity(table, conjunct.right)
        return _clamp(left + right - left * right)
    return 1.0


def _like_selectivity(table: "Table | None", conjunct: BinaryOp) -> float:
    """LIKE keep-fraction, measured against the dictionary when one exists.

    A built dictionary holds every distinct value of the column, so
    matching the pattern against each entry turns the classic 0.5 guess
    into a measurement of the value space (uniform-frequency model).
    """
    if (
        table is None
        or not statistics_enabled()
        or not isinstance(conjunct.left, Identifier)
        or len(conjunct.left.path) != 1
        or not isinstance(conjunct.right, Literal)
        or not isinstance(conjunct.right.value, str)
    ):
        return DEFAULT_LIKE_SELECTIVITY
    column = conjunct.left.name
    pattern = conjunct.right.value

    def build() -> float:
        dictionary = encoded_columns(table).get(column)
        if dictionary is None:
            return DEFAULT_LIKE_SELECTIVITY
        values = [value for value in dictionary.values if value is not None]
        if not values:
            return 0.0
        matched = sum(1 for value in values if _like(str(value), pattern))
        null_fraction = column_null_fraction(table, column) or 0.0
        return _clamp((1.0 - null_fraction) * matched / len(values))

    return _planning_cached(table, ("like_sel", column, pattern), build)  # type: ignore[return-value]


def predicate_selectivity(table: "Table | None", predicate: Expression) -> float:
    """Estimated keep-fraction of a whole predicate (independence model)."""
    fraction = 1.0
    for conjunct in _conjuncts(predicate):
        fraction *= conjunct_selectivity(table, conjunct)
    return _clamp(fraction)


def conjunct_cost(table: "Table | None", conjunct: Expression) -> float:
    """Relative per-row evaluation cost of one conjunct.

    Dictionary-aware: ``LIKE`` over a dictionary-encoded column runs in
    code space (one pattern match per distinct value, then a list index
    per row), so it is costed *below* a generic comparison — hoisting a
    full-width equality pass above it would be a pessimization.
    """
    if isinstance(conjunct, IsNull):
        return 0.5
    if isinstance(conjunct, InList):
        return 1.0 + 0.25 * len(conjunct.items)
    if isinstance(conjunct, BinaryOp):
        if conjunct.op == "LIKE":
            if (
                table is not None
                and isinstance(conjunct.left, Identifier)
                and len(conjunct.left.path) == 1
                and statistics_enabled()
            ):
                name = conjunct.left.name
                encoded = _planning_cached(
                    table, ("dict_column", name), lambda: name in encoded_columns(table)
                )
                if encoded:
                    return 0.75
            return 4.0
        if conjunct.op in ("=", "!=", "<", "<=", ">", ">="):
            return 1.0
    return 8.0


# -- error-freedom proofs -----------------------------------------------------

#: Bands whose internal ordering the evaluator accepts without raising:
#: num never contains bool or NaN (type screening), str and bool compare
#: within themselves.  Date ordering raises in ``_compare``, so ``date``
#: is deliberately absent.
_ORDERABLE_BANDS = frozenset({"num", "str", "bool"})


def _safe_identifier(operand: Expression, columns: set[str]) -> bool:
    return (
        isinstance(operand, Identifier)
        and len(operand.path) == 1
        and operand.name in columns
    )


def _safe_scalar(operand: Expression, columns: set[str]) -> bool:
    return isinstance(operand, Literal) or _safe_identifier(operand, columns)


def conjunct_error_free(table: "Table", conjunct: Expression) -> bool:
    """True when evaluating this conjunct on any row of ``table`` cannot raise.

    The proof mirrors :func:`repro.expr.evaluator._compare` exactly:

    * ``IS [NOT] NULL`` over an existing plain column never raises.
    * ``=`` / ``!=`` never raise for *any* value pair (cross-type equality
      degrades to False/True), so they are safe once both operands resolve
      — plain existing identifiers or literals.
    * ``LIKE`` coerces both sides through ``str`` after the NULL check.
    * ``IN`` / ``NOT IN`` over literals reduce to equality comparisons.
    * Ordering (``< <= > >=``) raises on cross-band pairs and on dates, so
      a range conjunct is only safe with a zone-map proof: every chunk is
      all-NULL or sits in the literal's own orderable band.  A NULL
      literal is safe unconditionally (ordering vs NULL yields NULL
      before any comparison happens).

    Anything else — arithmetic, functions, NOT, dotted paths, unknown
    columns — answers False; the optimizer then treats the conjunct as a
    reorder barrier.
    """
    columns = set(table.schema.column_names)
    if isinstance(conjunct, IsNull):
        return _safe_scalar(conjunct.operand, columns)
    if isinstance(conjunct, InList):
        return _safe_scalar(conjunct.operand, columns) and all(
            isinstance(item, Literal) for item in conjunct.items
        )
    if isinstance(conjunct, BinaryOp):
        op = conjunct.op
        if op in ("=", "!=", "LIKE"):
            return _safe_scalar(conjunct.left, columns) and _safe_scalar(
                conjunct.right, columns
            )
        if op in ("<", "<=", ">", ">="):
            for ident, literal in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not (
                    _safe_identifier(ident, columns) and isinstance(literal, Literal)
                ):
                    continue
                assert isinstance(ident, Identifier)
                return _range_error_free(table, ident.name, literal.value)
            if isinstance(conjunct.left, Literal) and isinstance(
                conjunct.right, Literal
            ):
                return _literal_pair_orderable(
                    conjunct.left.value, conjunct.right.value
                )
            return False
    return False


def _range_error_free(table: "Table", column: str, value: object) -> bool:
    if value is None:
        return True  # ordering vs NULL short-circuits to NULL, never compares
    band = _value_band(value)
    if band not in _ORDERABLE_BANDS:
        return False  # NaN / date / exotic literals: no proof
    if not statistics_enabled():
        return False  # no zone maps to certify the column's bands
    zone = column_zone_map(table, column)
    if not zone:
        return False
    for stats in zone:
        if stats.null_count == stats.length:
            continue  # all-NULL chunks never reach the comparison
        if stats.band != band:
            return False
    return True


def _literal_pair_orderable(left: object, right: object) -> bool:
    if left is None or right is None:
        return True
    left_band, right_band = _value_band(left), _value_band(right)
    return left_band == right_band and left_band in _ORDERABLE_BANDS


# -- per-operator row estimates -----------------------------------------------


def base_table_of(plan: Plan, db: "Database") -> "Table | None":
    """The base table whose columns a node's rows still carry, or None.

    Descends through row-preserving wrappers (Select/Sort/Limit/TopK/
    Distinct) to the scanned table; stops at anything that renames,
    projects, or synthesizes columns — estimates above those fall back to
    defaults rather than misattribute statistics.
    """
    while isinstance(plan, (Select, Sort, Limit, TopK, Distinct)):
        plan = plan.child
    if isinstance(plan, (Scan, PartitionScan, IndexLookup, InLookup)):
        if db.has_table(plan.table):
            return db.table(plan.table)
    return None


def _key_ndv(side: Plan, columns: tuple[str, ...], db: "Database", side_rows: float) -> float:
    """Joint NDV of a join side's key columns, capped at the side's rows."""
    table = base_table_of(side, db)
    if table is None:
        return max(side_rows, 1.0)
    joint = 1.0
    known = False
    for column in columns:
        estimate = column_ndv(table, column)
        if estimate is None:
            continue
        known = True
        joint *= max(estimate[0], 1.0)
    if not known:
        return max(side_rows, 1.0)
    return max(min(joint, max(side_rows, 1.0)), 1.0)


def estimate_plan_rows(
    plan: Plan, db: "Database", memo: dict[int, float] | None = None
) -> float:
    """Estimated output rows of one operator subtree.

    Pure arithmetic over cached statistics — never executes the plan.
    Unknown node kinds pass through their only child's estimate (or 0 for
    unknown leaves), so wrapper nodes from other modules (``Vectorized``)
    need no special case here.
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(plan))
    if cached is not None:
        return cached
    rows = _estimate(plan, db, memo)
    memo[id(plan)] = rows
    return rows


def _estimate(plan: Plan, db: "Database", memo: dict[int, float]) -> float:
    if isinstance(plan, Scan):
        return float(len(db.table(plan.table))) if db.has_table(plan.table) else 0.0
    if isinstance(plan, PartitionScan):
        if not db.has_table(plan.table):
            return 0.0
        table = db.table(plan.table)
        counts = table.partition_row_counts()
        if any(pid >= len(counts) for pid in plan.partitions):
            return float(len(table))  # stale scheme: execution scans everything
        return float(sum(counts[pid] for pid in plan.partitions))
    if isinstance(plan, IndexLookup):
        return _estimate_index_lookup(plan, db)
    if isinstance(plan, InLookup):
        return _estimate_in_lookup(plan, db)
    if isinstance(plan, Values):
        return float(len(plan.rows))
    if isinstance(plan, Select):
        child = estimate_plan_rows(plan.child, db, memo)
        table = base_table_of(plan.child, db)
        return child * predicate_selectivity(table, plan.predicate)
    if isinstance(plan, Join):
        left = estimate_plan_rows(plan.left, db, memo)
        right = estimate_plan_rows(plan.right, db, memo)
        left_keys = tuple(lk for lk, _ in plan.on)
        right_keys = tuple(rk for _, rk in plan.on)
        divisor = max(
            _key_ndv(plan.left, left_keys, db, left),
            _key_ndv(plan.right, right_keys, db, right),
        )
        inner = (left * right) / divisor
        if plan.how == "left":
            return max(inner, left)
        return inner
    if isinstance(plan, Aggregate):
        child = estimate_plan_rows(plan.child, db, memo)
        if not plan.group_by:
            return 1.0
        table = base_table_of(plan.child, db)
        groups = 1.0
        for column in plan.group_by:
            estimate = column_ndv(table, column) if table is not None else None
            groups *= max(estimate[0], 1.0) if estimate is not None else max(child, 1.0)
        return max(min(groups, child), 0.0)
    if isinstance(plan, (Limit, TopK)):
        child = estimate_plan_rows(plan.child, db, memo)
        if isinstance(plan, Limit) and plan.count < 0:
            return max(child + plan.count, 0.0)
        return min(child, float(max(plan.count, 0)))
    if isinstance(plan, Union):
        return sum(estimate_plan_rows(branch, db, memo) for branch in plan.inputs)
    if isinstance(plan, Unpivot):
        child = estimate_plan_rows(plan.child, db, memo)
        return child * len(plan.value_columns)
    children = plan.children()
    if len(children) == 1:
        # Row-preserving or unknown wrappers (Project/Compute/Rename/Sort/
        # Distinct/Coerce/Pivot/Vectorized/...): pass the child through.
        return estimate_plan_rows(children[0], db, memo)
    if not children:
        return 0.0
    return sum(estimate_plan_rows(child, db, memo) for child in children)


def _estimate_index_lookup(plan: IndexLookup, db: "Database") -> float:
    if not db.has_table(plan.table):
        return 0.0
    table = db.table(plan.table)
    index = table.matching_index([column for column, _ in plan.items])
    if index is not None:
        values = dict(plan.items)
        try:
            key = tuple(values[column] for column in index.columns)
            return float(len(index.lookup(key)))
        except TypeError:
            pass  # unhashable probe value: fall through to the estimate
    rows = float(len(table))
    for column, _value in plan.items:
        rows *= _equality_selectivity(table, column)
    return rows


def _estimate_in_lookup(plan: InLookup, db: "Database") -> float:
    if not db.has_table(plan.table):
        return 0.0
    table = db.table(plan.table)
    index = table.matching_index([plan.column])
    if index is not None:
        try:
            return float(
                sum(len(index.lookup((value,))) for value in plan.values)
            )
        except TypeError:
            pass
    return float(len(table)) * min(
        _equality_selectivity(table, plan.column) * len(plan.values), 1.0
    )
