"""A named collection of tables."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.schema import TableSchema
from repro.relational.table import Table


class Database:
    """One contributor database (or the warehouse)."""

    def __init__(self, name: str):
        if not name:
            raise SchemaError("database name must be non-empty")
        self.name = name
        self._tables: dict[str, Table] = {}

    def create_table(self, schema: TableSchema) -> Table:
        """Create an empty table; raises on duplicate names."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists in {self.name}")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def ensure_table(self, schema: TableSchema) -> Table:
        """Return the existing table or create it; schemas must agree."""
        existing = self._tables.get(schema.name)
        if existing is None:
            return self.create_table(schema)
        if existing.schema != schema:
            raise SchemaError(
                f"table {schema.name!r} exists with a different schema"
            )
        return existing

    def drop_table(self, name: str) -> None:
        """Remove a table and its data."""
        if name not in self._tables:
            raise SchemaError(f"no table {name!r} in database {self.name}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        if name not in self._tables:
            raise SchemaError(f"no table {name!r} in database {self.name}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(self._tables)

    def insert(self, table_name: str, rows: Iterable[Mapping[str, object]]) -> int:
        """Bulk insert into a named table."""
        return self.table(table_name).insert_many(rows)

    def total_rows(self) -> int:
        """Row count across all tables (used by storage-size benchmarks)."""
        return sum(len(table) for table in self._tables.values())

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.table_names()})"
