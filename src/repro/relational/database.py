"""A named collection of tables."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.schema import TableSchema
from repro.relational.table import Table


class Database:
    """One contributor database (or the warehouse)."""

    #: Plan-cache capacity; the cache is cleared wholesale when full, the
    #: same bound-without-bookkeeping policy as expr/compile.py's caches.
    PLAN_CACHE_LIMIT = 512

    def __init__(self, name: str):
        if not name:
            raise SchemaError("database name must be non-empty")
        self.name = name
        self._tables: dict[str, Table] = {}
        self._structure_version = 0
        self._plan_cache: dict[str, tuple[int, object]] = {}
        # Structure listener: the durability layer's DDL hook, called after
        # create_table/drop_table with (op, payload).  Payloads carry the
        # Table on create so the listener can chain a mutation listener.
        self._structure_listener: (
            Callable[[str, dict[str, object]], None] | None
        ) = None

    def set_structure_listener(
        self, listener: Callable[[str, dict[str, object]], None] | None
    ) -> None:
        """Install (or clear) the single DDL listener (durability hook)."""
        self._structure_listener = listener

    def _notify(self, op: str, payload: dict[str, object]) -> None:
        listener = self._structure_listener
        if listener is not None:
            listener(op, payload)

    @property
    def structure_version(self) -> int:
        """The structural (DDL) counter component of :attr:`epoch`."""
        return self._structure_version

    @property
    def epoch(self) -> int:
        """Monotone schema/data/index version for plan-cache keying.

        Sums the structural counter (table create/drop) with every table's
        data version, index epoch, and partition epoch.  Each component only
        ever increases within one process, so the sum is monotone: any
        insert, delete, update, index create/drop, table create/drop, or
        repartition yields a new epoch and invalidates cached plans.
        (``snapshot.database_version`` — data versions only — is left
        untouched; the GUAVA change feed keys on it.)
        """
        total = self._structure_version
        for table in self._tables.values():
            total += table.version + table.index_epoch + table.partition_epoch
        return total

    def plan_cache_get(self, fingerprint: str, epoch: int) -> object | None:
        """The plan cached under ``fingerprint`` if it was planned at ``epoch``."""
        entry = self._plan_cache.get(fingerprint)
        if entry is not None and entry[0] == epoch:
            return entry[1]
        return None

    def plan_cache_put(self, fingerprint: str, epoch: int, plan: object) -> None:
        if len(self._plan_cache) >= self.PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[fingerprint] = (epoch, plan)

    def plan_cache_clear(self) -> None:
        self._plan_cache.clear()

    def create_table(self, schema: TableSchema) -> Table:
        """Create an empty table; raises on duplicate names."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists in {self.name}")
        table = Table(schema)
        self._tables[schema.name] = table
        self._structure_version += 1
        self._notify("create_table", {"schema": schema, "table": table})
        return table

    def ensure_table(self, schema: TableSchema) -> Table:
        """Return the existing table or create it; schemas must agree."""
        existing = self._tables.get(schema.name)
        if existing is None:
            return self.create_table(schema)
        if existing.schema != schema:
            raise SchemaError(
                f"table {schema.name!r} exists with a different schema"
            )
        return existing

    def drop_table(self, name: str) -> None:
        """Remove a table and its data."""
        if name not in self._tables:
            raise SchemaError(f"no table {name!r} in database {self.name}")
        dropped = self._tables.pop(name)
        # Fold the dropped table's contribution into the structural counter so
        # the epoch never rewinds to a value it held before the drop.
        self._structure_version += (
            1 + dropped.version + dropped.index_epoch + dropped.partition_epoch
        )
        self._notify("drop_table", {"name": name, "table": dropped})

    def restore_structure_version(self, version: int) -> None:
        """Set the structural counter to an exact recovered value (restore only).

        Recovery needs :attr:`epoch` bit-identical to the crashed process's
        so a plan cached before the crash could never be mistaken for one
        planned against the recovered data; the plan cache is cleared too
        since its entries were planned by a process that no longer exists.
        """
        self._structure_version = version
        self._plan_cache.clear()

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        if name not in self._tables:
            raise SchemaError(f"no table {name!r} in database {self.name}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(self._tables)

    def insert(self, table_name: str, rows: Iterable[Mapping[str, object]]) -> int:
        """Bulk insert into a named table."""
        return self.table(table_name).insert_many(rows)

    def total_rows(self) -> int:
        """Row count across all tables (used by storage-size benchmarks)."""
        return sum(len(table) for table in self._tables.values())

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.table_names()})"
