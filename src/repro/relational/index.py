"""Hash indexes over table columns."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

Row = Mapping[str, object]


class HashIndex:
    """Equality index on one or more columns.

    Values are row positions within the owning table's row list; the table
    keeps indexes synchronized on insert/delete.
    """

    def __init__(self, columns: tuple[str, ...]):
        if not columns:
            raise ValueError("index requires at least one column")
        self.columns = columns
        self._buckets: dict[tuple[object, ...], list[int]] = defaultdict(list)

    def key_of(self, row: Row) -> tuple[object, ...]:
        """The index key tuple for ``row``."""
        return tuple(row.get(column) for column in self.columns)

    def add(self, row: Row, position: int) -> None:
        self._buckets[self.key_of(row)].append(position)

    def lookup(self, key: tuple[object, ...]) -> list[int]:
        """Positions of rows whose indexed columns equal ``key``."""
        return list(self._buckets.get(key, ()))

    def rebuild(self, rows: Iterable[Row]) -> None:
        """Recompute the index from scratch (after bulk deletes)."""
        self._buckets.clear()
        for position, row in enumerate(rows):
            self.add(row, position)

    def __len__(self) -> int:
        return sum(len(positions) for positions in self._buckets.values())
