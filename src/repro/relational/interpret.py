"""Reference executor: the materializing, tree-walking interpreter.

This module preserves the original (pre-streaming) execution strategy as an
executable specification of plan semantics: every node materializes a full
``list[Row]``, ``Scan`` copies each row defensively, and predicates and
derivations recurse through :class:`~repro.expr.evaluator.Evaluator` once
per row.  The streaming executor in :mod:`repro.relational.algebra` and the
optimizer's rewrites must agree with this interpreter row for row —
property tests in ``tests/test_relational`` assert that on randomized
databases, and ``benchmarks/bench_relational_core.py`` measures the
streaming/compiled/index-aware speedup against it.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.expr.evaluator import Evaluator, sql_equal
from repro.relational.algebra import (
    Aggregate,
    Coerce,
    Compute,
    Distinct,
    IndexLookup,
    InLookup,
    Join,
    Limit,
    PartitionScan,
    Pivot,
    Plan,
    Project,
    Rename,
    Row,
    Scan,
    Select,
    Sort,
    TopK,
    Union,
    Unpivot,
    Values,
    _aggregate,
    _sort_key,
    canonical_key,
)
from repro.relational.database import Database

_EVALUATOR = Evaluator()


def execute_interpreted(plan: Plan, db: Database) -> list[Row]:
    """Run ``plan`` with the naive materializing interpreter."""
    if isinstance(plan, Scan):
        return db.table(plan.table).rows()
    if isinstance(plan, IndexLookup):
        # Semantics of the optimizer's index probe, spelled as a full scan.
        return [
            row
            for row in db.table(plan.table).rows()
            if all(sql_equal(row.get(column), value) for column, value in plan.items)
        ]
    if isinstance(plan, InLookup):
        # Semantics of the optimizer's membership probe, as a full scan.
        return [
            row
            for row in db.table(plan.table).rows()
            if any(sql_equal(row.get(plan.column), value) for value in plan.values)
        ]
    if isinstance(plan, PartitionScan):
        # Semantics of the optimizer's partition pruning, spelled as a full
        # scan filtered by partition membership, in insertion order.  The
        # oracle ignores the partition layout itself; a missing/mismatched
        # scheme degenerates to the full scan, like the streaming fallback.
        table = db.table(plan.table)
        scheme = table.partitioning
        if scheme is None or any(
            pid >= scheme.partition_count for pid in plan.partitions
        ):
            return table.rows()
        wanted = set(plan.partitions)
        column = scheme.column
        return [
            row
            for row in table.rows()
            if scheme.partition_of(row.get(column)) in wanted
        ]
    if isinstance(plan, Values):
        return [dict(zip(plan.columns, row)) for row in plan.rows]
    if isinstance(plan, Select):
        return [
            row
            for row in execute_interpreted(plan.child, db)
            if _EVALUATOR.satisfied(plan.predicate, row)
        ]
    if isinstance(plan, Project):
        rows = execute_interpreted(plan.child, db)
        available = set(plan.child.output_columns(db))
        missing = [column for column in plan.columns if column not in available]
        if missing:
            raise QueryError(f"projection references unknown column(s) {missing}")
        return [{column: row.get(column) for column in plan.columns} for row in rows]
    if isinstance(plan, Compute):
        out: list[Row] = []
        for row in execute_interpreted(plan.child, db):
            extended = dict(row)
            for name, expression in plan.derivations:
                extended[name] = _EVALUATOR.evaluate(expression, row)
            out.append(extended)
        return out
    if isinstance(plan, Rename):
        table = dict(plan.mapping)
        return [
            {table.get(column, column): value for column, value in row.items()}
            for row in execute_interpreted(plan.child, db)
        ]
    if isinstance(plan, Join):
        return _join(plan, db)
    if isinstance(plan, Union):
        return _union(plan, db)
    if isinstance(plan, Distinct):
        columns = plan.child.output_columns(db)
        seen: set[tuple[object, ...]] = set()
        out = []
        for row in execute_interpreted(plan.child, db):
            key = tuple(canonical_key(row.get(column)) for column in columns)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return out
    if isinstance(plan, Unpivot):
        out = []
        for row in execute_interpreted(plan.child, db):
            for column in plan.value_columns:
                record: Row = {c: row.get(c) for c in plan.id_columns}
                record[plan.attribute_column] = column
                record[plan.value_column] = row.get(column)
                out.append(record)
        return out
    if isinstance(plan, Pivot):
        return _pivot(plan, db)
    if isinstance(plan, Coerce):
        out = []
        for row in execute_interpreted(plan.child, db):
            converted = dict(row)
            for column, dtype in plan.column_types:
                if column in converted:
                    converted[column] = dtype.coerce(converted[column])
            out.append(converted)
        return out
    if isinstance(plan, Aggregate):
        return _aggregate_rows(plan, db)
    if isinstance(plan, Sort):
        rows = execute_interpreted(plan.child, db)
        for column, ascending in reversed(plan.keys):
            rows.sort(key=lambda row: _sort_key(row.get(column)), reverse=not ascending)
        return rows
    if isinstance(plan, TopK):
        # Specification of the fused top-k: full sort, then slice.
        rows = execute_interpreted(plan.child, db)
        for column, ascending in reversed(plan.keys):
            rows.sort(key=lambda row: _sort_key(row.get(column)), reverse=not ascending)
        return rows[: max(plan.count, 0)]
    if isinstance(plan, Limit):
        return execute_interpreted(plan.child, db)[: plan.count]
    raise QueryError(f"interpreter cannot execute plan node {type(plan).__name__}")


def _join(plan: Join, db: Database) -> list[Row]:
    if plan.how not in ("inner", "left"):
        raise QueryError(f"unsupported join type {plan.how!r}")
    left_rows = execute_interpreted(plan.left, db)
    right_rows = execute_interpreted(plan.right, db)
    left_cols = plan.left.output_columns(db)
    right_cols = plan.right.output_columns(db)
    right_keys = tuple(rk for _, rk in plan.on)
    overlap = (set(left_cols) & set(right_cols)) - set(right_keys)
    if overlap:
        raise QueryError(
            f"join would collide on columns {sorted(overlap)}; rename one side"
        )
    buckets: dict[tuple[object, ...], list[Row]] = {}
    for row in right_rows:
        # canonical_key keeps TRUE and 1 in distinct buckets (see algebra).
        key = tuple(canonical_key(row.get(rk)) for _, rk in plan.on)
        buckets.setdefault(key, []).append(row)
    null_right = {column: None for column in right_cols if column not in right_keys}
    out: list[Row] = []
    for row in left_rows:
        key = tuple(canonical_key(row.get(lk)) for lk, _ in plan.on)
        matches = buckets.get(key, []) if None not in key else []
        if matches:
            for match in matches:
                merged = dict(row)
                merged.update({c: v for c, v in match.items() if c not in right_keys})
                out.append(merged)
        elif plan.how == "left":
            merged = dict(row)
            merged.update(null_right)
            out.append(merged)
    return out


def _union(plan: Union, db: Database) -> list[Row]:
    if not plan.inputs:
        return []
    columns = plan.output_columns(db)
    out: list[Row] = []
    for branch in plan.inputs:
        branch_columns = set(branch.output_columns(db))
        if branch_columns != set(columns):
            raise QueryError(
                f"union inputs disagree on columns: {sorted(branch_columns)} "
                f"vs {sorted(columns)}"
            )
        for row in execute_interpreted(branch, db):
            out.append({column: row.get(column) for column in columns})
    return out


def _pivot(plan: Pivot, db: Database) -> list[Row]:
    grouped: dict[tuple[object, ...], Row] = {}
    order: list[tuple[object, ...]] = []
    for row in execute_interpreted(plan.child, db):
        key = tuple(row.get(column) for column in plan.key_columns)
        if key not in grouped:
            base: Row = {c: v for c, v in zip(plan.key_columns, key)}
            base.update({attribute: None for attribute in plan.attributes})
            grouped[key] = base
            order.append(key)
        attribute = row.get(plan.attribute_column)
        if attribute in plan.attributes:
            grouped[key][str(attribute)] = row.get(plan.value_column)
    return [grouped[key] for key in order]


def _aggregate_rows(plan: Aggregate, db: Database) -> list[Row]:
    groups: dict[tuple[object, ...], list[Row]] = {}
    order: list[tuple[object, ...]] = []
    # Canonical keys tag bools and repr containers, so output rows carry
    # each group's first-seen original values (same rule as algebra).
    representatives: dict[tuple[object, ...], Row] = {}
    for row in execute_interpreted(plan.child, db):
        key = tuple(canonical_key(row.get(column)) for column in plan.group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
            representatives[key] = {
                column: row.get(column) for column in plan.group_by
            }
        groups[key].append(row)
    out: list[Row] = []
    for key in order:
        rows = groups[key]
        result: Row = representatives[key]
        for spec in plan.aggregates:
            result[spec.alias] = _aggregate(spec, rows)
        out.append(result)
    if not out and not plan.group_by and plan.aggregates:
        out.append({spec.alias: _aggregate(spec, []) for spec in plan.aggregates})
    return out
