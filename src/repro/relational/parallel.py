"""Morsel-driven parallel execution of vectorized subtrees.

The third execution strategy over the same plan semantics: a fully
vectorized subtree is decomposed into *morsels* — contiguous runs of
source batches (partition × chunk work units for a pruned
:class:`~repro.relational.algebra.PartitionScan`) — and the per-morsel
work self-schedules onto a shared worker pool, the dispatch discipline of
Leis et al.'s morsel-driven parallelism: a worker that finishes early
claims the next unstarted morsel, so load imbalance is stolen away at
morsel granularity without a separate stealing protocol.

Reuse over reimplementation: each morsel task substitutes its batches for
the pipeline's source leaf (via the :class:`_BatchSource` kernel) and runs
the *existing* batch kernels from :mod:`repro.relational.vectorize`.
Partition-wise operators share state the same way —

- Aggregate: each morsel consumes into its own
  :class:`~repro.relational.vectorize.GroupedAggregation`; partials merge
  in morsel order, reproducing the serial pass's first-seen group order
  and per-group value order exactly.
- Join: one :class:`~repro.relational.vectorize.JoinBuild` is built
  serially and shared read-only across workers probing left-side morsels.
- Everything else (Sort, TopK, Distinct, Limit, Union, …) runs serially
  over its children's parallelized outputs.

Determinism contract: morsel outputs are concatenated in morsel index
order, which is source batch order, which is extent order — so results
are row-for-row identical (values AND order) to the serial batch executor
and therefore to the interpreter.  When a morsel raises, the exception of
the lowest morsel index is re-raised (error-*type* parity only, the same
relaxation the batch path documents).

Honesty about the GIL: on CPython threads the pool buys parallel speedup
only for the allocator/C-level slices of the work; measured speedups are
reported as-is in EXPERIMENTS.md, and per-worker utilization is annotated
into the trace so numbers are explainable.  The pool is pluggable
(:func:`set_worker_pool_factory`) so a process pool or a free-threaded
runtime can slot in without touching the executor.

Breaking the GIL barrier: when the resolved pool mode is ``process``
(:func:`set_worker_pool_mode`, ``REPRO_WORKER_POOL``, or ``auto`` on a
multi-core machine with a large enough input), eligible stages ship
morsel *descriptors* instead of closures — the stage plan is cloned with
its source leaf replaced by a
:class:`~repro.storage.segments.SegmentScan` naming a shared mmap-backed
segment file plus one morsel's chunk indices, pickled, and executed by
:class:`~repro.relational.procpool.ProcessWorkerPool` workers running
the same serial batch kernels.  Join build sides broadcast through a
segment file the same way.  The determinism contract is unchanged:
segment chunk order is extent order, results are absorbed in task order,
and partition-wise merges (Aggregate partials, JoinBuildLeft pair lists)
happen in the parent exactly as on threads.  Stages a process cannot run
(multi-partition scans, stale schemes, unpicklable plans) and inputs too
small to amortize a segment build (``cost.py`` row estimates, auto mode
only) fall back to the thread pool, with every decision recorded in the
trace gauges.
"""

from __future__ import annotations

import os
import pickle
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.relational.algebra import (
    Aggregate,
    Compute,
    ExecContext,
    Join,
    PartitionScan,
    Plan,
    Project,
    Rename,
    Row,
    Scan,
    Select,
)
from repro.relational.batch import Batch
from repro.relational.query import _with_children
from repro.relational.stats import SKIP_CHUNK, SelectAnalysis, statistics_enabled
from repro.relational.vectorize import (
    _KERNELS,
    GroupedAggregation,
    JoinBuild,
    JoinBuildLeft,
    _node_batches,
    aggregate_output_columns,
)

if TYPE_CHECKING:
    from repro.relational.table import Table
    from repro.storage.segments import Segment

#: Source batches per morsel: 8 × BATCH_SIZE = 8192 rows.  Large enough to
#: amortize per-task scheduling, small enough that work stealing can
#: rebalance a skewed pipeline.
MORSEL_BATCHES = 8

#: Auto-mode floor for routing a stage to worker processes: below this
#: many source rows the per-task pickling and queue hops cost more than
#: the GIL costs threads.
PROCESS_MIN_ROWS = 50_000

#: Auto-mode floor when the extent's segment is cold (not yet built at
#: this data version): the one-off materialization write must be
#: amortizable against the estimated scan work, so the bar is higher.
PROCESS_COLD_MIN_ROWS = 200_000


# -- worker pool ---------------------------------------------------------------


@dataclass
class WorkerStats:
    """Per-worker accounting for one pool run."""

    worker: int
    morsels: int = 0
    busy_s: float = 0.0


class ThreadWorkerPool:
    """Self-scheduling thread pool over a shared morsel queue.

    ``run(tasks)`` executes every task and returns ``(results, stats)``
    with results in task order.  Workers claim the next unstarted task
    under a lock — the morsel-driven equivalent of work stealing, since an
    early finisher takes work a slower worker would otherwise have run.
    A single worker (or a single task) runs inline on the calling thread.
    Task exceptions are collected and the one with the lowest task index
    is re-raised after the pool drains.
    """

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))

    def run(
        self, tasks: Sequence[Callable[[], object]]
    ) -> tuple[list[object], list[WorkerStats]]:
        n = len(tasks)
        count = min(self.workers, n) if n else 1
        stats = [WorkerStats(i) for i in range(count)]
        results: list[object] = [None] * n
        errors: list[BaseException | None] = [None] * n
        cursor = [0]
        lock = threading.Lock()

        def drain(stat: WorkerStats) -> None:
            timer = perf_counter
            while True:
                with lock:
                    i = cursor[0]
                    if i >= n:
                        return
                    cursor[0] = i + 1
                started = timer()
                try:
                    results[i] = tasks[i]()
                except BaseException as exc:  # re-raised below, by index
                    errors[i] = exc
                stat.busy_s += timer() - started
                stat.morsels += 1

        if count == 1:
            drain(stats[0])
        else:
            threads = [
                threading.Thread(
                    target=drain,
                    args=(stat,),
                    name=f"repro-morsel-{stat.worker}",
                    daemon=True,
                )
                for stat in stats
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for error in errors:
            if error is not None:
                raise error
        return results, stats


#: Pool constructor used by the engine; swap via set_worker_pool_factory.
_POOL_FACTORY: Callable[[int], ThreadWorkerPool] = ThreadWorkerPool


def set_worker_pool_factory(
    factory: Callable[[int], ThreadWorkerPool] | None = None,
) -> None:
    """Install a custom worker-pool factory (None restores threads).

    The contract is ``factory(workers).run(tasks) -> (results, stats)``
    with results in task order; a process pool or a free-threaded runtime
    can slot in here without touching the executor.
    """
    global _POOL_FACTORY
    _POOL_FACTORY = ThreadWorkerPool if factory is None else factory


# -- pool mode policy ----------------------------------------------------------


_POOL_MODE: str | None = None


def set_worker_pool_mode(mode: str | None = None) -> None:
    """Pin the worker pool kind: ``"thread"``, ``"process"``, or
    ``None``/``"auto"`` to restore the default resolution (environment
    variable ``REPRO_WORKER_POOL``, then the auto policy).

    ``"process"`` *forces* descriptor-capable stages onto worker
    processes regardless of core count or input size — the equivalence
    and crash suites rely on this to exercise the real multi-process
    machinery on single-vCPU CI.
    """
    global _POOL_MODE
    if mode not in (None, "auto", "thread", "process"):
        raise ValueError(f"unknown worker pool mode {mode!r}")
    _POOL_MODE = None if mode in (None, "auto") else mode


def worker_pool_mode() -> str:
    """The resolved pool mode: explicit override → env → ``"auto"``."""
    if _POOL_MODE is not None:
        return _POOL_MODE
    env = os.environ.get("REPRO_WORKER_POOL", "").strip().lower()
    if env in ("thread", "process"):
        return env
    return "auto"


def available_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware).

    The auto policy and the bench provenance both consult this, so a
    single-vCPU CI box reports 1 and gates on correctness-with-fallback
    instead of fictitious speedups.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# -- morsel source substitution ------------------------------------------------


@dataclass(frozen=True, eq=False)
class _BatchSource(Plan):
    """A plan leaf standing in for precomputed batches (one morsel's input).

    Per-morsel tasks clone the pipeline with its Scan/PartitionScan leaf
    replaced by one of these, so every existing batch kernel runs unchanged
    over just that morsel's rows.
    """

    source_columns: tuple[str, ...]
    batches: tuple[Batch, ...]

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        for batch in self.batches:
            yield from batch.to_rows()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return self.source_columns


def _batch_source_batches(plan: _BatchSource, ctx: ExecContext) -> Iterator[Batch]:
    return iter(plan.batches)


_KERNELS[_BatchSource] = _batch_source_batches


#: Record-wise operators that fuse into a morsel task.
_PIPELINE_OPS = (Select, Project, Compute, Rename)


def _pipeline_source(plan: Plan) -> Plan | None:
    """The Scan/PartitionScan under a record-wise chain, or None."""
    node = plan
    while isinstance(node, _PIPELINE_OPS):
        node = node.child
    return node if type(node) in (Scan, PartitionScan) else None


def _source_select(pipeline: Plan, source: Plan) -> Select | None:
    """The Select sitting directly on the pipeline's source leaf, if any."""
    node = pipeline
    while isinstance(node, _PIPELINE_OPS):
        if isinstance(node, Select) and node.child is source:
            return node
        node = node.child
    return None


def _replace_source(plan: Plan, source: Plan, replacement: Plan) -> Plan:
    if plan is source:
        return replacement
    return _with_children(
        plan,
        tuple(
            _replace_source(child, source, replacement)
            for child in plan.children()
        ),
    )


def _morsels(batches: list[Batch]) -> list[list[Batch]]:
    return [
        batches[start : start + MORSEL_BATCHES]
        for start in range(0, len(batches), MORSEL_BATCHES)
    ]


# -- the engine ----------------------------------------------------------------


class _Engine:
    """One parallel execution: pool bookkeeping plus the recursive driver."""

    def __init__(self, ctx: ExecContext, workers: int):
        self.ctx = ctx
        self.workers = workers
        self.morsels = 0
        self.stages = 0
        self.thread_stages = 0
        self.process_stages = 0
        self.wall_s = 0.0
        self.cores = available_cores()
        self._busy: dict[tuple[str, int], float] = {}
        self._claimed: dict[tuple[str, int], int] = {}
        self._worker_spans: dict[int, list[object]] = {}
        self.fallbacks: list[dict[str, object]] = []
        # Resolve the process-pool gate once per execution.  "forced"
        # skips the size/core policy (tests and CI exercise the real
        # machinery on one core); "auto" applies the cost thresholds per
        # stage; "off" records why.  A custom factory whose pools are not
        # process-kind always wins — it was installed deliberately.
        mode = worker_pool_mode()
        factory_kind = getattr(_POOL_FACTORY, "kind", None)
        self.process_workers = workers
        if _POOL_FACTORY is not ThreadWorkerPool and factory_kind != "process":
            self._process_gate = "off"
            self._off_reason = "custom_pool_factory"
        elif mode == "thread":
            self._process_gate = "off"
            self._off_reason = "mode_thread"
        elif mode == "process":
            self._process_gate = "forced"
            self._off_reason = ""
        else:
            self.process_workers = min(workers, self.cores)
            if self.process_workers >= 2:
                self._process_gate = "auto"
                self._off_reason = ""
            else:
                self._process_gate = "off"
                self._off_reason = (
                    "single_core" if self.cores < 2 else "single_worker"
                )

    def run_tasks(self, tasks: list[Callable[[], object]]) -> list[object]:
        started = perf_counter()
        results, stats = _POOL_FACTORY(self.workers).run(tasks)
        self.wall_s += perf_counter() - started
        self.stages += 1
        self.thread_stages += 1
        self.morsels += len(tasks)
        for stat in stats:
            key = ("thread", stat.worker)
            self._busy[key] = self._busy.get(key, 0.0) + stat.busy_s
            self._claimed[key] = self._claimed.get(key, 0) + stat.morsels
        return results

    def run_specs(self, specs: list[dict[str, object]]) -> list[object]:
        """Execute morsel descriptors on the warm process pool."""
        from repro.relational.procpool import ProcessWorkerPool

        started = perf_counter()
        results, accounts = ProcessWorkerPool(self.process_workers).run_specs(
            specs
        )
        self.wall_s += perf_counter() - started
        self.stages += 1
        self.process_stages += 1
        self.morsels += len(specs)
        for worker_id, claimed, busy, spans in accounts:
            key = ("process", worker_id)
            self._busy[key] = self._busy.get(key, 0.0) + busy
            self._claimed[key] = self._claimed.get(key, 0) + claimed
            self._worker_spans.setdefault(worker_id, []).extend(spans)
        return results

    def worker_report(self) -> list[dict[str, object]]:
        """Per-worker utilization (busy time / pool wall time) for the trace."""
        wall = self.wall_s
        return [
            {
                "worker": worker,
                "pool": pool,
                "morsels": self._claimed.get((pool, worker), 0),
                "busy_s": round(busy, 6),
                "utilization": round(busy / wall, 3) if wall else 0.0,
            }
            for (pool, worker), busy in sorted(self._busy.items())
        ]

    def pool_label(self) -> str:
        """Which pool(s) this execution actually used, for the trace."""
        if self.process_stages and self.thread_stages:
            return "mixed"
        if self.process_stages:
            return "process"
        if self.thread_stages:
            return "thread"
        return "thread" if self._process_gate == "off" else "process"

    def graft_worker_spans(self, target: Plan) -> None:
        """Re-graft pickle-safe worker spans under the target's span.

        Worker processes cannot append to the parent's span tree, so each
        task returns a Span measured inside the worker; here they become
        ``process-worker-N`` subtrees, making per-process utilization a
        first-class part of ``trace query`` output.
        """
        recorder = self.ctx.recorder
        if recorder is None or not self._worker_spans:
            return
        parent = recorder.span_of(target)
        if parent is None:
            return
        for worker_id in sorted(self._worker_spans):
            spans = self._worker_spans[worker_id]
            branch = parent.child(f"process-worker-{worker_id}")
            branch.attrs["pool"] = "process"
            branch.attrs["morsels"] = len(spans)
            branch.children.extend(spans)  # type: ignore[arg-type]
            branch.duration_s = sum(
                span.duration_s  # type: ignore[attr-defined]
                for span in spans
            )

    # -- process-stage planning ------------------------------------------------

    def _fallback(self, stage: str, reason: str) -> None:
        self.fallbacks.append({"stage": stage, "reason": reason})

    def _resolve_extent(self, source: Plan) -> "tuple[Table, int | None] | str":
        """The (table, partition) extent a process morsel can describe.

        A string return is the fallback reason.  Multi-partition
        PartitionScans stay on threads: their serial output order is the
        merged ascending position order across partitions, which a
        partition-major segment read would not reproduce.
        """
        db = self.ctx.db
        if type(source) is Scan:
            return (db.table(source.table), None)
        assert type(source) is PartitionScan
        table = db.table(source.table)
        scheme = table.partitioning
        total = scheme.partition_count if scheme is not None else 0
        if scheme is None or any(pid >= total for pid in source.partitions):
            return "stale_partition_scheme"
        wanted = sorted(set(source.partitions))
        if len(wanted) != 1:
            return "multi_partition_order"
        return (table, wanted[0])

    def _process_morsels(
        self, stage: str, source: Plan, pipeline: Plan | None
    ) -> "tuple[Segment, list[tuple[int, ...]]] | None":
        """(segment, chunk-index morsels) when this stage goes to processes.

        ``None`` means run on threads; the reason is recorded.  Zone-map
        skipping happens here in the parent — the same
        :class:`SelectAnalysis` decision the thread path makes per batch,
        applied to chunk indices before any descriptor is formed — so
        workers never even receive a chunk statistics rule out.
        """
        if self._process_gate == "off":
            return None
        resolved = self._resolve_extent(source)
        if isinstance(resolved, str):
            self._fallback(stage, resolved)
            return None
        table, partition = resolved
        if self._process_gate == "auto":
            from repro.relational.cost import estimate_plan_rows
            from repro.storage.segments import cached_table_segment

            rows = estimate_plan_rows(source, self.ctx.db)
            if rows < PROCESS_MIN_ROWS:
                self._fallback(stage, f"small_input:{rows}")
                return None
            if (
                cached_table_segment(table, partition) is None
                and rows < PROCESS_COLD_MIN_ROWS
            ):
                self._fallback(stage, f"cold_segment:{rows}")
                return None
        from repro.storage.segments import table_segment

        segment = table_segment(table, partition)
        if segment.chunk_count == 0:
            self._fallback(stage, "empty_extent")
            return None
        indices = self._zone_filtered_chunks(segment, table, partition, pipeline, source)
        morsels = [
            tuple(indices[start : start + MORSEL_BATCHES])
            for start in range(0, len(indices), MORSEL_BATCHES)
        ]
        return segment, morsels

    def _zone_filtered_chunks(
        self,
        segment: "Segment",
        table: "Table",
        partition: int | None,
        pipeline: Plan | None,
        source: Plan,
    ) -> list[int]:
        indices = list(range(segment.chunk_count))
        select = (
            _source_select(pipeline, source) if pipeline is not None else None
        )
        if select is None or not statistics_enabled():
            return indices
        # Segment chunks and zone-map chunks both slice the extent's
        # column order, so chunk index i names the same rows in both —
        # but only when the two modules' chunk sizes agree (tests patch
        # them independently).  On mismatch, skip nothing: workers
        # evaluate the full predicate anyway.
        from repro.relational import stats as stats_mod
        from repro.storage import segments as segments_mod

        if segments_mod.BATCH_SIZE != stats_mod.BATCH_SIZE:
            return indices
        analysis = SelectAnalysis(select.predicate)
        if not analysis.analyzable:
            return indices
        retained: list[int] = []
        skipped = 0
        for index in indices:
            if analysis.decide(table, partition, index) is SKIP_CHUNK:
                skipped += 1
            else:
                retained.append(index)
        self.ctx.annotate(
            select,
            chunks_total=len(indices),
            chunks_skipped=skipped,
            # Workers evaluate the full predicate on retained chunks
            # (their batches carry no zone tags), so no conjunct is ever
            # short-circuited on this path.
            conjuncts_short_circuited=0,
        )
        return retained

    def _segment_scan(
        self, segment: "Segment", source: Plan, chunks: tuple[int, ...]
    ) -> Plan:
        from repro.storage.segments import SegmentScan

        return SegmentScan(
            str(segment.path), self.ctx.columns(source), chunks
        )

    def _pickle_specs(
        self, stage: str, mode: str, plans: list[Plan], build_key: str | None = None
    ) -> list[dict[str, object]] | None:
        """Pickle per-morsel plans into specs; None if any plan refuses.

        Plans are plain dataclasses over the expression AST and should
        always pickle; this guard exists so an exotic hand-built plan
        degrades to threads instead of failing the query.
        """
        specs: list[dict[str, object]] = []
        for plan in plans:
            try:
                blob = pickle.dumps(plan)
            except Exception:
                self._fallback(stage, "unpicklable_plan")
                return None
            spec: dict[str, object] = {"mode": mode, "plan": blob}
            if build_key is not None:
                spec["build_key"] = build_key
            specs.append(spec)
        return specs

    # -- drivers ---------------------------------------------------------------

    def batches(self, plan: Plan) -> list[Batch]:
        """All output batches of ``plan``, parallelizing where possible."""
        source = _pipeline_source(plan)
        if source is not None:
            return self._run_pipeline(plan, source)
        if isinstance(plan, Aggregate):
            source = _pipeline_source(plan.child)
            if source is not None:
                return self._run_aggregate(plan, source)
        if isinstance(plan, Join):
            if plan.build == "left":
                return self._run_join_left(plan)
            source = _pipeline_source(plan.left)
            if source is not None:
                return self._run_join(plan, source)
        children = plan.children()
        if not children:
            return list(_node_batches(plan, self.ctx))
        # Serial operator over parallelized children: each child's batches
        # become a _BatchSource and the node's own kernel runs unchanged.
        replaced = tuple(
            _BatchSource(self.ctx.columns(child), tuple(self.batches(child)))
            for child in children
        )
        return list(_node_batches(_with_children(plan, replaced), self.ctx))

    def _source_morsels(
        self, source: Plan, pipeline: Plan | None = None
    ) -> list[list[Batch]]:
        # Source batches materialize serially (they are lazy chunk views;
        # the per-row work lives in the pipeline above) through the
        # *traced* context, so PartitionScan prune gauges land in the span
        # tree.  When the pipeline filters directly over the source, chunks
        # the zone maps rule out are dropped here — before any morsel is
        # formed — and the skip gauges annotate the Select's span (the
        # in-task contexts have no recorder, so this is where they must
        # land).  Retained batches keep their zone tags; the per-task
        # Select kernel still drops the all-match conjuncts.
        batches = list(_node_batches(source, self.ctx))
        select = (
            _source_select(pipeline, source) if pipeline is not None else None
        )
        if select is not None and statistics_enabled():
            analysis = SelectAnalysis(select.predicate)
            if analysis.analyzable:
                chunks_total = 0
                chunks_skipped = 0
                short_circuited = 0
                retained: list[Batch] = []
                for batch in batches:
                    zone = batch.zone
                    if zone is None:
                        retained.append(batch)
                        continue
                    chunks_total += 1
                    decision = analysis.decide(zone[0], zone[1], zone[2])
                    if decision is SKIP_CHUNK:
                        chunks_skipped += 1
                        continue
                    short_circuited += decision[1]
                    retained.append(batch)
                if chunks_total:
                    self.ctx.annotate(
                        select,
                        chunks_total=chunks_total,
                        chunks_skipped=chunks_skipped,
                        conjuncts_short_circuited=short_circuited,
                    )
                batches = retained
        return _morsels(batches)

    def _morsel_plans(
        self, plan: Plan, source: Plan, morsels: list[list[Batch]]
    ) -> list[Plan]:
        columns = self.ctx.columns(source)
        return [
            _replace_source(plan, source, _BatchSource(columns, tuple(morsel)))
            for morsel in morsels
        ]

    @staticmethod
    def _unpack_batches(results: list[object]) -> list[Batch]:
        return [
            Batch(columns, data, length)
            for packed in results
            for columns, data, length in packed  # type: ignore[attr-defined]
        ]

    def _run_pipeline(self, plan: Plan, source: Plan) -> list[Batch]:
        prepared = self._process_morsels("pipeline", source, plan)
        if prepared is not None:
            segment, chunk_morsels = prepared
            if not chunk_morsels:
                return []
            specs = self._pickle_specs(
                "pipeline",
                "pipeline",
                [
                    _replace_source(
                        plan, source, self._segment_scan(segment, source, chunks)
                    )
                    for chunks in chunk_morsels
                ],
            )
            if specs is not None:
                return self._unpack_batches(self.run_specs(specs))
        morsels = self._source_morsels(source, plan)
        if not morsels:
            return []
        db = self.ctx.db
        tasks = [
            (lambda sub=sub: list(_node_batches(sub, ExecContext(db))))
            for sub in self._morsel_plans(plan, source, morsels)
        ]
        results = self.run_tasks(tasks)
        return [batch for out in results for batch in out]

    def _run_aggregate(self, plan: Aggregate, source: Plan) -> list[Batch]:
        columns = aggregate_output_columns(plan, self.ctx)
        prepared = self._process_morsels("aggregate", source, plan.child)
        if prepared is not None:
            segment, chunk_morsels = prepared
            if not chunk_morsels:
                return list(GroupedAggregation(plan).finalize(columns))
            specs = self._pickle_specs(
                "aggregate",
                "aggregate",
                [
                    _replace_source(
                        plan, source, self._segment_scan(segment, source, chunks)
                    )
                    for chunks in chunk_morsels
                ],
            )
            if specs is not None:
                # Each worker returns its morsel's GroupedAggregation
                # partial; merging in task order into a fresh parent-side
                # instance reproduces the serial first-seen group order.
                merged = GroupedAggregation(plan)
                for partial in self.run_specs(specs):
                    assert isinstance(partial, GroupedAggregation)
                    merged.merge(partial)
                return list(merged.finalize(columns))
        morsels = self._source_morsels(source, plan.child)
        if not morsels:
            return list(GroupedAggregation(plan).finalize(columns))
        db = self.ctx.db

        def make_task(sub: Plan) -> Callable[[], GroupedAggregation]:
            def task() -> GroupedAggregation:
                grouped = GroupedAggregation(plan)
                for batch in _node_batches(sub, ExecContext(db)):
                    grouped.consume(batch)
                return grouped

            return task

        partials = self.run_tasks(
            [make_task(sub) for sub in self._morsel_plans(plan.child, source, morsels)]
        )
        merged = partials[0]
        for partial in partials[1:]:
            merged.merge(partial)
        return list(merged.finalize(columns))

    def _run_join(self, plan: Join, source: Plan) -> list[Batch]:
        build = JoinBuild(plan, self.ctx)  # validates the join up front
        prepared = self._process_morsels("join_probe", source, plan.left)
        if prepared is not None:
            right_batches = self.batches(plan.right)
            segment, chunk_morsels = prepared
            if chunk_morsels:
                from repro.storage.segments import (
                    SegmentScan,
                    attach_segment,
                    write_broadcast_segment,
                )

                # Broadcast the materialized build side once through a
                # segment file; every worker attaches it read-only and
                # builds its hash table locally (cached by build_key), so
                # the build rows cross the process boundary zero times
                # per worker instead of once per morsel.
                right_cols = self.ctx.columns(plan.right)
                broadcast = write_broadcast_segment(right_cols, right_batches)
                right_scan = SegmentScan(
                    str(broadcast),
                    right_cols,
                    tuple(range(attach_segment(broadcast).chunk_count)),
                )
                specs = self._pickle_specs(
                    "join_probe",
                    "join_probe",
                    [
                        _with_children(
                            plan,
                            (
                                _replace_source(
                                    plan.left,
                                    source,
                                    self._segment_scan(segment, source, chunks),
                                ),
                                right_scan,
                            ),
                        )
                        for chunks in chunk_morsels
                    ],
                    build_key=str(broadcast),
                )
                if specs is not None:
                    return self._unpack_batches(self.run_specs(specs))
            for rbatch in right_batches:
                build.add(rbatch)
        else:
            for rbatch in self.batches(plan.right):
                build.add(rbatch)
        morsels = self._source_morsels(source, plan.left)
        if not morsels:
            return []
        db = self.ctx.db

        def make_task(sub: Plan) -> Callable[[], list[Batch]]:
            def task() -> list[Batch]:
                out: list[Batch] = []
                for batch in _node_batches(sub, ExecContext(db)):
                    joined = build.probe(batch)
                    if joined is not None:
                        out.append(joined)
                return out

            return task

        results = self.run_tasks(
            [make_task(sub) for sub in self._morsel_plans(plan.left, source, morsels)]
        )
        return [batch for out in results for batch in out]

    def _run_join_left(self, plan: Join) -> list[Batch]:
        """Shared left-side build; right morsels probe it concurrently.

        Each task returns its morsel's (left position, payload) pairs
        without touching shared state; the serial absorb loop then merges
        them in task order — which *is* right-stream order — so the final
        left-major emission is bit-identical to the serial executors.
        """
        build = JoinBuildLeft(plan, self.ctx)
        left_batches = self.batches(plan.left)
        for lbatch in left_batches:
            build.add_left(lbatch)
        source = _pipeline_source(plan.right)
        if source is None:
            for rbatch in self.batches(plan.right):
                build.add_right(rbatch)
            return list(build.emit())
        prepared = self._process_morsels("join_collect", source, plan.right)
        if prepared is not None:
            segment, chunk_morsels = prepared
            if not chunk_morsels:
                return list(build.emit())
            from repro.storage.segments import (
                SegmentScan,
                attach_segment,
                write_broadcast_segment,
            )

            # Broadcast the LEFT side; workers rebuild the position table
            # from the same row sequence (global positions are boundary-
            # independent) and return (left position, payload) pairs the
            # parent absorbs in task order — which is right-stream order —
            # before the serial left-major emission.
            left_cols = self.ctx.columns(plan.left)
            broadcast = write_broadcast_segment(left_cols, left_batches)
            left_scan = SegmentScan(
                str(broadcast),
                left_cols,
                tuple(range(attach_segment(broadcast).chunk_count)),
            )
            specs = self._pickle_specs(
                "join_collect",
                "join_collect",
                [
                    _with_children(
                        plan,
                        (
                            left_scan,
                            _replace_source(
                                plan.right,
                                source,
                                self._segment_scan(segment, source, chunks),
                            ),
                        ),
                    )
                    for chunks in chunk_morsels
                ],
                build_key=str(broadcast),
            )
            if specs is not None:
                for pairs in self.run_specs(specs):
                    build.absorb(pairs)  # type: ignore[arg-type]
                return list(build.emit())
        morsels = self._source_morsels(source, plan.right)
        if not morsels:
            return list(build.emit())
        db = self.ctx.db

        def make_task(sub: Plan) -> Callable[[], list]:
            def task() -> list:
                pairs: list = []
                for batch in _node_batches(sub, ExecContext(db)):
                    pairs.extend(build.collect(batch))
                return pairs

            return task

        results = self.run_tasks(
            [make_task(sub) for sub in self._morsel_plans(plan.right, source, morsels)]
        )
        for pairs in results:
            build.absorb(pairs)
        return list(build.emit())


def execute_parallel(
    plan: Plan, ctx: ExecContext, annotate: Plan | None = None
) -> list[Row]:
    """Run a vectorized subtree morsel-parallel and materialize the rows.

    ``ctx.parallel`` carries the worker count (1 = inline, still through
    the morsel machinery).  ``annotate`` names the plan node whose span
    receives the executor gauges — the optimizer's ``Vectorized`` wrapper
    when routed from there.
    """
    workers = ctx.parallel or 1
    target = annotate if annotate is not None else plan
    if type(plan) is Scan:
        # The whole-table read keeps the serial path's zero-copy shortcut:
        # there is no per-row work to parallelize, only copying to lose.
        rows = ctx.db.table(plan.table).snapshot_rows()
        ctx.annotate(
            target,
            rows_out=len(rows),
            executor="parallel-batch",
            workers=workers,
            morsels=0,
            access_path="row_snapshot",
        )
        return rows
    engine = _Engine(ctx, workers)
    out: list[Row] = []
    for batch in engine.batches(plan):
        out.extend(batch.to_rows())
    gauges: dict[str, object] = dict(
        executor="parallel-batch",
        workers=workers,
        morsels=engine.morsels,
        parallel_stages=engine.stages,
        worker_utilization=engine.worker_report(),
        pool=engine.pool_label(),
        cores=engine.cores,
    )
    if engine._process_gate == "off" and engine._off_reason not in (
        "",
        "mode_thread",
        "custom_pool_factory",
    ):
        gauges["process_pool_disabled"] = engine._off_reason
    if engine.process_stages:
        gauges["process_workers"] = engine.process_workers
    if engine.fallbacks:
        gauges["parallel_fallbacks"] = engine.fallbacks
    ctx.annotate(target, **gauges)
    engine.graft_worker_spans(target)
    return out
