"""Morsel-driven parallel execution of vectorized subtrees.

The third execution strategy over the same plan semantics: a fully
vectorized subtree is decomposed into *morsels* — contiguous runs of
source batches (partition × chunk work units for a pruned
:class:`~repro.relational.algebra.PartitionScan`) — and the per-morsel
work self-schedules onto a shared worker pool, the dispatch discipline of
Leis et al.'s morsel-driven parallelism: a worker that finishes early
claims the next unstarted morsel, so load imbalance is stolen away at
morsel granularity without a separate stealing protocol.

Reuse over reimplementation: each morsel task substitutes its batches for
the pipeline's source leaf (via the :class:`_BatchSource` kernel) and runs
the *existing* batch kernels from :mod:`repro.relational.vectorize`.
Partition-wise operators share state the same way —

- Aggregate: each morsel consumes into its own
  :class:`~repro.relational.vectorize.GroupedAggregation`; partials merge
  in morsel order, reproducing the serial pass's first-seen group order
  and per-group value order exactly.
- Join: one :class:`~repro.relational.vectorize.JoinBuild` is built
  serially and shared read-only across workers probing left-side morsels.
- Everything else (Sort, TopK, Distinct, Limit, Union, …) runs serially
  over its children's parallelized outputs.

Determinism contract: morsel outputs are concatenated in morsel index
order, which is source batch order, which is extent order — so results
are row-for-row identical (values AND order) to the serial batch executor
and therefore to the interpreter.  When a morsel raises, the exception of
the lowest morsel index is re-raised (error-*type* parity only, the same
relaxation the batch path documents).

Honesty about the GIL: on CPython threads the pool buys parallel speedup
only for the allocator/C-level slices of the work; measured speedups are
reported as-is in EXPERIMENTS.md, and per-worker utilization is annotated
into the trace so numbers are explainable.  The pool is pluggable
(:func:`set_worker_pool_factory`) so a process pool or a free-threaded
runtime can slot in without touching the executor.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterator, Sequence

from repro.relational.algebra import (
    Aggregate,
    Compute,
    ExecContext,
    Join,
    PartitionScan,
    Plan,
    Project,
    Rename,
    Row,
    Scan,
    Select,
)
from repro.relational.batch import Batch
from repro.relational.query import _with_children
from repro.relational.stats import SKIP_CHUNK, SelectAnalysis, statistics_enabled
from repro.relational.vectorize import (
    _KERNELS,
    GroupedAggregation,
    JoinBuild,
    JoinBuildLeft,
    _node_batches,
    aggregate_output_columns,
)

#: Source batches per morsel: 8 × BATCH_SIZE = 8192 rows.  Large enough to
#: amortize per-task scheduling, small enough that work stealing can
#: rebalance a skewed pipeline.
MORSEL_BATCHES = 8


# -- worker pool ---------------------------------------------------------------


@dataclass
class WorkerStats:
    """Per-worker accounting for one pool run."""

    worker: int
    morsels: int = 0
    busy_s: float = 0.0


class ThreadWorkerPool:
    """Self-scheduling thread pool over a shared morsel queue.

    ``run(tasks)`` executes every task and returns ``(results, stats)``
    with results in task order.  Workers claim the next unstarted task
    under a lock — the morsel-driven equivalent of work stealing, since an
    early finisher takes work a slower worker would otherwise have run.
    A single worker (or a single task) runs inline on the calling thread.
    Task exceptions are collected and the one with the lowest task index
    is re-raised after the pool drains.
    """

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))

    def run(
        self, tasks: Sequence[Callable[[], object]]
    ) -> tuple[list[object], list[WorkerStats]]:
        n = len(tasks)
        count = min(self.workers, n) if n else 1
        stats = [WorkerStats(i) for i in range(count)]
        results: list[object] = [None] * n
        errors: list[BaseException | None] = [None] * n
        cursor = [0]
        lock = threading.Lock()

        def drain(stat: WorkerStats) -> None:
            timer = perf_counter
            while True:
                with lock:
                    i = cursor[0]
                    if i >= n:
                        return
                    cursor[0] = i + 1
                started = timer()
                try:
                    results[i] = tasks[i]()
                except BaseException as exc:  # re-raised below, by index
                    errors[i] = exc
                stat.busy_s += timer() - started
                stat.morsels += 1

        if count == 1:
            drain(stats[0])
        else:
            threads = [
                threading.Thread(
                    target=drain,
                    args=(stat,),
                    name=f"repro-morsel-{stat.worker}",
                    daemon=True,
                )
                for stat in stats
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for error in errors:
            if error is not None:
                raise error
        return results, stats


#: Pool constructor used by the engine; swap via set_worker_pool_factory.
_POOL_FACTORY: Callable[[int], ThreadWorkerPool] = ThreadWorkerPool


def set_worker_pool_factory(
    factory: Callable[[int], ThreadWorkerPool] | None = None,
) -> None:
    """Install a custom worker-pool factory (None restores threads).

    The contract is ``factory(workers).run(tasks) -> (results, stats)``
    with results in task order; a process pool or a free-threaded runtime
    can slot in here without touching the executor.
    """
    global _POOL_FACTORY
    _POOL_FACTORY = ThreadWorkerPool if factory is None else factory


# -- morsel source substitution ------------------------------------------------


@dataclass(frozen=True, eq=False)
class _BatchSource(Plan):
    """A plan leaf standing in for precomputed batches (one morsel's input).

    Per-morsel tasks clone the pipeline with its Scan/PartitionScan leaf
    replaced by one of these, so every existing batch kernel runs unchanged
    over just that morsel's rows.
    """

    source_columns: tuple[str, ...]
    batches: tuple[Batch, ...]

    def _stream(self, ctx: ExecContext) -> Iterator[Row]:
        for batch in self.batches:
            yield from batch.to_rows()

    def _columns(self, ctx: ExecContext) -> tuple[str, ...]:
        return self.source_columns


def _batch_source_batches(plan: _BatchSource, ctx: ExecContext) -> Iterator[Batch]:
    return iter(plan.batches)


_KERNELS[_BatchSource] = _batch_source_batches


#: Record-wise operators that fuse into a morsel task.
_PIPELINE_OPS = (Select, Project, Compute, Rename)


def _pipeline_source(plan: Plan) -> Plan | None:
    """The Scan/PartitionScan under a record-wise chain, or None."""
    node = plan
    while isinstance(node, _PIPELINE_OPS):
        node = node.child
    return node if type(node) in (Scan, PartitionScan) else None


def _source_select(pipeline: Plan, source: Plan) -> Select | None:
    """The Select sitting directly on the pipeline's source leaf, if any."""
    node = pipeline
    while isinstance(node, _PIPELINE_OPS):
        if isinstance(node, Select) and node.child is source:
            return node
        node = node.child
    return None


def _replace_source(plan: Plan, source: Plan, replacement: Plan) -> Plan:
    if plan is source:
        return replacement
    return _with_children(
        plan,
        tuple(
            _replace_source(child, source, replacement)
            for child in plan.children()
        ),
    )


def _morsels(batches: list[Batch]) -> list[list[Batch]]:
    return [
        batches[start : start + MORSEL_BATCHES]
        for start in range(0, len(batches), MORSEL_BATCHES)
    ]


# -- the engine ----------------------------------------------------------------


class _Engine:
    """One parallel execution: pool bookkeeping plus the recursive driver."""

    def __init__(self, ctx: ExecContext, workers: int):
        self.ctx = ctx
        self.workers = workers
        self.morsels = 0
        self.stages = 0
        self.wall_s = 0.0
        self._busy: dict[int, float] = {}
        self._claimed: dict[int, int] = {}

    def run_tasks(self, tasks: list[Callable[[], object]]) -> list[object]:
        started = perf_counter()
        results, stats = _POOL_FACTORY(self.workers).run(tasks)
        self.wall_s += perf_counter() - started
        self.stages += 1
        self.morsels += len(tasks)
        for stat in stats:
            self._busy[stat.worker] = (
                self._busy.get(stat.worker, 0.0) + stat.busy_s
            )
            self._claimed[stat.worker] = (
                self._claimed.get(stat.worker, 0) + stat.morsels
            )
        return results

    def worker_report(self) -> list[dict[str, object]]:
        """Per-worker utilization (busy time / pool wall time) for the trace."""
        wall = self.wall_s
        return [
            {
                "worker": worker,
                "morsels": self._claimed.get(worker, 0),
                "busy_s": round(busy, 6),
                "utilization": round(busy / wall, 3) if wall else 0.0,
            }
            for worker, busy in sorted(self._busy.items())
        ]

    # -- drivers ---------------------------------------------------------------

    def batches(self, plan: Plan) -> list[Batch]:
        """All output batches of ``plan``, parallelizing where possible."""
        source = _pipeline_source(plan)
        if source is not None:
            return self._run_pipeline(plan, source)
        if isinstance(plan, Aggregate):
            source = _pipeline_source(plan.child)
            if source is not None:
                return self._run_aggregate(plan, source)
        if isinstance(plan, Join):
            if plan.build == "left":
                return self._run_join_left(plan)
            source = _pipeline_source(plan.left)
            if source is not None:
                return self._run_join(plan, source)
        children = plan.children()
        if not children:
            return list(_node_batches(plan, self.ctx))
        # Serial operator over parallelized children: each child's batches
        # become a _BatchSource and the node's own kernel runs unchanged.
        replaced = tuple(
            _BatchSource(self.ctx.columns(child), tuple(self.batches(child)))
            for child in children
        )
        return list(_node_batches(_with_children(plan, replaced), self.ctx))

    def _source_morsels(
        self, source: Plan, pipeline: Plan | None = None
    ) -> list[list[Batch]]:
        # Source batches materialize serially (they are lazy chunk views;
        # the per-row work lives in the pipeline above) through the
        # *traced* context, so PartitionScan prune gauges land in the span
        # tree.  When the pipeline filters directly over the source, chunks
        # the zone maps rule out are dropped here — before any morsel is
        # formed — and the skip gauges annotate the Select's span (the
        # in-task contexts have no recorder, so this is where they must
        # land).  Retained batches keep their zone tags; the per-task
        # Select kernel still drops the all-match conjuncts.
        batches = list(_node_batches(source, self.ctx))
        select = (
            _source_select(pipeline, source) if pipeline is not None else None
        )
        if select is not None and statistics_enabled():
            analysis = SelectAnalysis(select.predicate)
            if analysis.analyzable:
                chunks_total = 0
                chunks_skipped = 0
                short_circuited = 0
                retained: list[Batch] = []
                for batch in batches:
                    zone = batch.zone
                    if zone is None:
                        retained.append(batch)
                        continue
                    chunks_total += 1
                    decision = analysis.decide(zone[0], zone[1], zone[2])
                    if decision is SKIP_CHUNK:
                        chunks_skipped += 1
                        continue
                    short_circuited += decision[1]
                    retained.append(batch)
                if chunks_total:
                    self.ctx.annotate(
                        select,
                        chunks_total=chunks_total,
                        chunks_skipped=chunks_skipped,
                        conjuncts_short_circuited=short_circuited,
                    )
                batches = retained
        return _morsels(batches)

    def _morsel_plans(
        self, plan: Plan, source: Plan, morsels: list[list[Batch]]
    ) -> list[Plan]:
        columns = self.ctx.columns(source)
        return [
            _replace_source(plan, source, _BatchSource(columns, tuple(morsel)))
            for morsel in morsels
        ]

    def _run_pipeline(self, plan: Plan, source: Plan) -> list[Batch]:
        morsels = self._source_morsels(source, plan)
        if not morsels:
            return []
        db = self.ctx.db
        tasks = [
            (lambda sub=sub: list(_node_batches(sub, ExecContext(db))))
            for sub in self._morsel_plans(plan, source, morsels)
        ]
        results = self.run_tasks(tasks)
        return [batch for out in results for batch in out]

    def _run_aggregate(self, plan: Aggregate, source: Plan) -> list[Batch]:
        columns = aggregate_output_columns(plan, self.ctx)
        morsels = self._source_morsels(source, plan.child)
        if not morsels:
            return list(GroupedAggregation(plan).finalize(columns))
        db = self.ctx.db

        def make_task(sub: Plan) -> Callable[[], GroupedAggregation]:
            def task() -> GroupedAggregation:
                grouped = GroupedAggregation(plan)
                for batch in _node_batches(sub, ExecContext(db)):
                    grouped.consume(batch)
                return grouped

            return task

        partials = self.run_tasks(
            [make_task(sub) for sub in self._morsel_plans(plan.child, source, morsels)]
        )
        merged = partials[0]
        for partial in partials[1:]:
            merged.merge(partial)
        return list(merged.finalize(columns))

    def _run_join(self, plan: Join, source: Plan) -> list[Batch]:
        build = JoinBuild(plan, self.ctx)
        for rbatch in self.batches(plan.right):
            build.add(rbatch)
        morsels = self._source_morsels(source, plan.left)
        if not morsels:
            return []
        db = self.ctx.db

        def make_task(sub: Plan) -> Callable[[], list[Batch]]:
            def task() -> list[Batch]:
                out: list[Batch] = []
                for batch in _node_batches(sub, ExecContext(db)):
                    joined = build.probe(batch)
                    if joined is not None:
                        out.append(joined)
                return out

            return task

        results = self.run_tasks(
            [make_task(sub) for sub in self._morsel_plans(plan.left, source, morsels)]
        )
        return [batch for out in results for batch in out]

    def _run_join_left(self, plan: Join) -> list[Batch]:
        """Shared left-side build; right morsels probe it concurrently.

        Each task returns its morsel's (left position, payload) pairs
        without touching shared state; the serial absorb loop then merges
        them in task order — which *is* right-stream order — so the final
        left-major emission is bit-identical to the serial executors.
        """
        build = JoinBuildLeft(plan, self.ctx)
        for lbatch in self.batches(plan.left):
            build.add_left(lbatch)
        source = _pipeline_source(plan.right)
        if source is None:
            for rbatch in self.batches(plan.right):
                build.add_right(rbatch)
            return list(build.emit())
        morsels = self._source_morsels(source, plan.right)
        if not morsels:
            return list(build.emit())
        db = self.ctx.db

        def make_task(sub: Plan) -> Callable[[], list]:
            def task() -> list:
                pairs: list = []
                for batch in _node_batches(sub, ExecContext(db)):
                    pairs.extend(build.collect(batch))
                return pairs

            return task

        results = self.run_tasks(
            [make_task(sub) for sub in self._morsel_plans(plan.right, source, morsels)]
        )
        for pairs in results:
            build.absorb(pairs)
        return list(build.emit())


def execute_parallel(
    plan: Plan, ctx: ExecContext, annotate: Plan | None = None
) -> list[Row]:
    """Run a vectorized subtree morsel-parallel and materialize the rows.

    ``ctx.parallel`` carries the worker count (1 = inline, still through
    the morsel machinery).  ``annotate`` names the plan node whose span
    receives the executor gauges — the optimizer's ``Vectorized`` wrapper
    when routed from there.
    """
    workers = ctx.parallel or 1
    target = annotate if annotate is not None else plan
    if type(plan) is Scan:
        # The whole-table read keeps the serial path's zero-copy shortcut:
        # there is no per-row work to parallelize, only copying to lose.
        rows = ctx.db.table(plan.table).snapshot_rows()
        ctx.annotate(
            target,
            rows_out=len(rows),
            executor="parallel-batch",
            workers=workers,
            morsels=0,
            access_path="row_snapshot",
        )
        return rows
    engine = _Engine(ctx, workers)
    out: list[Row] = []
    for batch in engine.batches(plan):
        out.extend(batch.to_rows())
    ctx.annotate(
        target,
        executor="parallel-batch",
        workers=workers,
        morsels=engine.morsels,
        parallel_stages=engine.stages,
        worker_utilization=engine.worker_report(),
    )
    return out
