"""Spawn-based process worker pool executing morsel descriptors.

This is the pool that breaks the GIL barrier for the morsel-parallel
executor: instead of closures (which cannot cross a process boundary),
the scheduler in :mod:`repro.relational.parallel` ships *specs* — small
picklable dicts carrying a pickled morsel plan whose source leaf is a
:class:`~repro.storage.segments.SegmentScan` descriptor (segment path +
chunk indices) — and workers return packed result columns, aggregation
partials, or join pair lists.  Table data itself never crosses the pipe:
workers attach the shared segment files read-only via ``mmap`` and page
only the chunks their morsels name.

Pool mechanics:

* **spawn-based, warm.**  Workers are started with the ``spawn`` start
  method (``REPRO_MP_START=forkserver`` opts into fork-server) and kept
  alive across queries in a module-level registry keyed by pool size, so
  the interpreter-startup cost is paid once per process, not per query.
* **self-scheduling.**  All specs go onto one shared task queue; workers
  claim the next unstarted spec — the same morsel-stealing discipline as
  the thread pool, across processes.
* **ordered results.**  Every result carries its task index; the parent
  reassembles in task order, so downstream merges see morsel order
  exactly as the serial executors would.
* **error parity.**  An exception raised *by the query* inside a worker
  is pickled (round-trip verified in the worker) and re-raised in the
  parent with its original type, lowest task index first — the same
  contract as :class:`~repro.relational.parallel.ThreadWorkerPool`.  An
  exception of the *machinery* — a worker killed mid-morsel, an
  unstartable pool — raises
  :class:`~repro.errors.ParallelExecutionError` after the wounded pool
  is drained and torn down (the next run starts a fresh one); the parent
  never hangs on a dead worker.
* **traceable.**  Each worker times its own morsels and returns a
  pickle-safe :class:`~repro.obs.trace.Span` per task; the scheduler
  re-grafts them into the parent trace tree so per-process utilization
  in ``trace query --executor parallel`` is measured inside the worker,
  not inferred by the parent.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import signal
from multiprocessing.connection import wait as _connection_wait
from time import perf_counter
from typing import Any, Callable

from repro.errors import ParallelExecutionError
from repro.obs.trace import Span

#: Worker-side cache bound for shared join builds (keyed by broadcast
#: segment path; entries are per-query, so a handful suffices).
_BUILD_CACHE_LIMIT = 8

#: One spec message: mode + pickled plan + descriptor fields.
Spec = dict[str, Any]

#: (worker id, morsels claimed, busy seconds, per-task spans).
WorkerAccount = tuple[int, int, float, list[Span]]


def _mp_context() -> multiprocessing.context.BaseContext:
    method = os.environ.get("REPRO_MP_START", "spawn").strip().lower()
    if method not in ("spawn", "forkserver"):
        method = "spawn"
    return multiprocessing.get_context(method)


# -- worker side ----------------------------------------------------------------


_WORKER_DB = None
_WORKER_BUILDS: dict[str, object] = {}


def _worker_context() -> Any:
    """A fresh ExecContext over an empty worker-local database.

    Morsel plans only contain kernel-executable nodes with SegmentScan
    leaves, so the database is never consulted for data — it exists
    because ExecContext requires one.
    """
    from repro.relational.algebra import ExecContext
    from repro.relational.database import Database

    global _WORKER_DB
    if _WORKER_DB is None:
        _WORKER_DB = Database("segment-worker")
    return ExecContext(_WORKER_DB)


def _cached_build(key: str, build: Callable[[], object]) -> object:
    cached = _WORKER_BUILDS.pop(key, None)
    if cached is None:
        cached = build()
    _WORKER_BUILDS[key] = cached
    while len(_WORKER_BUILDS) > _BUILD_CACHE_LIMIT:
        del _WORKER_BUILDS[next(iter(_WORKER_BUILDS))]
    return cached


def _pack_batch(batch: Any) -> tuple[tuple[str, ...], dict[str, list[object]], int]:
    columns = tuple(batch.columns)
    return (columns, {name: list(batch.column(name)) for name in columns}, batch.length)


def execute_spec(spec: Spec) -> Any:
    """Run one morsel spec with the serial batch kernels; return its payload.

    Shared by the worker main loop and by in-process tests that want the
    descriptor path without real subprocesses.
    """
    if spec.get("__sigkill__"):
        # White-box crash hook: die the way an OOM-killed worker would.
        os.kill(os.getpid(), signal.SIGKILL)
    # Imported here (not at module top) so the parent can load this module
    # before the heavyweight executor modules finish importing.
    import repro.storage.segments  # noqa: F401  - registers the SegmentScan kernel
    from repro.relational.vectorize import (
        GroupedAggregation,
        JoinBuild,
        JoinBuildLeft,
        _node_batches,
    )

    plan = pickle.loads(spec["plan"])
    ctx = _worker_context()
    mode = spec["mode"]
    if mode == "pipeline":
        return [_pack_batch(batch) for batch in _node_batches(plan, ctx)]
    if mode == "aggregate":
        grouped = GroupedAggregation(plan)
        for batch in _node_batches(plan.child, ctx):
            grouped.consume(batch)
        return grouped
    if mode == "join_probe":

        def build_right() -> JoinBuild:
            build = JoinBuild(plan, ctx)
            for rbatch in _node_batches(plan.right, ctx):
                build.add(rbatch)
            return build

        build = _cached_build(spec["build_key"], build_right)
        assert isinstance(build, JoinBuild)
        out = []
        for batch in _node_batches(plan.left, ctx):
            joined = build.probe(batch)
            if joined is not None:
                out.append(_pack_batch(joined))
        return out
    if mode == "join_collect":

        def build_left() -> JoinBuildLeft:
            build = JoinBuildLeft(plan, ctx)
            for lbatch in _node_batches(plan.left, ctx):
                build.add_left(lbatch)
            return build

        left_build = _cached_build(spec["build_key"], build_left)
        assert isinstance(left_build, JoinBuildLeft)
        pairs: list[tuple[int, tuple[object, ...]]] = []
        for batch in _node_batches(plan.right, ctx):
            pairs.extend(left_build.collect(batch))
        return pairs
    raise ParallelExecutionError(f"unknown morsel spec mode {mode!r}")


def _pack_error(exc: BaseException) -> tuple[str, Any]:
    """An error payload guaranteed to survive the result queue.

    Pickling an exception can fail on either side (custom ``__init__``
    signatures break unpickling), so the round trip is verified *here*;
    on failure the parent gets enough to rebuild the type, or falls back
    to ParallelExecutionError.
    """
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)
        return ("pickled", blob)
    except Exception:
        return ("described", (type(exc).__module__, type(exc).__qualname__, str(exc)))


def _unpack_error(payload: tuple[str, Any]) -> BaseException:
    kind, body = payload
    if kind == "pickled":
        exc = pickle.loads(body)
        assert isinstance(exc, BaseException)
        return exc
    module_name, qualname, text = body
    try:
        import importlib

        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        rebuilt = obj(text)
        if isinstance(rebuilt, BaseException):
            return rebuilt
    except Exception:
        pass
    return ParallelExecutionError(f"worker raised {module_name}.{qualname}: {text}")


def _worker_main(worker_id: int, task_queue: Any, result_queue: Any) -> None:
    """Claim specs until a ``None`` shutdown sentinel arrives."""
    while True:
        message = task_queue.get()
        if message is None:
            return
        run_id, index, spec = message
        started = perf_counter()
        try:
            payload = execute_spec(spec)
            status, body = "ok", payload
        except BaseException as exc:
            status, body = "err", _pack_error(exc)
        busy = perf_counter() - started
        span = Span(
            f"morsel[{index}]",
            attrs={"mode": spec.get("mode"), "pid": os.getpid()},
            duration_s=busy,
        )
        try:
            result_queue.put((run_id, index, worker_id, busy, status, body, span))
        except Exception as exc:  # a payload that cannot be pickled back
            result_queue.put(
                (run_id, index, worker_id, busy, "err", _pack_error(exc), span)
            )


# -- parent side ----------------------------------------------------------------


class _PoolState:
    """One warm set of worker processes plus their shared queues."""

    def __init__(self, workers: int):
        ctx = _mp_context()
        self.workers = workers
        self.tasks = ctx.SimpleQueue()
        self.results = ctx.SimpleQueue()
        self.processes = [
            ctx.Process(
                target=_worker_main,
                args=(i, self.tasks, self.results),
                name=f"repro-segment-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for process in self.processes:
            process.start()

    def dead_workers(self) -> list[Any]:
        return [p for p in self.processes if not p.is_alive()]

    def shutdown(self) -> None:
        """Graceful stop: one sentinel per worker, then join."""
        try:
            for _ in self.processes:
                self.tasks.put(None)
        except Exception:
            pass
        for process in self.processes:
            process.join(timeout=2)
        self.destroy()

    def destroy(self) -> None:
        """Hard stop: kill anything alive, close the queues."""
        for process in self.processes:
            if process.is_alive():
                process.kill()
        for process in self.processes:
            process.join(timeout=5)
        for queue in (self.tasks, self.results):
            try:
                queue.close()
            except Exception:
                pass


_POOLS: dict[int, _PoolState] = {}
_RUN_COUNTER = 0

#: White-box crash hook (tests): SIGKILL the worker executing this task
#: index on the next run_specs call, then self-clear.
_CRASH_TASK_INDEX: int | None = None


def set_crash_hook(task_index: int | None) -> None:
    """Arm the white-box crash hook: the worker claiming ``task_index`` on
    the next :meth:`ProcessWorkerPool.run_specs` call SIGKILLs itself."""
    global _CRASH_TASK_INDEX
    _CRASH_TASK_INDEX = task_index


def shutdown_worker_pools() -> None:
    """Stop every warm worker pool (atexit, and test teardown)."""
    for state in list(_POOLS.values()):
        state.shutdown()
    _POOLS.clear()


atexit.register(shutdown_worker_pools)


def _acquire_pool(workers: int) -> _PoolState:
    state = _POOLS.get(workers)
    if state is not None and not state.dead_workers():
        return state
    if state is not None:
        state.destroy()
        del _POOLS[workers]
    try:
        state = _PoolState(workers)
    except Exception as exc:
        raise ParallelExecutionError(f"cannot start worker pool: {exc}") from exc
    _POOLS[workers] = state
    return state


def _discard_pool(workers: int, state: _PoolState) -> None:
    state.destroy()
    if _POOLS.get(workers) is state:
        del _POOLS[workers]


class ProcessWorkerPool:
    """The process-backed worker pool behind ``set_worker_pool_factory``.

    Satisfies the factory signature (``ProcessWorkerPool`` itself can be
    installed as the pool factory); the scheduler detects ``kind ==
    "process"`` and routes morsel *descriptors* through
    :meth:`run_specs` instead of closures through ``run`` — closures
    cannot cross a process boundary, so ``run`` refuses loudly rather
    than degrade silently.
    """

    kind = "process"

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))

    def run(
        self, tasks: Any
    ) -> Any:  # pragma: no cover - contract documentation
        raise ParallelExecutionError(
            "ProcessWorkerPool executes morsel descriptors (run_specs), "
            "not closures; stages that cannot be described fall back to "
            "the thread pool"
        )

    def run_specs(self, specs: list[Spec]) -> tuple[list[Any], list[WorkerAccount]]:
        """Execute specs on warm worker processes; results in spec order."""
        global _RUN_COUNTER, _CRASH_TASK_INDEX
        n = len(specs)
        if n == 0:
            return [], []
        if _CRASH_TASK_INDEX is not None and 0 <= _CRASH_TASK_INDEX < n:
            doomed = dict(specs[_CRASH_TASK_INDEX])
            doomed["__sigkill__"] = True
            specs = list(specs)
            specs[_CRASH_TASK_INDEX] = doomed
            _CRASH_TASK_INDEX = None
        count = min(self.workers, n)
        state = _acquire_pool(count)
        _RUN_COUNTER += 1
        run_id = _RUN_COUNTER
        for index, spec in enumerate(specs):
            state.tasks.put((run_id, index, spec))
        results: list[Any] = [None] * n
        errors: list[BaseException | None] = [None] * n
        accounts: dict[int, list[Any]] = {}
        collected = 0
        reader = state.results._reader  # type: ignore[attr-defined]
        sentinels = [p.sentinel for p in state.processes]
        while collected < n:
            _connection_wait([reader, *sentinels])
            progressed = False
            while not state.results.empty():
                run, index, worker_id, busy, status, body, span = state.results.get()
                if run != run_id:
                    continue  # stray result from a crashed earlier run
                progressed = True
                collected += 1
                account = accounts.setdefault(worker_id, [0, 0.0, []])
                account[0] += 1
                account[1] += busy
                account[2].append(span)
                if status == "ok":
                    results[index] = body
                else:
                    errors[index] = _unpack_error(body)
            if collected >= n and not state.dead_workers():
                break
            dead = state.dead_workers()
            if dead and not progressed:
                pids = [p.pid for p in dead]
                codes = [p.exitcode for p in dead]
                _discard_pool(count, state)
                raise ParallelExecutionError(
                    f"worker process {pids} died mid-morsel "
                    f"(exit codes {codes}); pool drained and restarted on next use"
                )
            if collected >= n:
                # Results all arrived but a worker died after finishing —
                # retire the wounded pool quietly; the run itself succeeded.
                _discard_pool(count, state)
                break
        for error in errors:
            if error is not None:
                raise error
        return results, [
            (worker_id, account[0], account[1], account[2])
            for worker_id, account in sorted(accounts.items())
        ]
