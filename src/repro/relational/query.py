"""Fluent query builder and a plan optimizer.

The optimizer applies safe rewrites only: select merge/pushdown, projection
pushdown with dead-column pruning, fusing ``Limit`` over ``Sort`` into a
heap top-k, and — when a database handle is supplied — lowering equality
selections over base tables onto :class:`~repro.relational.algebra.IndexLookup`
backed by the table's hash indexes.  Correctness is checked by property
tests asserting optimized, naive-streaming, and interpreted executions
agree on every database they run against.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Callable, cast

from repro.expr.analysis import referenced_identifiers
from repro.obs.trace import Span, current_tracer
from repro.expr.ast import (
    BinaryOp,
    Expression,
    Identifier,
    InList,
    IsNull,
    Literal,
    conjunction,
)
from repro.expr.parser import parse
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Coerce,
    Compute,
    Distinct,
    ExecContext,
    IndexLookup,
    InLookup,
    Join,
    Limit,
    PartitionScan,
    Pivot,
    Plan,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    TopK,
    Union,
    Unpivot,
    Values,
)
from repro.relational.cost import (
    _key_ndv,
    conjunct_cost,
    conjunct_error_free,
    conjunct_selectivity,
    costing_enabled,
    estimate_plan_rows,
)
from repro.relational.database import Database

# Conjunct decomposition and the equality/IN/range item analyzers are
# shared with the zone-map probe builders and live in stats.py.
from repro.relational.stats import (
    _FLIPPED_COMPARE,
    _conjuncts,
    _equality_item,
    _in_list_item,
    statistics_enabled,
)
from repro.relational.vectorize import (
    VECTORIZE_MIN_ROWS,
    Vectorized,
    estimated_input_rows,
    fully_vectorizable,
)

Row = dict[str, object]


@dataclass(frozen=True)
class Query:
    """Immutable fluent wrapper around a logical plan.

    >>> Query.table("visits").where("age >= 50").select("patient_id")
    """

    plan: Plan

    @classmethod
    def table(cls, name: str) -> "Query":
        return cls(Scan(name))

    def where(self, condition: str | Expression) -> "Query":
        expr = parse(condition) if isinstance(condition, str) else condition
        return Query(Select(self.plan, expr))

    def select(self, *columns: str) -> "Query":
        return Query(Project(self.plan, tuple(columns)))

    def compute(self, **derivations: str | Expression) -> "Query":
        parsed = tuple(
            (name, parse(value) if isinstance(value, str) else value)
            for name, value in derivations.items()
        )
        return Query(Compute(self.plan, parsed))

    def rename(self, **mapping: str) -> "Query":
        """``rename(old=new)`` pairs."""
        return Query(Rename(self.plan, tuple(mapping.items())))

    def join(
        self,
        other: "Query | Plan",
        on: list[tuple[str, str]] | tuple[tuple[str, str], ...],
        how: str = "inner",
    ) -> "Query":
        right = other.plan if isinstance(other, Query) else other
        return Query(Join(self.plan, right, tuple(on), how))

    def union(self, *others: "Query | Plan") -> "Query":
        plans = [self.plan]
        plans.extend(o.plan if isinstance(o, Query) else o for o in others)
        return Query(Union(tuple(plans)))

    def distinct(self) -> "Query":
        return Query(Distinct(self.plan))

    def order_by(self, *keys: str) -> "Query":
        """Keys like ``"age"`` (ascending) or ``"-age"`` (descending)."""
        parsed = tuple(
            (key[1:], False) if key.startswith("-") else (key, True) for key in keys
        )
        return Query(Sort(self.plan, parsed))

    def limit(self, count: int) -> "Query":
        return Query(Limit(self.plan, count))

    def aggregate(
        self, group_by: list[str] | tuple[str, ...], *specs: AggregateSpec
    ) -> "Query":
        return Query(Aggregate(self.plan, tuple(group_by), tuple(specs)))

    def count(self, db: Database) -> int:
        """Execute and return the row count."""
        return len(self.execute(db))

    def execute(self, db: Database, optimized: bool = True) -> list[Row]:
        plan = optimize(self.plan, db) if optimized else self.plan
        return plan.execute(db)


def optimize(plan: Plan, db: Database | None = None, *, vectorize: bool = True) -> Plan:
    """Apply safe rewrites; ``db`` unlocks schema- and index-aware rules.

    Without a database the optimizer falls back to statically derivable
    column sets, as before.  With one (``Query.execute`` always passes it),
    it can additionally lower equality filters onto hash indexes, prune
    dead columns through joins and unions, and (unless ``vectorize=False``)
    wrap high-volume fully-kernel-supported subtrees in
    :class:`~repro.relational.vectorize.Vectorized` for columnar execution.
    The optimizer is deliberately conservative — correctness is checked by
    property tests asserting optimized and naive plans agree on every
    database they run against.

    With a database the result is also memoized in the database's plan
    cache, keyed by (structural plan fingerprint, vectorize flag, the
    statistics and costing toggles, ``Database.epoch``): GUAVA pattern
    chains re-translate structurally identical plans on every pull, and
    re-lowering them is pure overhead while nothing changed.  Any insert,
    delete, index create/drop, or table create/drop bumps the epoch and
    invalidates every cached plan, so a stale plan (e.g. one probing a
    dropped index) is never served.  The toggles are in the key because
    planning now *consults* statistics (build sides, join order, conjunct
    order): a plan costed under one regime must never serve the other.
    Derived-statistics versions need no separate key component — every
    stats artifact is cached per table data ``version`` via
    ``Table.derived``, and those versions already fold into the epoch.

    Under an installed tracer (``repro.obs.tracing()``) the pass opens an
    ``optimize`` span counting each rewrite applied and logging the costed
    access-path alternatives of every index lowering.  A cache hit still
    opens the span, but with ``plan_cache="hit"`` and no ``rewrite.*``
    counters — the absence of rewrite counters is the observable proof
    that lowering was skipped.
    """
    tracer = current_tracer()
    fingerprint: str | None = None
    epoch = 0
    if db is not None:
        fingerprint = (
            f"V{int(vectorize)}S{int(statistics_enabled())}C{int(costing_enabled())}:"
            + plan_fingerprint(plan)
        )
        # Captured before planning: a mutation racing the rewrite pass can
        # only make the entry stale-keyed (a harmless miss), never fresh.
        epoch = db.epoch
        cached = db.plan_cache_get(fingerprint, epoch)
        if cached is not None:
            if tracer is not None:
                with tracer.span("optimize") as trace:
                    trace.set("plan_cache", "hit")
            return cast(Plan, cached)
    ctx = _OptContext(db)
    if tracer is None:
        optimized = _rewrite(plan, ctx)
        if db is not None and costing_enabled():
            optimized = _cost_pass(optimized, ctx)
        if db is not None and vectorize:
            optimized = _vectorize_tree(optimized, db, ctx)
    else:
        with tracer.span("optimize") as trace:
            ctx.trace = trace
            trace.set("plan_cache", "miss" if db is not None else "off")
            optimized = _rewrite(plan, ctx)
            if db is not None and costing_enabled():
                optimized = _cost_pass(optimized, ctx)
            if db is not None and vectorize:
                optimized = _vectorize_tree(optimized, db, ctx)
    if db is not None and fingerprint is not None:
        db.plan_cache_put(fingerprint, epoch, optimized)
    return optimized


def plan_fingerprint(plan: Plan) -> str:
    """A structural fingerprint for plan-cache keying.

    Generic over the plan/expression dataclasses: type names plus every
    field, recursively; scalars render as ``type:repr`` so values that
    compare equal across types (``Literal(1)`` vs ``Literal(True)`` vs
    ``Literal(1.0)``) never collide — the same structural-aliasing hazard
    that makes expr/compile.py key its caches by identity.
    """
    parts: list[str] = []
    _fingerprint(plan, parts.append)
    return "".join(parts)


def _fingerprint(value: object, emit: Callable[[str], None]) -> None:
    if is_dataclass(value) and not isinstance(value, type):
        emit(type(value).__name__)
        emit("(")
        for field in fields(value):
            _fingerprint(getattr(value, field.name), emit)
            emit(",")
        emit(")")
    elif isinstance(value, tuple):
        emit("[")
        for item in value:
            _fingerprint(item, emit)
            emit(",")
        emit("]")
    else:
        emit(f"{type(value).__name__}:{value!r};")


def _vectorize_tree(plan: Plan, db: Database, ctx: _OptContext) -> Plan:
    """Wrap the root-most batch-executable subtrees in ``Vectorized``.

    A subtree qualifies when every node has a batch kernel (index probes
    ride along as row-wise leaves) and its estimated base input clears
    ``VECTORIZE_MIN_ROWS`` — below that, batch setup costs more than the
    per-row dict traffic it saves.
    """
    if isinstance(plan, Vectorized):
        return plan
    if fully_vectorizable(plan) and estimated_input_rows(plan, db) >= VECTORIZE_MIN_ROWS:
        ctx.note("vectorize", root=type(plan).__name__)
        return Vectorized(plan)
    children = tuple(_vectorize_tree(child, db, ctx) for child in plan.children())
    return _with_children(plan, children)


def _cost_pass(plan: Plan, ctx: _OptContext) -> Plan:
    """Cost-based physical decisions, applied top-down after the rewrites.

    Three decisions, each gated on its own soundness proof (the estimate
    picks *among* equivalent plans; the proof establishes equivalence):

    * join-chain reordering (≥3 stacked PK joins, greedy most-selective
      first, original column order restored by a projection),
    * hash-join build-side selection (build on the estimated-smaller
      input when the left subtree provably cannot raise),
    * Select conjunct reordering (selectivity/cost rank, permuting only
      within runs of provably error-free conjuncts).
    """
    if isinstance(plan, Join):
        plan = _reorder_join_chain(plan, ctx)
    if isinstance(plan, Join):
        plan = _choose_build_side(plan, ctx)
    if isinstance(plan, Select):
        plan = _reorder_conjuncts(plan, ctx)
    children = tuple(_cost_pass(child, ctx) for child in plan.children())
    return _with_children(plan, children)


def _choose_build_side(join: Join, ctx: _OptContext) -> Join:
    """Build the hash table on the estimated-smaller join input.

    Every executor builds on the right by default; when the left input is
    estimated at less than half the right's rows, flipping saves hashing
    the bulk side.  Soundness: the left-build algorithm emits the exact
    right-build output (rows, order, columns), and consuming the left
    side *first* is only observable through errors — so the flip requires
    a proof that the left subtree cannot raise.  The 2x margin keeps
    near-tie estimates on the default path.
    """
    db = ctx.db
    assert db is not None
    if join.build != "right" or join.how not in ("inner", "left"):
        return join
    left_rows = estimate_plan_rows(join.left, db)
    right_rows = estimate_plan_rows(join.right, db)
    if left_rows * 2.0 >= right_rows:
        return join
    if not _error_free_subtree(join.left, ctx):
        return join
    ctx.note(
        "join_build_side",
        build="left",
        estimated_left=round(left_rows),
        estimated_right=round(right_rows),
    )
    return Join(join.left, join.right, join.on, join.how, "left")


def _error_free_subtree(plan: Plan, ctx: _OptContext) -> bool:
    """True when streaming this subtree cannot raise on any row.

    Conservative by construction: base-table access paths never raise
    (``sql_equal`` residuals included), row-preserving wrappers inherit
    their child's proof, and a Select qualifies only when every conjunct
    is provably error-free over its base table.  Everything else — joins,
    computed columns, aggregates — answers False.
    """
    db = ctx.db
    if db is None:
        return False
    if isinstance(plan, (Scan, PartitionScan, IndexLookup, InLookup)):
        return db.has_table(plan.table)
    if isinstance(plan, Values):
        return True
    if isinstance(plan, (Distinct, Limit)):
        return _error_free_subtree(plan.child, ctx)
    if isinstance(plan, Select):
        child = plan.child
        if not isinstance(child, (Scan, PartitionScan, IndexLookup, InLookup)):
            return False
        if not db.has_table(child.table):
            return False
        table = db.table(child.table)
        return all(
            conjunct_error_free(table, conjunct)
            for conjunct in _conjuncts(plan.predicate)
        )
    return False


def _reorder_conjuncts(select: Select, ctx: _OptContext) -> Select:
    """Order AND-conjuncts by estimated selectivity x evaluation cost.

    The 3VL AND chain short-circuits left to right, so conjunct ``k``
    evaluates on a row exactly when every earlier conjunct was non-False.
    Permuting *provably error-free* conjuncts among themselves can
    therefore change neither the kept rows nor which error surfaces
    first; conjuncts without a proof act as barriers — they keep their
    position and nothing moves across them, preserving the interpreted
    oracle's error parity exactly.
    """
    db = ctx.db
    assert db is not None
    child = select.child
    if not isinstance(child, (Scan, PartitionScan, IndexLookup, InLookup)):
        return select
    if not db.has_table(child.table):
        return select
    table = db.table(child.table)
    conjuncts = list(_conjuncts(select.predicate))
    if len(conjuncts) < 2:
        return select

    def rank(conjunct: Expression) -> float:
        # Per-row benefit over cost: most-negative first means "cheapest
        # way to discard the most rows" runs earliest.
        return (conjunct_selectivity(table, conjunct) - 1.0) / conjunct_cost(
            table, conjunct
        )

    ordered: list[Expression] = []
    run: list[Expression] = []
    for conjunct in conjuncts:
        if conjunct_error_free(table, conjunct):
            run.append(conjunct)
        else:
            ordered.extend(sorted(run, key=rank))
            run.clear()
            ordered.append(conjunct)  # barrier: stays in place
    ordered.extend(sorted(run, key=rank))
    if ordered == conjuncts:
        return select
    ctx.note(
        "conjunct_reorder",
        table=child.table,
        order=[conjunct.to_source() for conjunct in ordered],
    )
    return Select(child, conjunction(ordered))


def _reorder_join_chain(join: Join, ctx: _OptContext) -> Plan:
    """Greedily reorder a left-spine chain of >=3 inner PK joins.

    Soundness conditions (all required, checked structurally):

    * every spine join is inner with default build;
    * each right side is a bare Scan/PartitionScan whose table's declared
      primary key is exactly the join's right-key set — so each probe
      matches at most one row, every step emits a subset of the base rows
      in base order, and the chain's output is permutation-invariant;
    * each join's left keys come from the base (leftmost) input, so key
      values are identical at any chain position;
    * neither the original nor the reordered chain has a column collision
      (else the authored plan's own error must surface unchanged).

    Dimension scans are error-free, so permuting their consumption order
    cannot reorder errors.  The reordered chain appends payload columns
    in the new order; a final projection restores the authored column
    order, making the rewrite bit-identical end to end.
    """
    db = ctx.db
    assert db is not None
    spine: list[Join] = []  # outermost first
    node: Plan = join
    while isinstance(node, Join) and node.how == "inner" and node.build == "right":
        spine.append(node)
        node = node.left
    if len(spine) < 3:
        return join
    base = node
    base_cols = ctx.column_set(base)
    original_columns = ctx.columns_of(join)
    if base_cols is None or original_columns is None:
        return join

    dims: list[tuple[Join, float]] = []  # innermost first, with selectivity
    base_rows = estimate_plan_rows(base, db)
    for step in reversed(spine):
        right = step.right
        if not isinstance(right, (Scan, PartitionScan)):
            return join
        if not db.has_table(right.table):
            return join
        rtable = db.table(right.table)
        right_keys = {rk for _, rk in step.on}
        if not rtable.schema.primary_key:
            return join
        if set(rtable.schema.primary_key) != right_keys:
            return join
        left_keys = tuple(lk for lk, _ in step.on)
        if not set(left_keys) <= base_cols:
            return join
        key_ndv = _key_ndv(base, left_keys, db, base_rows)
        selectivity = min(len(rtable) / max(key_ndv, 1.0), 1.0)
        dims.append((step, selectivity))

    reordered = sorted(dims, key=lambda item: item[1])  # stable: ties keep order
    if [step for step, _ in reordered] == [step for step, _ in dims]:
        return join
    if not (
        _chain_collision_free(base, [s for s, _ in dims], ctx)
        and _chain_collision_free(base, [s for s, _ in reordered], ctx)
    ):
        return join
    rebuilt: Plan = base
    for step, _selectivity in reordered:
        rebuilt = Join(rebuilt, step.right, step.on, step.how, step.build)
    ctx.note(
        "join_reorder",
        order=[
            (
                step.right.table
                if isinstance(step.right, (Scan, PartitionScan))
                else type(step.right).__name__,
                round(selectivity, 4),
            )
            for step, selectivity in reordered
        ],
    )
    # Payload columns now append in the new order; restore the authored
    # column order so the rewrite is invisible to every consumer.
    return Project(rebuilt, original_columns)


def _chain_collision_free(
    base: Plan, steps: list[Join], ctx: _OptContext
) -> bool:
    """Would this chain order pass every step's column-collision check?"""
    acc = ctx.column_set(base)
    if acc is None:
        return False
    acc = set(acc)
    for step in steps:
        right_cols = ctx.column_set(step.right)
        if right_cols is None:
            return False
        right_keys = {rk for _, rk in step.on}
        if (acc & right_cols) - right_keys:
            return False
        acc |= right_cols - right_keys
    return True


class _OptContext:
    """Column knowledge for the rewrite pass, memoized across the tree."""

    __slots__ = ("db", "trace", "_exec")

    def __init__(self, db: Database | None):
        self.db = db
        #: The ``optimize`` span when tracing, else None (the common case).
        self.trace: Span | None = None
        self._exec = ExecContext(db) if db is not None else None

    def note(self, rule: str, **data: object) -> None:
        """Count one applied rewrite (and log its decision data)."""
        if self.trace is not None:
            self.trace.incr(f"rewrite.{rule}")
            if data:
                self.trace.event(rule, **data)

    def columns_of(self, plan: Plan) -> tuple[str, ...] | None:
        """Ordered output columns when derivable, else None."""
        if self._exec is not None:
            try:
                return self._exec.columns(plan)
            except Exception:
                return None
        return None

    def column_set(self, plan: Plan) -> set[str] | None:
        """Output column set when derivable (statically or via the db)."""
        ordered = self.columns_of(plan)
        if ordered is not None:
            return set(ordered)
        return _static_columns(plan)


def _rewrite(plan: Plan, ctx: _OptContext) -> Plan:
    # Bottom-up.
    children = tuple(_rewrite(child, ctx) for child in plan.children())
    plan = _with_children(plan, children)

    if isinstance(plan, Select):
        return _rewrite_select(plan, ctx)
    if isinstance(plan, Project):
        return _rewrite_project(plan, ctx)
    if isinstance(plan, Limit) and isinstance(plan.child, Sort) and plan.count >= 0:
        ctx.note("topk_fusion")
        return TopK(plan.child.child, plan.child.keys, plan.count)
    if isinstance(plan, Pivot):
        return _rewrite_pivot(plan, ctx)
    return plan


def _rewrite_pivot(plan: Pivot, ctx: _OptContext) -> Plan:
    # A projection feeding a pivot is dead work: the pivot reads only its
    # key/attribute/value columns and builds entirely fresh rows.  Drop the
    # projection when the columns it promises verifiably exist below (so
    # its validity check could not have fired).
    child = plan.child
    needed = set(plan.key_columns) | {plan.attribute_column, plan.value_column}
    if isinstance(child, Project) and needed <= set(child.columns):
        below = ctx.column_set(child.child)
        if below is not None and set(child.columns) <= below:
            ctx.note("pivot_project_drop")
            return Pivot(
                child.child,
                plan.key_columns,
                plan.attribute_column,
                plan.value_column,
                plan.attributes,
            )
    return plan


def _rewrite_select(plan: Select, ctx: _OptContext) -> Plan:
    child = plan.child
    # A constant-TRUE filter keeps every row; drop the whole pass.
    if isinstance(plan.predicate, Literal) and plan.predicate.value is True:
        ctx.note("constant_select_drop")
        return child
    # Merge consecutive selects into one conjunction.
    if isinstance(child, Select):
        ctx.note("select_merge")
        merged = BinaryOp("AND", child.predicate, plan.predicate)
        return _rewrite(Select(child.child, merged), ctx)
    # A child lowered to an index path was chosen bottom-up, before this
    # predicate arrived (e.g. a record-id IN probe pushed down from
    # above).  Reconstruct the combined filter and re-lower jointly so
    # the most selective access path wins.
    if isinstance(child, (IndexLookup, InLookup)):
        rebuilt = BinaryOp("AND", _lookup_predicate(child), plan.predicate)
        lowered = _lower_index_lookup(rebuilt, Scan(child.table), ctx)
        if lowered is not None:
            ctx.note("select_relower_joint")
            return lowered
        return plan
    # Push below a projection when the predicate only reads surviving
    # columns (they exist below too, so evaluation is unchanged, and the
    # projection's own validity check still runs).
    if isinstance(child, Project):
        if referenced_identifiers(plan.predicate) <= set(child.columns):
            ctx.note("select_below_project")
            return _rewrite_project(
                Project(_rewrite(Select(child.child, plan.predicate), ctx), child.columns),
                ctx,
            )
    # Push below Coerce when the predicate reads no converted column (a
    # converted column's pre-coercion value could compare differently).
    if isinstance(child, Coerce):
        converted = {column for column, _ in child.column_types}
        if not (referenced_identifiers(plan.predicate) & converted):
            ctx.note("select_below_coerce")
            return Coerce(
                _rewrite(Select(child.child, plan.predicate), ctx),
                child.column_types,
            )
    # Push below Pivot when the predicate reads only pivot keys: every row
    # of a group shares its key values, so filtering input rows and
    # filtering folded groups keep exactly the same keys.
    if isinstance(child, Pivot):
        if referenced_identifiers(plan.predicate) <= set(child.key_columns):
            ctx.note("select_below_pivot")
            return Pivot(
                _rewrite(Select(child.child, plan.predicate), ctx),
                child.key_columns,
                child.attribute_column,
                child.value_column,
                child.attributes,
            )
    # Push select below union (always safe).
    if isinstance(child, Union):
        ctx.note("select_below_union")
        pushed = tuple(
            _rewrite(Select(branch, plan.predicate), ctx) for branch in child.inputs
        )
        return Union(pushed)
    # Push select into a join side when its columns come from one side.
    if isinstance(child, Join) and child.how == "inner":
        return _push_into_join(plan.predicate, child, ctx)
    # Lower equality filters over a base table onto a hash index; when no
    # index covers the filter, try pruning partitions of a partitioned
    # table instead (an index probe is strictly more selective, so it wins
    # whenever both would apply).
    if isinstance(child, Scan):
        lowered = _lower_index_lookup(plan.predicate, child, ctx)
        if lowered is not None:
            return lowered
        pruned = _lower_partition_scan(plan.predicate, child.table, None, ctx)
        if pruned is not None:
            return pruned
    # A select merged down onto an already-pruned scan (select_merge above
    # rebuilds the conjunction): re-prune and intersect with the existing
    # partition choice.
    if isinstance(child, PartitionScan):
        pruned = _lower_partition_scan(
            plan.predicate, child.table, child.partitions, ctx
        )
        if pruned is not None:
            return pruned
    return plan


def _push_into_join(predicate: Expression, join: Join, ctx: _OptContext) -> Plan:
    names = referenced_identifiers(predicate)
    left_cols = ctx.column_set(join.left)
    right_cols = ctx.column_set(join.right)
    if left_cols is not None and names <= left_cols:
        ctx.note("select_into_join")
        return Join(
            _rewrite(Select(join.left, predicate), ctx),
            join.right,
            join.on,
            join.how,
            join.build,
        )
    if right_cols is not None and names <= right_cols:
        ctx.note("select_into_join")
        return Join(
            join.left,
            _rewrite(Select(join.right, predicate), ctx),
            join.on,
            join.how,
            join.build,
        )
    return Select(join, predicate)


def _lower_index_lookup(
    predicate: Expression, scan: Scan, ctx: _OptContext
) -> Plan | None:
    """``Select(Scan, col = literal AND …)`` → IndexLookup (+ residual Select).

    Only fires when the database is known, the table exists, and a hash
    index covers at least the equality columns — otherwise the plan is left
    alone so execution cost and error behaviour stay exactly as written.
    """
    if ctx.db is None or not ctx.db.has_table(scan.table):
        return None
    table = ctx.db.table(scan.table)
    columns = set(table.schema.column_names)
    eq_items: list[tuple[str, object]] = []
    in_items: list[tuple[tuple[str, tuple[object, ...]], Expression]] = []
    residual: list[Expression] = []
    for conjunct in _conjuncts(predicate):
        item = _equality_item(conjunct, columns)
        if item is not None:
            eq_items.append(item)
            continue
        probe = _in_list_item(conjunct, columns)
        if probe is not None:
            in_items.append((probe, conjunct))
            continue
        residual.append(conjunct)
    # Collect every index-servable access path with its actual candidate
    # count (bucket sizes are known, so this is a measurement, not an
    # estimate), then take the most selective one.
    choices: list[tuple[int, Plan, list[Expression]]] = []
    if eq_items:
        eq_index = table.matching_index([column for column, _ in eq_items])
        if eq_index is not None:
            values = dict(eq_items)
            key = tuple(values[column] for column in eq_index.columns)
            rest = residual + [conjunct for _, conjunct in in_items]
            choices.append(
                (len(eq_index.lookup(key)), IndexLookup(scan.table, tuple(eq_items)), rest)
            )
    for position, ((column, values), _conjunct) in enumerate(in_items):
        in_index = table.matching_index([column])
        if in_index is None:
            continue
        count = sum(len(in_index.lookup((value,))) for value in values)
        rest = (
            [BinaryOp("=", Identifier.of(c), Literal(v)) for c, v in eq_items]
            + residual
            + [c for index, (_, c) in enumerate(in_items) if index != position]
        )
        choices.append((count, InLookup(scan.table, column, values), rest))
    if not choices:
        return None
    count, lookup, rest = min(choices, key=lambda choice: choice[0])
    ctx.note(
        "index_lowering",
        table=scan.table,
        chosen=type(lookup).__name__,
        candidate_rows=count,
        alternatives=[
            {"path": type(path).__name__, "candidate_rows": rows}
            for rows, path, _ in choices
        ],
    )
    return Select(lookup, conjunction(rest)) if rest else lookup


def _lower_partition_scan(
    predicate: Expression,
    table_name: str,
    current: tuple[int, ...] | None,
    ctx: _OptContext,
) -> Plan | None:
    """``Select(Scan, pred)`` → ``Select(PartitionScan, pred)`` when conjuncts
    on the partition key rule partitions out.

    Pruning only narrows the scanned superset — the FULL predicate stays as
    the residual select — so a conjunct the analysis cannot use simply
    prunes nothing.  ``current`` carries an existing PartitionScan's
    partition choice to intersect with (None when lowering a bare Scan).
    Returns None when nothing (further) prunes.
    """
    if ctx.db is None or not ctx.db.has_table(table_name):
        return None
    scheme = ctx.db.table(table_name).partitioning
    if scheme is None or scheme.partition_count <= 1:
        return None
    candidates = _partition_candidates(predicate, scheme)
    if candidates is None:
        return None
    baseline = (
        set(current)
        if current is not None
        else set(range(scheme.partition_count))
    )
    chosen = baseline & candidates
    if chosen == baseline:
        return None  # nothing new pruned
    ctx.note(
        "partition_prune",
        table=table_name,
        scheme=scheme.describe(),
        scanned=len(chosen),
        pruned=scheme.partition_count - len(chosen),
    )
    return Select(PartitionScan(table_name, tuple(sorted(chosen))), predicate)


def _partition_candidates(predicate: Expression, scheme) -> set[int] | None:
    """Partitions that can hold predicate-satisfying rows; None = no pruning."""
    allowed: set[int] | None = None
    for conjunct in _conjuncts(predicate):
        candidate = _conjunct_partitions(conjunct, scheme)
        if candidate is None:
            continue
        allowed = candidate if allowed is None else allowed & candidate
    return allowed


def _conjunct_partitions(conjunct: Expression, scheme) -> set[int] | None:
    """Partitions one conjunct confines the key to; None = no information.

    Every rule is sound against the residual re-filter: a partition is only
    dropped when no row inside it can satisfy this conjunct under
    ``sql_equal``/comparison semantics (NULL comparisons filter out).
    """
    key = {scheme.column}
    item = _equality_item(conjunct, key)
    if item is not None:
        return {scheme.partition_of(item[1])}
    probe = _in_list_item(conjunct, key)
    if probe is not None:
        # NULL items were dropped; an all-NULL list keeps no rows at all.
        return {scheme.partition_of(value) for value in probe[1]}
    if (
        isinstance(conjunct, IsNull)
        and not conjunct.negated
        and isinstance(conjunct.operand, Identifier)
        and len(conjunct.operand.path) == 1
        and conjunct.operand.name == scheme.column
    ):
        return {scheme.null_partition}
    if isinstance(conjunct, BinaryOp) and conjunct.op in _FLIPPED_COMPARE:
        for ident, literal, op in (
            (conjunct.left, conjunct.right, conjunct.op),
            (conjunct.right, conjunct.left, _FLIPPED_COMPARE[conjunct.op]),
        ):
            if not (isinstance(ident, Identifier) and isinstance(literal, Literal)):
                continue
            if len(ident.path) != 1 or ident.name != scheme.column:
                continue
            spanned = scheme.partitions_for_compare(op, literal.value)
            if spanned is not None:
                return set(spanned)
    return None


def _lookup_predicate(lookup: IndexLookup | InLookup) -> Expression:
    """The filter an already-lowered lookup node stands for.

    Used to undo a bottom-up lowering so its conjuncts can compete with a
    predicate pushed down later in one joint access-path choice.
    """
    if isinstance(lookup, IndexLookup):
        return conjunction(
            [
                BinaryOp("=", Identifier.of(column), Literal(value))
                for column, value in lookup.items
            ]
        )
    return InList(
        Identifier.of(lookup.column),
        tuple(Literal(value) for value in lookup.values),
    )


def _rewrite_project(plan: Project, ctx: _OptContext) -> Plan:
    child = plan.child
    col_set = set(plan.columns)

    # An identity projection (same columns, same order) is a pure copy
    # pass; dropping it cannot change rows or error behaviour.
    if ctx.columns_of(child) == plan.columns:
        ctx.note("project_identity_drop")
        return child

    # Merge stacked projections (only when the outer survives the inner's
    # validity check, so error behaviour is preserved).
    if isinstance(child, Project) and col_set <= set(child.columns):
        ctx.note("project_merge")
        return _rewrite_project(Project(child.child, plan.columns), ctx)

    # Dead-derivation pruning: drop computed columns the projection discards
    # (derivations are independent — each evaluates against the child row).
    if isinstance(child, Compute):
        kept = tuple(d for d in child.derivations if d[0] in col_set)
        if len(kept) < len(child.derivations):
            ctx.note("dead_derivation_prune")
            inner: Plan = Compute(child.child, kept) if kept else child.child
            return _rewrite_project(Project(inner, plan.columns), ctx)

    # Push below a Sort when every sort key survives the projection: stable
    # sort of projected rows by the same keys yields the same order.
    if isinstance(child, Sort) and {c for c, _ in child.keys} <= col_set:
        ctx.note("project_below_sort")
        return Sort(
            _rewrite_project(Project(child.child, plan.columns), ctx), child.keys
        )

    # Prune dead columns into both sides of a join.
    if isinstance(child, Join):
        pushed = _push_project_into_join(plan, child, ctx)
        if pushed is not None:
            return pushed

    # Push into every union branch (when branches verifiably agree, so the
    # union's column-mismatch check is not silently skipped).
    if isinstance(child, Union) and child.inputs:
        branch_cols = [ctx.column_set(branch) for branch in child.inputs]
        if all(columns is not None for columns in branch_cols):
            agreed = {frozenset(columns) for columns in branch_cols}  # type: ignore[arg-type]
            if len(agreed) == 1:
                full = next(iter(agreed))
                if col_set <= full and col_set != full:
                    ctx.note("project_into_union")
                    pushed_branches = tuple(
                        _rewrite_project(Project(branch, plan.columns), ctx)
                        for branch in child.inputs
                    )
                    return Union(pushed_branches)

    return plan


def _push_project_into_join(
    project: Project, join: Join, ctx: _OptContext
) -> Plan | None:
    left_cols = ctx.columns_of(join.left)
    right_cols = ctx.columns_of(join.right)
    if left_cols is None or right_cols is None:
        return None
    left_keys = {lk for lk, _ in join.on}
    right_keys = {rk for _, rk in join.on}
    # Keep the original plan when the join would refuse a column collision.
    if (set(left_cols) & set(right_cols)) - right_keys:
        return None
    needed = set(project.columns)
    left_keep = tuple(c for c in left_cols if c in needed or c in left_keys)
    right_keep = tuple(c for c in right_cols if c in needed or c in right_keys)
    if len(left_keep) == len(left_cols) and len(right_keep) == len(right_cols):
        return None  # nothing to prune
    produced = set(left_keep) | (set(right_keep) - right_keys)
    if not needed <= produced:
        return None  # let the original projection raise its unknown-column error
    ctx.note("project_into_join")
    new_left = (
        _rewrite_project(Project(join.left, left_keep), ctx)
        if len(left_keep) < len(left_cols)
        else join.left
    )
    new_right = (
        _rewrite_project(Project(join.right, right_keep), ctx)
        if len(right_keep) < len(right_cols)
        else join.right
    )
    return Project(
        Join(new_left, new_right, join.on, join.how, join.build), project.columns
    )


def prepare_stream_plan(plan: Plan, db: Database) -> Plan:
    """Optimize ``plan`` for repeated streaming, building missing indexes.

    Equality filters that survive optimization directly over a base table
    get a supporting hash index built (idempotent — ``create_index``
    returns the existing one), then the plan is re-optimized so the
    :class:`IndexLookup` lowering fires.  Index creation is invisible to
    query semantics; callers that must preserve the exact cost profile of
    the written plan (the serial ETL oracle) should execute the raw plan
    instead.
    """
    optimized = optimize(plan, db)
    built = False
    for node in _walk(optimized):
        # A residual select above an already-lowered lookup counts too: an
        # index on its columns lets re-optimization pick a more selective
        # access path (the cost-based choice needs the index to exist).
        if not (
            isinstance(node, Select)
            and isinstance(node.child, (Scan, IndexLookup, InLookup, PartitionScan))
        ):
            continue
        if not db.has_table(node.child.table):
            continue
        table = db.table(node.child.table)
        columns = set(table.schema.column_names)
        eq_columns = [
            item[0]
            for conjunct in _conjuncts(node.predicate)
            if (item := _equality_item(conjunct, columns)) is not None
        ]
        if eq_columns and table.matching_index(eq_columns) is None:
            table.create_index(tuple(eq_columns))
            built = True
        for conjunct in _conjuncts(node.predicate):
            probe = _in_list_item(conjunct, columns)
            if probe is not None and table.matching_index([probe[0]]) is None:
                table.create_index((probe[0],))
                built = True
    if built:
        optimized = optimize(plan, db)
    return optimized


def _walk(plan: Plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)


def _static_columns(plan: Plan) -> set[str] | None:
    """Output columns when derivable without a database, else None."""
    if isinstance(plan, Project):
        return set(plan.columns)
    if isinstance(plan, Rename):
        base = _static_columns(plan.child)
        if base is None:
            return None
        mapping = dict(plan.mapping)
        return {mapping.get(column, column) for column in base}
    if isinstance(plan, (Select, Distinct, Sort, Limit, TopK)):
        return _static_columns(plan.child)
    if isinstance(plan, Compute):
        base = _static_columns(plan.child)
        if base is None:
            return None
        return base | {name for name, _ in plan.derivations}
    return None


def _with_children(plan: Plan, children: tuple[Plan, ...]) -> Plan:
    """Rebuild ``plan`` with replacement children (dataclass-generic)."""
    if not children:
        return plan
    if isinstance(plan, Select):
        return Select(children[0], plan.predicate)
    if isinstance(plan, Project):
        return Project(children[0], plan.columns)
    if isinstance(plan, Compute):
        return Compute(children[0], plan.derivations)
    if isinstance(plan, Rename):
        return Rename(children[0], plan.mapping)
    if isinstance(plan, Join):
        return Join(children[0], children[1], plan.on, plan.how, plan.build)
    if isinstance(plan, Union):
        return Union(children)
    if isinstance(plan, Distinct):
        return Distinct(children[0])
    if isinstance(plan, Sort):
        return Sort(children[0], plan.keys)
    if isinstance(plan, TopK):
        return TopK(children[0], plan.keys, plan.count)
    if isinstance(plan, Limit):
        return Limit(children[0], plan.count)
    if isinstance(plan, Aggregate):
        return Aggregate(children[0], plan.group_by, plan.aggregates)
    if isinstance(plan, Coerce):
        return Coerce(children[0], plan.column_types)
    if isinstance(plan, Unpivot):
        return Unpivot(
            children[0],
            plan.id_columns,
            plan.value_columns,
            plan.attribute_column,
            plan.value_column,
        )
    if isinstance(plan, Pivot):
        return Pivot(
            children[0],
            plan.key_columns,
            plan.attribute_column,
            plan.value_column,
            plan.attributes,
        )
    if isinstance(plan, Vectorized):
        return Vectorized(children[0])
    return plan
