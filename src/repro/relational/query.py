"""Fluent query builder and a plan optimizer.

The optimizer applies safe rewrites only: select merge/pushdown, projection
pushdown with dead-column pruning, fusing ``Limit`` over ``Sort`` into a
heap top-k, and — when a database handle is supplied — lowering equality
selections over base tables onto :class:`~repro.relational.algebra.IndexLookup`
backed by the table's hash indexes.  Correctness is checked by property
tests asserting optimized, naive-streaming, and interpreted executions
agree on every database they run against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr.analysis import referenced_identifiers
from repro.expr.ast import BinaryOp, Expression, Identifier, Literal, conjunction
from repro.expr.parser import parse
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Coerce,
    Compute,
    Distinct,
    ExecContext,
    IndexLookup,
    Join,
    Limit,
    Pivot,
    Plan,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    TopK,
    Union,
    Unpivot,
)
from repro.relational.database import Database

Row = dict[str, object]


@dataclass(frozen=True)
class Query:
    """Immutable fluent wrapper around a logical plan.

    >>> Query.table("visits").where("age >= 50").select("patient_id")
    """

    plan: Plan

    @classmethod
    def table(cls, name: str) -> "Query":
        return cls(Scan(name))

    def where(self, condition: str | Expression) -> "Query":
        expr = parse(condition) if isinstance(condition, str) else condition
        return Query(Select(self.plan, expr))

    def select(self, *columns: str) -> "Query":
        return Query(Project(self.plan, tuple(columns)))

    def compute(self, **derivations: str | Expression) -> "Query":
        parsed = tuple(
            (name, parse(value) if isinstance(value, str) else value)
            for name, value in derivations.items()
        )
        return Query(Compute(self.plan, parsed))

    def rename(self, **mapping: str) -> "Query":
        """``rename(old=new)`` pairs."""
        return Query(Rename(self.plan, tuple(mapping.items())))

    def join(
        self,
        other: "Query | Plan",
        on: list[tuple[str, str]] | tuple[tuple[str, str], ...],
        how: str = "inner",
    ) -> "Query":
        right = other.plan if isinstance(other, Query) else other
        return Query(Join(self.plan, right, tuple(on), how))

    def union(self, *others: "Query | Plan") -> "Query":
        plans = [self.plan]
        plans.extend(o.plan if isinstance(o, Query) else o for o in others)
        return Query(Union(tuple(plans)))

    def distinct(self) -> "Query":
        return Query(Distinct(self.plan))

    def order_by(self, *keys: str) -> "Query":
        """Keys like ``"age"`` (ascending) or ``"-age"`` (descending)."""
        parsed = tuple(
            (key[1:], False) if key.startswith("-") else (key, True) for key in keys
        )
        return Query(Sort(self.plan, parsed))

    def limit(self, count: int) -> "Query":
        return Query(Limit(self.plan, count))

    def aggregate(
        self, group_by: list[str] | tuple[str, ...], *specs: AggregateSpec
    ) -> "Query":
        return Query(Aggregate(self.plan, tuple(group_by), tuple(specs)))

    def count(self, db: Database) -> int:
        """Execute and return the row count."""
        return len(self.execute(db))

    def execute(self, db: Database, optimized: bool = True) -> list[Row]:
        plan = optimize(self.plan, db) if optimized else self.plan
        return plan.execute(db)


def optimize(plan: Plan, db: Database | None = None) -> Plan:
    """Apply safe rewrites; ``db`` unlocks schema- and index-aware rules.

    Without a database the optimizer falls back to statically derivable
    column sets, as before.  With one (``Query.execute`` always passes it),
    it can additionally lower equality filters onto hash indexes and prune
    dead columns through joins and unions.  The optimizer is deliberately
    conservative — correctness is checked by property tests asserting
    optimized and naive plans agree on every database they run against.
    """
    return _rewrite(plan, _OptContext(db))


class _OptContext:
    """Column knowledge for the rewrite pass, memoized across the tree."""

    __slots__ = ("db", "_exec")

    def __init__(self, db: Database | None):
        self.db = db
        self._exec = ExecContext(db) if db is not None else None

    def columns_of(self, plan: Plan) -> tuple[str, ...] | None:
        """Ordered output columns when derivable, else None."""
        if self._exec is not None:
            try:
                return self._exec.columns(plan)
            except Exception:
                return None
        return None

    def column_set(self, plan: Plan) -> set[str] | None:
        """Output column set when derivable (statically or via the db)."""
        ordered = self.columns_of(plan)
        if ordered is not None:
            return set(ordered)
        return _static_columns(plan)


def _rewrite(plan: Plan, ctx: _OptContext) -> Plan:
    # Bottom-up.
    children = tuple(_rewrite(child, ctx) for child in plan.children())
    plan = _with_children(plan, children)

    if isinstance(plan, Select):
        return _rewrite_select(plan, ctx)
    if isinstance(plan, Project):
        return _rewrite_project(plan, ctx)
    if isinstance(plan, Limit) and isinstance(plan.child, Sort) and plan.count >= 0:
        return TopK(plan.child.child, plan.child.keys, plan.count)
    return plan


def _rewrite_select(plan: Select, ctx: _OptContext) -> Plan:
    child = plan.child
    # Merge consecutive selects into one conjunction.
    if isinstance(child, Select):
        merged = BinaryOp("AND", child.predicate, plan.predicate)
        return _rewrite(Select(child.child, merged), ctx)
    # Push select below union (always safe).
    if isinstance(child, Union):
        pushed = tuple(
            _rewrite(Select(branch, plan.predicate), ctx) for branch in child.inputs
        )
        return Union(pushed)
    # Push select into a join side when its columns come from one side.
    if isinstance(child, Join) and child.how == "inner":
        return _push_into_join(plan.predicate, child, ctx)
    # Lower equality filters over a base table onto a hash index.
    if isinstance(child, Scan):
        lowered = _lower_index_lookup(plan.predicate, child, ctx)
        if lowered is not None:
            return lowered
    return plan


def _push_into_join(predicate: Expression, join: Join, ctx: _OptContext) -> Plan:
    names = referenced_identifiers(predicate)
    left_cols = ctx.column_set(join.left)
    right_cols = ctx.column_set(join.right)
    if left_cols is not None and names <= left_cols:
        return Join(
            _rewrite(Select(join.left, predicate), ctx), join.right, join.on, join.how
        )
    if right_cols is not None and names <= right_cols:
        return Join(
            join.left, _rewrite(Select(join.right, predicate), ctx), join.on, join.how
        )
    return Select(join, predicate)


def _lower_index_lookup(
    predicate: Expression, scan: Scan, ctx: _OptContext
) -> Plan | None:
    """``Select(Scan, col = literal AND …)`` → IndexLookup (+ residual Select).

    Only fires when the database is known, the table exists, and a hash
    index covers at least the equality columns — otherwise the plan is left
    alone so execution cost and error behaviour stay exactly as written.
    """
    if ctx.db is None or not ctx.db.has_table(scan.table):
        return None
    table = ctx.db.table(scan.table)
    columns = set(table.schema.column_names)
    eq_items: list[tuple[str, object]] = []
    residual: list[Expression] = []
    for conjunct in _conjuncts(predicate):
        item = _equality_item(conjunct, columns)
        if item is not None:
            eq_items.append(item)
        else:
            residual.append(conjunct)
    if not eq_items:
        return None
    if table.matching_index([column for column, _ in eq_items]) is None:
        return None
    lookup = IndexLookup(scan.table, tuple(eq_items))
    if residual:
        return Select(lookup, conjunction(residual))
    return lookup


def _conjuncts(expr: Expression):
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _equality_item(
    conjunct: Expression, columns: set[str]
) -> tuple[str, object] | None:
    """``col = literal`` (either side) over a plain existing column, or None."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    for ident, literal in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        if not (isinstance(ident, Identifier) and isinstance(literal, Literal)):
            continue
        if len(ident.path) != 1 or ident.name not in columns:
            continue
        value = literal.value
        # NULL never matches (stays in the residual predicate and filters
        # everything); unhashable values cannot probe a hash bucket.
        if value is None:
            continue
        try:
            hash(value)
        except TypeError:
            continue
        return (ident.name, value)
    return None


def _rewrite_project(plan: Project, ctx: _OptContext) -> Plan:
    child = plan.child
    col_set = set(plan.columns)

    # Merge stacked projections (only when the outer survives the inner's
    # validity check, so error behaviour is preserved).
    if isinstance(child, Project) and col_set <= set(child.columns):
        return _rewrite_project(Project(child.child, plan.columns), ctx)

    # Dead-derivation pruning: drop computed columns the projection discards
    # (derivations are independent — each evaluates against the child row).
    if isinstance(child, Compute):
        kept = tuple(d for d in child.derivations if d[0] in col_set)
        if len(kept) < len(child.derivations):
            inner: Plan = Compute(child.child, kept) if kept else child.child
            return _rewrite_project(Project(inner, plan.columns), ctx)

    # Push below a Sort when every sort key survives the projection: stable
    # sort of projected rows by the same keys yields the same order.
    if isinstance(child, Sort) and {c for c, _ in child.keys} <= col_set:
        return Sort(
            _rewrite_project(Project(child.child, plan.columns), ctx), child.keys
        )

    # Prune dead columns into both sides of a join.
    if isinstance(child, Join):
        pushed = _push_project_into_join(plan, child, ctx)
        if pushed is not None:
            return pushed

    # Push into every union branch (when branches verifiably agree, so the
    # union's column-mismatch check is not silently skipped).
    if isinstance(child, Union) and child.inputs:
        branch_cols = [ctx.column_set(branch) for branch in child.inputs]
        if all(columns is not None for columns in branch_cols):
            agreed = {frozenset(columns) for columns in branch_cols}  # type: ignore[arg-type]
            if len(agreed) == 1:
                full = next(iter(agreed))
                if col_set <= full and col_set != full:
                    pushed_branches = tuple(
                        _rewrite_project(Project(branch, plan.columns), ctx)
                        for branch in child.inputs
                    )
                    return Union(pushed_branches)

    return plan


def _push_project_into_join(
    project: Project, join: Join, ctx: _OptContext
) -> Plan | None:
    left_cols = ctx.columns_of(join.left)
    right_cols = ctx.columns_of(join.right)
    if left_cols is None or right_cols is None:
        return None
    left_keys = {lk for lk, _ in join.on}
    right_keys = {rk for _, rk in join.on}
    # Keep the original plan when the join would refuse a column collision.
    if (set(left_cols) & set(right_cols)) - right_keys:
        return None
    needed = set(project.columns)
    left_keep = tuple(c for c in left_cols if c in needed or c in left_keys)
    right_keep = tuple(c for c in right_cols if c in needed or c in right_keys)
    if len(left_keep) == len(left_cols) and len(right_keep) == len(right_cols):
        return None  # nothing to prune
    produced = set(left_keep) | (set(right_keep) - right_keys)
    if not needed <= produced:
        return None  # let the original projection raise its unknown-column error
    new_left = (
        _rewrite_project(Project(join.left, left_keep), ctx)
        if len(left_keep) < len(left_cols)
        else join.left
    )
    new_right = (
        _rewrite_project(Project(join.right, right_keep), ctx)
        if len(right_keep) < len(right_cols)
        else join.right
    )
    return Project(Join(new_left, new_right, join.on, join.how), project.columns)


def _static_columns(plan: Plan) -> set[str] | None:
    """Output columns when derivable without a database, else None."""
    if isinstance(plan, Project):
        return set(plan.columns)
    if isinstance(plan, Rename):
        base = _static_columns(plan.child)
        if base is None:
            return None
        mapping = dict(plan.mapping)
        return {mapping.get(column, column) for column in base}
    if isinstance(plan, (Select, Distinct, Sort, Limit, TopK)):
        return _static_columns(plan.child)
    if isinstance(plan, Compute):
        base = _static_columns(plan.child)
        if base is None:
            return None
        return base | {name for name, _ in plan.derivations}
    return None


def _with_children(plan: Plan, children: tuple[Plan, ...]) -> Plan:
    """Rebuild ``plan`` with replacement children (dataclass-generic)."""
    if not children:
        return plan
    if isinstance(plan, Select):
        return Select(children[0], plan.predicate)
    if isinstance(plan, Project):
        return Project(children[0], plan.columns)
    if isinstance(plan, Compute):
        return Compute(children[0], plan.derivations)
    if isinstance(plan, Rename):
        return Rename(children[0], plan.mapping)
    if isinstance(plan, Join):
        return Join(children[0], children[1], plan.on, plan.how)
    if isinstance(plan, Union):
        return Union(children)
    if isinstance(plan, Distinct):
        return Distinct(children[0])
    if isinstance(plan, Sort):
        return Sort(children[0], plan.keys)
    if isinstance(plan, TopK):
        return TopK(children[0], plan.keys, plan.count)
    if isinstance(plan, Limit):
        return Limit(children[0], plan.count)
    if isinstance(plan, Aggregate):
        return Aggregate(children[0], plan.group_by, plan.aggregates)
    if isinstance(plan, Coerce):
        return Coerce(children[0], plan.column_types)
    if isinstance(plan, Unpivot):
        return Unpivot(
            children[0],
            plan.id_columns,
            plan.value_columns,
            plan.attribute_column,
            plan.value_column,
        )
    if isinstance(plan, Pivot):
        return Pivot(
            children[0],
            plan.key_columns,
            plan.attribute_column,
            plan.value_column,
            plan.attributes,
        )
    return plan
