"""Fluent query builder and a light plan optimizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr.analysis import referenced_identifiers
from repro.expr.ast import BinaryOp, Expression
from repro.expr.parser import parse
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Compute,
    Distinct,
    Join,
    Limit,
    Plan,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    Union,
)
from repro.relational.database import Database

Row = dict[str, object]


@dataclass(frozen=True)
class Query:
    """Immutable fluent wrapper around a logical plan.

    >>> Query.table("visits").where("age >= 50").select("patient_id")
    """

    plan: Plan

    @classmethod
    def table(cls, name: str) -> "Query":
        return cls(Scan(name))

    def where(self, condition: str | Expression) -> "Query":
        expr = parse(condition) if isinstance(condition, str) else condition
        return Query(Select(self.plan, expr))

    def select(self, *columns: str) -> "Query":
        return Query(Project(self.plan, tuple(columns)))

    def compute(self, **derivations: str | Expression) -> "Query":
        parsed = tuple(
            (name, parse(value) if isinstance(value, str) else value)
            for name, value in derivations.items()
        )
        return Query(Compute(self.plan, parsed))

    def rename(self, **mapping: str) -> "Query":
        """``rename(old=new)`` pairs."""
        return Query(Rename(self.plan, tuple(mapping.items())))

    def join(
        self,
        other: "Query | Plan",
        on: list[tuple[str, str]] | tuple[tuple[str, str], ...],
        how: str = "inner",
    ) -> "Query":
        right = other.plan if isinstance(other, Query) else other
        return Query(Join(self.plan, right, tuple(on), how))

    def union(self, *others: "Query | Plan") -> "Query":
        plans = [self.plan]
        plans.extend(o.plan if isinstance(o, Query) else o for o in others)
        return Query(Union(tuple(plans)))

    def distinct(self) -> "Query":
        return Query(Distinct(self.plan))

    def order_by(self, *keys: str) -> "Query":
        """Keys like ``"age"`` (ascending) or ``"-age"`` (descending)."""
        parsed = tuple(
            (key[1:], False) if key.startswith("-") else (key, True) for key in keys
        )
        return Query(Sort(self.plan, parsed))

    def limit(self, count: int) -> "Query":
        return Query(Limit(self.plan, count))

    def aggregate(
        self, group_by: list[str] | tuple[str, ...], *specs: AggregateSpec
    ) -> "Query":
        return Query(Aggregate(self.plan, tuple(group_by), tuple(specs)))

    def count(self, db: Database) -> int:
        """Execute and return the row count."""
        return len(self.execute(db))

    def execute(self, db: Database, optimized: bool = True) -> list[Row]:
        plan = optimize(self.plan) if optimized else self.plan
        return plan.execute(db)


def optimize(plan: Plan) -> Plan:
    """Apply safe rewrites: select-merge, select pushdown into joins/unions.

    The optimizer is deliberately conservative — correctness is checked by
    property tests asserting optimized and naive plans agree on every
    database they run against.
    """
    plan = _rewrite(plan)
    return plan


def _rewrite(plan: Plan) -> Plan:
    # Bottom-up.
    children = tuple(_rewrite(child) for child in plan.children())
    plan = _with_children(plan, children)

    if isinstance(plan, Select):
        child = plan.child
        # Merge consecutive selects into one conjunction.
        if isinstance(child, Select):
            merged = BinaryOp("AND", child.predicate, plan.predicate)
            return _rewrite(Select(child.child, merged))
        # Push select below union (always safe).
        if isinstance(child, Union):
            pushed = tuple(
                _rewrite(Select(branch, plan.predicate)) for branch in child.inputs
            )
            return Union(pushed)
        # Push select into a join side when its columns come from one side.
        if isinstance(child, Join) and child.how == "inner":
            return _push_into_join(plan.predicate, child)
    return plan


def _push_into_join(predicate: Expression, join: Join) -> Plan:
    names = referenced_identifiers(predicate)
    # Column provenance is only known relative to a database, which the
    # optimizer does not have; use static column sets where derivable.
    left_cols = _static_columns(join.left)
    right_cols = _static_columns(join.right)
    if left_cols is not None and names <= left_cols:
        return Join(Select(join.left, predicate), join.right, join.on, join.how)
    if right_cols is not None and names <= right_cols:
        return Join(join.left, Select(join.right, predicate), join.on, join.how)
    return Select(join, predicate)


def _static_columns(plan: Plan) -> set[str] | None:
    """Output columns when derivable without a database, else None."""
    if isinstance(plan, Project):
        return set(plan.columns)
    if isinstance(plan, Rename):
        base = _static_columns(plan.child)
        if base is None:
            return None
        mapping = dict(plan.mapping)
        return {mapping.get(column, column) for column in base}
    if isinstance(plan, (Select, Distinct, Sort, Limit)):
        return _static_columns(plan.child)
    if isinstance(plan, Compute):
        base = _static_columns(plan.child)
        if base is None:
            return None
        return base | {name for name, _ in plan.derivations}
    return None


def _with_children(plan: Plan, children: tuple[Plan, ...]) -> Plan:
    """Rebuild ``plan`` with replacement children (dataclass-generic)."""
    if not children:
        return plan
    if isinstance(plan, Select):
        return Select(children[0], plan.predicate)
    if isinstance(plan, Project):
        return Project(children[0], plan.columns)
    if isinstance(plan, Compute):
        return Compute(children[0], plan.derivations)
    if isinstance(plan, Rename):
        return Rename(children[0], plan.mapping)
    if isinstance(plan, Join):
        return Join(children[0], children[1], plan.on, plan.how)
    if isinstance(plan, Union):
        return Union(children)
    if isinstance(plan, Distinct):
        return Distinct(children[0])
    if isinstance(plan, Sort):
        return Sort(children[0], plan.keys)
    if isinstance(plan, Limit):
        return Limit(children[0], plan.count)
    if isinstance(plan, Aggregate):
        return Aggregate(children[0], plan.group_by, plan.aggregates)
    # Unpivot/Pivot/Coerce and any future single-child nodes.
    from repro.relational.algebra import Coerce, Pivot, Unpivot

    if isinstance(plan, Coerce):
        return Coerce(children[0], plan.column_types)

    if isinstance(plan, Unpivot):
        return Unpivot(
            children[0],
            plan.id_columns,
            plan.value_columns,
            plan.attribute_column,
            plan.value_column,
        )
    if isinstance(plan, Pivot):
        return Pivot(
            children[0],
            plan.key_columns,
            plan.attribute_column,
            plan.value_column,
            plan.attributes,
        )
    return plan
