"""Table schemas: columns, types, nullability, primary keys."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.relational.types import DataType


@dataclass(frozen=True)
class Column:
    """One typed column."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    def __str__(self) -> str:
        suffix = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.dtype.value.upper()}{suffix}"


@dataclass(frozen=True)
class TableSchema:
    """Ordered columns plus an optional primary key."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        names = [column.name for column in self.columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names in {self.name}: {sorted(duplicates)}")
        for key_column in self.primary_key:
            if key_column not in names:
                raise SchemaError(
                    f"primary key column {key_column!r} not in table {self.name}"
                )

    @classmethod
    def build(
        cls,
        name: str,
        columns: list[Column] | list[tuple[str, DataType]],
        primary_key: tuple[str, ...] | list[str] = (),
    ) -> "TableSchema":
        """Convenience constructor accepting ``(name, dtype)`` pairs."""
        normalized: list[Column] = []
        for item in columns:
            if isinstance(item, Column):
                normalized.append(item)
            else:
                col_name, dtype = item
                normalized.append(Column(col_name, dtype))
        return cls(name, tuple(normalized), tuple(primary_key))

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for candidate in self.columns:
            if candidate.name == name:
                return candidate
        raise SchemaError(f"table {self.name} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def with_columns(self, extra: list[Column]) -> "TableSchema":
        """A copy of this schema with ``extra`` columns appended."""
        return TableSchema(self.name, self.columns + tuple(extra), self.primary_key)

    def renamed(self, new_name: str) -> "TableSchema":
        """A copy of this schema under a different table name."""
        return TableSchema(new_name, self.columns, self.primary_key)

    def __str__(self) -> str:
        cols = ", ".join(str(column) for column in self.columns)
        pk = f", PRIMARY KEY ({', '.join(self.primary_key)})" if self.primary_key else ""
        return f"{self.name}({cols}{pk})"
