"""Table schemas: columns, types, nullability, primary keys, partitioning."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from datetime import date

from repro.errors import SchemaError
from repro.relational.types import DataType

# Unforgeable tag keeping BOOLEAN keys out of their hash-equal integers'
# partitions — the same segregation rule as ``canonical_key`` (which lives
# above this module in the import graph, so the tag is duplicated here).
_BOOL_TAG = object()


def _partition_key(value: object) -> object:
    """A hashable stand-in for ``value`` in partition assignment.

    Must satisfy one direction only: values that are SQL-equal map to the
    same key (so pruning by a literal can never miss a matching row).
    Collisions the other way — SQL-distinct values sharing a partition —
    are harmless, they just scan a superset.
    """
    if isinstance(value, bool):
        return (_BOOL_TAG, value)
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


@dataclass(frozen=True)
class HashPartitioning:
    """Hash-partition a table by one column into a fixed partition count.

    NULL keys all land in partition 0 (so ``IS NULL`` can prune to one
    partition); everything else buckets on ``hash(_partition_key(value))``.
    Hash order is meaningless, so range predicates never prune here.
    """

    column: str
    partitions: int

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise SchemaError("hash partitioning needs at least one partition")

    @property
    def partition_count(self) -> int:
        return self.partitions

    @property
    def null_partition(self) -> int:
        return 0

    def partition_of(self, value: object) -> int:
        if value is None:
            return self.null_partition
        return hash(_partition_key(value)) % self.partitions

    def partitions_for_compare(self, op: str, value: object) -> frozenset[int] | None:
        """Partitions possibly satisfying ``column <op> value``; None = all."""
        return None  # hash scatters the ordering pruning would need

    def describe(self) -> str:
        return f"hash({self.column}) % {self.partitions}"


@dataclass(frozen=True)
class RangePartitioning:
    """Range-partition a table by one column over sorted boundary literals.

    ``boundaries`` ``(b1, …, bk)`` define ``k + 1`` partitions: partition 0
    holds values below ``b1`` (and all NULLs, which sort first), partition
    ``i`` holds ``[b_i, b_{i+1})``, and the last holds ``[b_k, ∞)``.
    Boundaries must be mutually comparable and strictly increasing.
    """

    column: str
    boundaries: tuple

    def __post_init__(self) -> None:
        if not isinstance(self.boundaries, tuple):
            object.__setattr__(self, "boundaries", tuple(self.boundaries))
        if not self.boundaries:
            raise SchemaError("range partitioning needs at least one boundary")
        try:
            increasing = all(
                a < b for a, b in zip(self.boundaries, self.boundaries[1:])
            )
        except TypeError as exc:
            raise SchemaError(f"range boundaries are not comparable: {exc}") from exc
        if not increasing:
            raise SchemaError("range boundaries must be strictly increasing")

    @property
    def partition_count(self) -> int:
        return len(self.boundaries) + 1

    @property
    def null_partition(self) -> int:
        return 0

    def partition_of(self, value: object) -> int:
        if value is None:
            return self.null_partition
        try:
            return bisect_right(self.boundaries, value)
        except TypeError:
            # Values incomparable with the boundaries (mixed-type columns)
            # collapse into partition 0; pruning stays conservative there.
            return 0

    def partitions_for_compare(self, op: str, value: object) -> frozenset[int] | None:
        """Partitions possibly satisfying ``column <op> value``; None = all.

        Comparisons against a value incomparable with the boundaries keep
        every partition — a NULL-yielding or raising comparison must not
        prune rows the residual predicate is entitled to see.
        """
        if value is None:
            return frozenset()  # col <op> NULL is NULL for every row
        try:
            pivot = bisect_right(self.boundaries, value)
        except TypeError:
            return None
        last = len(self.boundaries)
        if op in (">", ">="):
            return frozenset(range(pivot, last + 1))
        if op == "<=":
            # Partition `pivot` starts at a boundary <= value, so it can
            # still hold smaller values; everything above it cannot.
            return frozenset(range(0, pivot + 1))
        if op == "<":
            # Strict: a value sitting exactly on a boundary excludes the
            # partition that starts there (bisect_left lands below it).
            return frozenset(range(0, bisect_left(self.boundaries, value) + 1))
        return None

    def describe(self) -> str:
        return f"range({self.column}: {len(self.boundaries)} boundaries)"


#: Either concrete scheme; tables accept one or none.
PartitionScheme = HashPartitioning | RangePartitioning


def partitioning_to_doc(scheme: PartitionScheme | None) -> dict | None:
    """A JSON-able document for a partition scheme (None stays None).

    Shared by the legacy JSON snapshot, the columnar snapshot files, and
    the WAL's ``repartition`` records, so all three persistence paths
    agree on one wire format.  Date boundaries serialize in ISO form.
    """
    if scheme is None:
        return None
    if isinstance(scheme, HashPartitioning):
        return {
            "kind": "hash",
            "column": scheme.column,
            "partitions": scheme.partitions,
        }
    return {
        "kind": "range",
        "column": scheme.column,
        "boundaries": [
            boundary.isoformat() if isinstance(boundary, date) else boundary
            for boundary in scheme.boundaries
        ],
    }


def partitioning_from_doc(
    doc: dict | None, columns: tuple["Column", ...]
) -> PartitionScheme | None:
    """Rebuild a partition scheme from :func:`partitioning_to_doc` output.

    ``columns`` supply the partition column's dtype so range boundaries
    stored in ISO form revive as dates.
    """
    if doc is None:
        return None
    kind = doc.get("kind")
    if kind == "hash":
        return HashPartitioning(doc["column"], int(doc["partitions"]))
    if kind == "range":
        dtype = next((c.dtype for c in columns if c.name == doc["column"]), None)
        boundaries = tuple(
            dtype.coerce(b) if dtype is not None else b for b in doc["boundaries"]
        )
        return RangePartitioning(doc["column"], boundaries)
    raise SchemaError(f"unsupported partitioning kind {kind!r}")


@dataclass(frozen=True)
class Column:
    """One typed column."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    def __str__(self) -> str:
        suffix = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.dtype.value.upper()}{suffix}"


@dataclass(frozen=True)
class TableSchema:
    """Ordered columns plus an optional primary key and partition scheme."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = field(default=())
    partitioning: PartitionScheme | None = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        names = [column.name for column in self.columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names in {self.name}: {sorted(duplicates)}")
        for key_column in self.primary_key:
            if key_column not in names:
                raise SchemaError(
                    f"primary key column {key_column!r} not in table {self.name}"
                )
        if self.partitioning is not None and self.partitioning.column not in names:
            raise SchemaError(
                f"partition column {self.partitioning.column!r} not in table {self.name}"
            )

    @classmethod
    def build(
        cls,
        name: str,
        columns: list[Column] | list[tuple[str, DataType]],
        primary_key: tuple[str, ...] | list[str] = (),
        partition_by: PartitionScheme | None = None,
    ) -> "TableSchema":
        """Convenience constructor accepting ``(name, dtype)`` pairs."""
        normalized: list[Column] = []
        for item in columns:
            if isinstance(item, Column):
                normalized.append(item)
            else:
                col_name, dtype = item
                normalized.append(Column(col_name, dtype))
        return cls(name, tuple(normalized), tuple(primary_key), partition_by)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for candidate in self.columns:
            if candidate.name == name:
                return candidate
        raise SchemaError(f"table {self.name} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def with_columns(self, extra: list[Column]) -> "TableSchema":
        """A copy of this schema with ``extra`` columns appended."""
        return TableSchema(
            self.name, self.columns + tuple(extra), self.primary_key, self.partitioning
        )

    def renamed(self, new_name: str) -> "TableSchema":
        """A copy of this schema under a different table name."""
        return TableSchema(new_name, self.columns, self.primary_key, self.partitioning)

    def repartitioned(self, partitioning: PartitionScheme | None) -> "TableSchema":
        """A copy of this schema under a different partition scheme."""
        return TableSchema(self.name, self.columns, self.primary_key, partitioning)

    def __str__(self) -> str:
        cols = ", ".join(str(column) for column in self.columns)
        pk = f", PRIMARY KEY ({', '.join(self.primary_key)})" if self.primary_key else ""
        part = (
            f" PARTITION BY {self.partitioning.describe()}" if self.partitioning else ""
        )
        return f"{self.name}({cols}{pk}){part}"


def schema_to_doc(schema: TableSchema) -> dict:
    """A JSON-able document for a whole table schema (one wire format for
    the JSON snapshot, the columnar snapshot files, and WAL DDL records)."""
    doc: dict = {
        "name": schema.name,
        "columns": [
            {
                "name": column.name,
                "type": column.dtype.value,
                "nullable": column.nullable,
            }
            for column in schema.columns
        ],
        "primary_key": list(schema.primary_key),
    }
    partitioning = partitioning_to_doc(schema.partitioning)
    if partitioning is not None:
        doc["partitioning"] = partitioning
    return doc


def schema_from_doc(doc: dict) -> TableSchema:
    """Rebuild a table schema from :func:`schema_to_doc` output."""
    columns = tuple(
        Column(c["name"], DataType(c["type"]), c.get("nullable", True))
        for c in doc["columns"]
    )
    return TableSchema(
        doc["name"],
        columns,
        tuple(doc.get("primary_key", ())),
        partitioning_from_doc(doc.get("partitioning"), columns),
    )
