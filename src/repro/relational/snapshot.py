"""Database snapshots: JSON save/load.

The warehouse in the paper's architecture is a long-lived accumulation
point; contributor extracts arrive "periodically".  Snapshots let a
Database round-trip to a JSON document (schemas + rows, with dates in ISO
form) so warehouses and temporary databases can persist between sessions
and examples can ship fixture data.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path

from repro.errors import RelationalError
from repro.relational.database import Database
from repro.relational.schema import schema_from_doc, schema_to_doc

FORMAT_VERSION = 1


def database_version(db: Database) -> int:
    """Monotone data version of a whole database.

    The sum of per-table versions, which only grows while tables are
    mutated in place.  Dropping a table makes the sum regress; consumers
    (incremental materialization) treat any unexpected value as broken
    lineage and fall back to a full rebuild, so regression is safe.
    """
    return sum(table.version for table in db)


def database_to_dict(db: Database) -> dict:
    """The snapshot document for ``db``."""
    tables = []
    for name in db.table_names():
        table = db.table(name)
        schema = table.schema
        doc = schema_to_doc(schema)
        doc["version"] = table.version
        doc["rows"] = [
            [_encode(row[column]) for column in schema.column_names]
            for row in table.rows()
        ]
        tables.append(doc)
    return {"format": FORMAT_VERSION, "database": db.name, "tables": tables}


def database_from_dict(document: dict) -> Database:
    """Rebuild a Database from a snapshot document."""
    if document.get("format") != FORMAT_VERSION:
        raise RelationalError(
            f"unsupported snapshot format {document.get('format')!r}"
        )
    db = Database(document.get("database", "restored"))
    for table_doc in document.get("tables", []):
        schema = schema_from_doc(table_doc)
        table = db.create_table(schema)
        names = schema.column_names
        for values in table_doc.get("rows", []):
            table.insert(dict(zip(names, values)))
        # Older snapshots carry no version; re-inserting already advanced the
        # counter once per row, and restore_version never rewinds it.
        table.restore_version(int(table_doc.get("version", 0)))
    return db


def save_database(db: Database, path: str | Path) -> None:
    """Write a snapshot to ``path``."""
    Path(path).write_text(json.dumps(database_to_dict(db), indent=1))


def load_database(path: str | Path) -> Database:
    """Read a snapshot from ``path``."""
    try:
        document = json.loads(Path(path).read_text())
    except (ValueError, OSError) as exc:
        raise RelationalError(f"cannot load snapshot {path}: {exc}") from exc
    return database_from_dict(document)


def _encode(value: object) -> object:
    if isinstance(value, date):
        return value.isoformat()
    return value
