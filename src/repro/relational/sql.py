"""Render logical plans to SQL text.

The generated ETL workflows are documented as SQL so analysts (and this
reproduction's tests) can inspect exactly what a compiled study does —
mirroring the paper's claim that g-tree queries translate "into predefined
SQL queries and ETL components".  The renderer targets a generic SQL
dialect; it is documentation-quality output, not re-parsed by the engine.
"""

from __future__ import annotations

from repro.expr.ast import Expression
from repro.relational.algebra import (
    Aggregate,
    Coerce,
    Compute,
    Distinct,
    IndexLookup,
    Join,
    Limit,
    Pivot,
    Plan,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    TopK,
    Union,
    Unpivot,
    Values,
)


def to_sql(plan: Plan) -> str:
    """Render ``plan`` as a SQL SELECT statement."""
    return _render(plan, depth=0)


def _indent(depth: int) -> str:
    return "  " * depth


def _render(plan: Plan, depth: int) -> str:
    pad = _indent(depth)
    if isinstance(plan, Scan):
        return f"{pad}SELECT * FROM {plan.table}"
    if isinstance(plan, IndexLookup):
        conditions = " AND ".join(
            f"{column} = {_sql_literal(value)}" for column, value in plan.items
        )
        return f"{pad}SELECT * FROM {plan.table} WHERE {conditions}"
    if isinstance(plan, Values):
        rows = ", ".join(
            "(" + ", ".join(_sql_literal(v) for v in row) + ")" for row in plan.rows
        )
        columns = ", ".join(plan.columns)
        return f"{pad}SELECT * FROM (VALUES {rows}) AS v({columns})"
    if isinstance(plan, Select):
        return (
            f"{pad}SELECT * FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t\n"
            f"{pad}WHERE {_sql_expr(plan.predicate)}"
        )
    if isinstance(plan, Project):
        columns = ", ".join(plan.columns)
        return f"{pad}SELECT {columns} FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t"
    if isinstance(plan, Compute):
        derived = ", ".join(f"{_sql_expr(e)} AS {name}" for name, e in plan.derivations)
        return f"{pad}SELECT *, {derived} FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t"
    if isinstance(plan, Rename):
        renames = ", ".join(f"{old} AS {new}" for old, new in plan.mapping)
        return f"{pad}SELECT {renames or '*'} FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t"
    if isinstance(plan, Join):
        conditions = " AND ".join(f"l.{lk} = r.{rk}" for lk, rk in plan.on)
        how = "INNER JOIN" if plan.how == "inner" else "LEFT OUTER JOIN"
        return (
            f"{pad}SELECT * FROM (\n{_render(plan.left, depth + 1)}\n{pad}) AS l\n"
            f"{pad}{how} (\n{_render(plan.right, depth + 1)}\n{pad}) AS r\n"
            f"{pad}ON {conditions}"
        )
    if isinstance(plan, Union):
        parts = [f"({_render(p, depth + 1).lstrip()})" for p in plan.inputs]
        joiner = f"\n{pad}UNION ALL\n{pad}"
        return f"{pad}" + joiner.join(parts)
    if isinstance(plan, Distinct):
        return f"{pad}SELECT DISTINCT * FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t"
    if isinstance(plan, Sort):
        keys = ", ".join(f"{c} {'ASC' if asc else 'DESC'}" for c, asc in plan.keys)
        return f"{pad}SELECT * FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t ORDER BY {keys}"
    if isinstance(plan, Limit):
        return f"{pad}SELECT * FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t LIMIT {plan.count}"
    if isinstance(plan, TopK):
        keys = ", ".join(f"{c} {'ASC' if asc else 'DESC'}" for c, asc in plan.keys)
        return (
            f"{pad}SELECT * FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t "
            f"ORDER BY {keys} LIMIT {plan.count}"
        )
    if isinstance(plan, Aggregate):
        aggs = ", ".join(
            f"{_sql_aggregate(s.func, s.column)} AS {s.alias}" for s in plan.aggregates
        )
        select_list = ", ".join(list(plan.group_by) + [aggs]) if aggs else ", ".join(plan.group_by)
        group = f" GROUP BY {', '.join(plan.group_by)}" if plan.group_by else ""
        return (
            f"{pad}SELECT {select_list} FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t{group}"
        )
    if isinstance(plan, Unpivot):
        # Generic SQL lacks a standard UNPIVOT; emit the union-of-projections form.
        parts = []
        for column in plan.value_columns:
            ids = ", ".join(plan.id_columns)
            prefix = f"{ids}, " if ids else ""
            parts.append(
                f"(SELECT {prefix}'{column}' AS {plan.attribute_column}, "
                f"{column} AS {plan.value_column} FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t)"
            )
        joiner = f"\n{pad}UNION ALL\n{pad}"
        return f"{pad}" + joiner.join(parts)
    if isinstance(plan, Pivot):
        cases = ", ".join(
            f"MAX(CASE WHEN {plan.attribute_column} = '{a}' "
            f"THEN {plan.value_column} END) AS {a}"
            for a in plan.attributes
        )
        keys = ", ".join(plan.key_columns)
        return (
            f"{pad}SELECT {keys}, {cases} FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t\n"
            f"{pad}GROUP BY {keys}"
        )
    if isinstance(plan, Coerce):
        casts = ", ".join(
            f"CAST({column} AS {dtype.value.upper()}) AS {column}"
            for column, dtype in plan.column_types
        )
        return f"{pad}SELECT *, {casts} FROM (\n{_render(plan.child, depth + 1)}\n{pad}) AS t"
    raise TypeError(f"cannot render plan node {type(plan).__name__}")


def _sql_aggregate(func: str, column: str | None) -> str:
    if func.upper() == "COUNT" and column is None:
        return "COUNT(*)"
    if func.upper() == "COUNT_DISTINCT":
        return f"COUNT(DISTINCT {column})"
    return f"{func.upper()}({column})"


def _sql_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def _sql_expr(expr: Expression) -> str:
    """Expressions already render to SQL-compatible syntax."""
    return expr.to_source()
