"""Per-chunk zone maps, dictionary encoding, and Select conjunct analysis.

Statistics live *outside* the plan: they are derived from
``Table.column_snapshot()`` (or one partition's columns) and cached on the
table keyed by its data ``version`` via :meth:`Table.derived`, so every
mutation invalidates them through the machinery the plan cache already
trusts — no new invalidation channel.

Two artifact kinds are derived per column:

* **Zone maps** — one :class:`ChunkStats` per ``BATCH_SIZE`` chunk
  (min/max inside a type band, null count, chunk-constant flag).  A
  :class:`SelectAnalysis` probes them per conjunct to classify each chunk
  as *skip* (no row can match), *all-match* (the conjunct is true for
  every row, so it is dropped for that chunk), or *evaluate*.
* **Dictionaries** — lazy low-cardinality encodings for TEXT columns.  A
  :class:`Dictionary` maps distinct strings to dense integer codes; batch
  kernels compare/group/join on codes and decode only at output or
  fallback boundaries.  Encoding is *refused* (with a recorded reason)
  for short, mixed-type, or high-cardinality columns so the encoded path
  never has to approximate 3VL or ``canonical_key`` semantics.

Every skip/all-match rule here is justified against
:func:`repro.expr.evaluator._compare`'s exact semantics; where evaluation
could raise (cross-band ordering, date ordering) the probe answers
*evaluate* so error behaviour stays bit-identical to the interpreted
oracle.  The analyzers for equality/IN/range/IS NULL conjuncts are shared
with the optimizer's partition-prune rewrite (they moved here from
``query.py``).
"""

from __future__ import annotations

from datetime import date
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.expr.ast import BinaryOp, Expression, Identifier, InList, IsNull, Literal
from repro.relational.batch import BATCH_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.relational.table import Table

# -- global switch ------------------------------------------------------------

_ENABLED = True


def statistics_enabled() -> bool:
    """Whether scans attach zone maps / dictionaries (default on)."""
    return _ENABLED


def set_statistics_enabled(enabled: bool) -> bool:
    """Toggle statistics globally (benchmark baselines); returns the old value.

    Only scan-time *attachment* is gated — already-built caches stay on
    their tables and simply go unused while disabled.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


# -- conjunct decomposition (shared with the optimizer) -----------------------

#: ``literal <op> column`` reads as ``column <flipped op> literal``.
_FLIPPED_COMPARE = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _conjuncts(expr: Expression) -> Iterator[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _equality_item(
    conjunct: Expression, columns: set[str]
) -> tuple[str, object] | None:
    """``col = literal`` (either side) over a plain existing column, or None."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    for ident, literal in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        if not (isinstance(ident, Identifier) and isinstance(literal, Literal)):
            continue
        if len(ident.path) != 1 or ident.name not in columns:
            continue
        value = literal.value
        # NULL never matches (stays in the residual predicate and filters
        # everything); unhashable values cannot probe a hash bucket.
        if value is None:
            continue
        try:
            hash(value)
        except TypeError:
            continue
        return (ident.name, value)
    return None


def _in_list_item(
    conjunct: Expression, columns: set[str]
) -> tuple[str, tuple[object, ...]] | None:
    """``col IN (literals)`` over a plain existing column, or None.

    NULL items are dropped from the probe tuple: in filter context a row
    either matches a non-NULL item (kept either way) or yields NULL
    (dropped either way), so the kept set is unchanged.  Negated lists
    never lower — ``NOT IN`` with a NULL item filters everything.
    """
    if not (isinstance(conjunct, InList) and not conjunct.negated):
        return None
    ident = conjunct.operand
    if not (
        isinstance(ident, Identifier)
        and len(ident.path) == 1
        and ident.name in columns
    ):
        return None
    values: list[object] = []
    for item in conjunct.items:
        if not isinstance(item, Literal):
            return None
        value = item.value
        if value is None:
            continue
        try:
            hash(value)
        except TypeError:
            return None
        values.append(value)
    return (ident.name, tuple(values))


def _comparison_item(conjunct: Expression) -> tuple[str, str, object] | None:
    """``col <op> literal`` (either orientation) for =/!=/ranges, or None.

    Unlike :func:`_equality_item` this keeps NULL and unhashable literals —
    zone probes can reason about them (``col = NULL`` keeps no rows) and
    never hash anything.
    """
    if not isinstance(conjunct, BinaryOp):
        return None
    op = conjunct.op
    if op not in ("=", "!=") and op not in _FLIPPED_COMPARE:
        return None
    for ident, literal, oriented in (
        (conjunct.left, conjunct.right, op),
        (conjunct.right, conjunct.left, _FLIPPED_COMPARE.get(op, op)),
    ):
        if (
            isinstance(ident, Identifier)
            and len(ident.path) == 1
            and isinstance(literal, Literal)
        ):
            return (ident.name, oriented, literal.value)
    return None


# -- zone maps ----------------------------------------------------------------

#: Per-chunk probe verdicts.  ``SKIP``: no row in the chunk can pass the
#: conjunct (the chunk is never evaluated).  ``ALL``: every row passes
#: (the conjunct is dropped for the chunk).  ``EVAL``: undecided.
CHUNK_SKIP = "skip"
CHUNK_ALL = "all"
CHUNK_EVAL = "evaluate"


class ChunkStats:
    """Zone-map entry for one BATCH_SIZE chunk of one column.

    ``band`` names the homogeneous comparison class of the chunk's
    non-null values — ``"num"`` (int/float, no NaN), ``"str"``,
    ``"bool"``, ``"date"`` — or None when the chunk is mixed-type,
    NaN-poisoned, or all-NULL; ``lo``/``hi`` are only meaningful inside a
    band.  ``constant`` marks single-valued chunks (incl. all-NULL).
    """

    __slots__ = ("length", "null_count", "band", "lo", "hi", "constant")

    def __init__(
        self,
        length: int,
        null_count: int,
        band: str | None,
        lo: object,
        hi: object,
    ):
        self.length = length
        self.null_count = null_count
        self.band = band
        self.lo = lo
        self.hi = hi
        self.constant = null_count == length or (
            null_count == 0 and band is not None and lo == hi
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkStats(n={self.length}, nulls={self.null_count}, "
            f"band={self.band}, lo={self.lo!r}, hi={self.hi!r})"
        )


def _chunk_stats(chunk: Sequence[object]) -> ChunkStats:
    length = len(chunk)
    null_count = chunk.count(None) if isinstance(chunk, list) else sum(
        1 for v in chunk if v is None
    )
    if null_count == length:
        return ChunkStats(length, null_count, None, None, None)
    non_null = [v for v in chunk if v is not None] if null_count else chunk
    kinds = set(map(type, non_null))
    band: str | None
    if kinds <= {int, float}:  # type() is exact, so bool never lands here
        # NaN poisons min/max ordering; demote the chunk to unanalyzed.
        if float in kinds and any(v != v for v in non_null):
            band = None
        else:
            band = "num"
    elif kinds == {str}:
        band = "str"
    elif kinds == {bool}:
        band = "bool"
    elif kinds == {date}:
        band = "date"
    else:
        band = None
    if band is None:
        return ChunkStats(length, null_count, None, None, None)
    return ChunkStats(length, null_count, band, min(non_null), max(non_null))


def column_zone_map(
    table: "Table", column: str, partition: int | None = None
) -> list[ChunkStats] | None:
    """Per-chunk stats for one column (one partition's extent, or the whole
    table's), cached per data version.  None when the column does not exist
    — the caller must then evaluate, so ``UnknownIdentifierError`` parity
    is preserved.
    """
    if not table.schema.has_column(column):
        return None

    def build() -> list[ChunkStats]:
        if partition is None:
            values = table.column_snapshot()[column]
        else:
            values = table.partition_columns(partition)[column]
        return [
            _chunk_stats(values[start : start + BATCH_SIZE])
            for start in range(0, len(values), BATCH_SIZE)
        ]

    return table.derived(("zone", partition, column), build)


# -- per-conjunct probes ------------------------------------------------------

Probe = Callable[[ChunkStats], str]


def _value_band(value: object) -> str | None:
    kind = type(value)
    if kind is str:
        return "str"
    if kind is bool:
        return "bool"
    if kind is int:
        return "num"
    if kind is float:
        return None if value != value else "num"
    if kind is date:
        return "date"
    return None


def _equality_probe(value: object) -> Probe:
    band = None if value is None else _value_band(value)

    def probe(stats: ChunkStats) -> str:
        if stats.null_count == stats.length:
            return CHUNK_SKIP  # every comparison yields NULL
        if value is None:
            return CHUNK_SKIP  # col = NULL keeps no rows
        if stats.band is None or band is None:
            return CHUNK_EVAL
        if band != stats.band:
            return CHUNK_SKIP  # cross-band ``=`` is False for every row
        if value < stats.lo or value > stats.hi:  # type: ignore[operator]
            return CHUNK_SKIP
        if stats.null_count == 0 and stats.lo == stats.hi == value:
            return CHUNK_ALL
        return CHUNK_EVAL

    return probe


def _inequality_probe(value: object) -> Probe:
    band = None if value is None else _value_band(value)

    def probe(stats: ChunkStats) -> str:
        if stats.null_count == stats.length:
            return CHUNK_SKIP
        if value is None:
            return CHUNK_SKIP  # col != NULL keeps no rows either
        if stats.band is None or band is None:
            return CHUNK_EVAL
        if band != stats.band:
            # Cross-band ``!=`` is True for every non-null row.
            return CHUNK_ALL if stats.null_count == 0 else CHUNK_EVAL
        if stats.lo == stats.hi == value:
            return CHUNK_SKIP  # constant == literal: False or NULL everywhere
        if stats.null_count == 0 and (
            value < stats.lo or value > stats.hi  # type: ignore[operator]
        ):
            return CHUNK_ALL
        return CHUNK_EVAL

    return probe


def _range_probe(op: str, value: object) -> Probe:
    band = None if value is None else _value_band(value)

    def probe(stats: ChunkStats) -> str:
        if stats.null_count == stats.length:
            return CHUNK_SKIP
        if value is None:
            return CHUNK_SKIP  # ordering vs NULL yields NULL, never raises
        if stats.band is None or band is None:
            return CHUNK_EVAL
        if band != stats.band or band == "date":
            # Cross-band (and date) ordering raises in the evaluator; the
            # chunk must be evaluated so the error surfaces identically.
            return CHUNK_EVAL
        lo, hi, nulls = stats.lo, stats.hi, stats.null_count
        if op == "<":
            if not (lo < value):  # type: ignore[operator]
                return CHUNK_SKIP
            if nulls == 0 and hi < value:  # type: ignore[operator]
                return CHUNK_ALL
        elif op == "<=":
            if lo > value:  # type: ignore[operator]
                return CHUNK_SKIP
            if nulls == 0 and hi <= value:  # type: ignore[operator]
                return CHUNK_ALL
        elif op == ">":
            if not (hi > value):  # type: ignore[operator]
                return CHUNK_SKIP
            if nulls == 0 and lo > value:  # type: ignore[operator]
                return CHUNK_ALL
        else:  # ">="
            if hi < value:  # type: ignore[operator]
                return CHUNK_SKIP
            if nulls == 0 and lo >= value:  # type: ignore[operator]
                return CHUNK_ALL
        return CHUNK_EVAL

    return probe


def _in_probe(values: tuple[object, ...]) -> Probe:
    banded = [(_value_band(v), v) for v in values]

    def probe(stats: ChunkStats) -> str:
        if stats.null_count == stats.length:
            return CHUNK_SKIP
        if not values:
            return CHUNK_SKIP  # empty / all-NULL list keeps no rows
        if stats.band is None:
            return CHUNK_EVAL
        alive = False
        hit_constant = False
        for band, value in banded:
            if band is None:
                return CHUNK_EVAL
            if band != stats.band:
                continue  # cross-band ``=`` is False: item can never match
            if value < stats.lo or value > stats.hi:  # type: ignore[operator]
                continue
            alive = True
            if stats.null_count == 0 and stats.lo == stats.hi == value:
                hit_constant = True
        if not alive:
            return CHUNK_SKIP
        if hit_constant:
            return CHUNK_ALL
        return CHUNK_EVAL

    return probe


def _null_probe(negated: bool) -> Probe:
    def probe(stats: ChunkStats) -> str:
        if negated:
            if stats.null_count == stats.length:
                return CHUNK_SKIP
            if stats.null_count == 0:
                return CHUNK_ALL
        else:
            if stats.null_count == 0:
                return CHUNK_SKIP
            if stats.null_count == stats.length:
                return CHUNK_ALL
        return CHUNK_EVAL

    return probe


def _conjunct_probe(conjunct: Expression) -> tuple[str, Probe] | None:
    """(column, probe) for one analyzable conjunct, or None."""
    item = _comparison_item(conjunct)
    if item is not None:
        name, op, value = item
        if op == "=":
            return (name, _equality_probe(value))
        if op == "!=":
            return (name, _inequality_probe(value))
        return (name, _range_probe(op, value))
    in_item = _in_list_item(conjunct, _ANY_COLUMN)
    if in_item is not None:
        return (in_item[0], _in_probe(in_item[1]))
    if (
        isinstance(conjunct, IsNull)
        and isinstance(conjunct.operand, Identifier)
        and len(conjunct.operand.path) == 1
    ):
        return (conjunct.operand.name, _null_probe(conjunct.negated))
    return None


class _AnyColumn:
    """A ``columns`` set that admits every name (stats has no schema yet)."""

    def __contains__(self, name: object) -> bool:
        return True


_ANY_COLUMN: set[str] = _AnyColumn()  # type: ignore[assignment]


#: Sentinel returned by :meth:`SelectAnalysis.decide` for skipped chunks.
SKIP_CHUNK = object()


class SelectAnalysis:
    """A Select predicate decomposed into zone-map-probeable conjuncts.

    Built once per (vectorized or parallel) Select execution; ``decide``
    classifies each scanned chunk.  Conjuncts the analysis cannot probe
    (non-literal, dotted paths, NOT IN, …) are always kept for evaluation.
    """

    __slots__ = ("conjuncts", "probes", "analyzable")

    def __init__(self, predicate: Expression):
        self.conjuncts: list[Expression] = list(_conjuncts(predicate))
        self.probes: list[tuple[str, Probe] | None] = [
            _conjunct_probe(conjunct) for conjunct in self.conjuncts
        ]
        self.analyzable = any(probe is not None for probe in self.probes)

    def decide(self, table: "Table", partition: int | None, chunk: int):
        """Classify one chunk: :data:`SKIP_CHUNK`, or (kept conjunct index
        tuple, dropped-conjunct count).  Unknown columns and out-of-range
        chunk indices degrade to *evaluate* (never unsound).
        """
        kept: list[int] = []
        dropped = 0
        for index, probe in enumerate(self.probes):
            if probe is None:
                kept.append(index)
                continue
            column, classify = probe
            zone = column_zone_map(table, column, partition)
            if zone is None or chunk >= len(zone):
                kept.append(index)
                continue
            verdict = classify(zone[chunk])
            if verdict is CHUNK_SKIP:
                return SKIP_CHUNK
            if verdict is CHUNK_ALL:
                dropped += 1
            else:
                kept.append(index)
        return (tuple(kept), dropped)


# -- dictionary encoding ------------------------------------------------------

#: Columns shorter than this never encode — the translation caches cost
#: more than they save on tiny extents.
DICT_MIN_ROWS = 256

#: Absolute cap on dictionary size; below it the cap scales with the
#: extent so "low cardinality" stays a constant fraction of the rows.
DICT_MAX_CARDINALITY = 4096


def _cardinality_cap(length: int) -> int:
    return min(DICT_MAX_CARDINALITY, max(16, length // 16))


class Dictionary:
    """A built string dictionary: dense codes 0..k-1 in first-seen order.

    ``codes`` covers the *full* extent the dictionary was built over
    (None for NULL), so batches gather code slices exactly like value
    slices.  ``values[code]`` decodes; ``code_of[value]`` translates
    literals into code space.
    """

    __slots__ = ("values", "codes", "code_of")

    def __init__(
        self,
        values: list[str],
        codes: list[int | None],
        code_of: dict[str, int],
    ):
        self.values = values
        self.codes = codes
        self.code_of = code_of

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dictionary(k={len(self.values)}, n={len(self.codes)})"


#: Encoding refusal reasons (recorded so traces/CLI can explain).
REFUSED_TOO_FEW_ROWS = "too_few_rows"
REFUSED_MIXED_TYPE = "mixed_type"
REFUSED_HIGH_CARDINALITY = "high_cardinality"


def _build_dictionary(values: Sequence[object]) -> Dictionary | str:
    """Build a dictionary over one column extent, or a refusal reason.

    A single pass that bails early: the first non-str non-null value
    refuses (mixed-type columns keep evaluator semantics by staying raw),
    as does crossing the cardinality cap.
    """
    length = len(values)
    if length < DICT_MIN_ROWS:
        return REFUSED_TOO_FEW_ROWS
    cap = _cardinality_cap(length)
    code_of: dict[str, int] = {}
    codes: list[int | None] = []
    append = codes.append
    get = code_of.get
    for value in values:
        if value is None:
            append(None)
            continue
        if type(value) is not str:
            return REFUSED_MIXED_TYPE
        code = get(value)
        if code is None:
            code = len(code_of)
            if code >= cap:
                return REFUSED_HIGH_CARDINALITY
            code_of[value] = code
        append(code)
    return Dictionary(list(code_of), codes, code_of)


def encoded_columns(
    table: "Table", partition: int | None = None
) -> dict[str, Dictionary]:
    """Column → built dictionary for one extent, cached per data version.

    Only declared-TEXT columns are attempted (other types cannot hold the
    low-cardinality label/code shape, and attempting them would just burn
    a pass to refuse).  Refusals are cached too — see
    :func:`encoding_states`.
    """
    return {
        name: state
        for name, state in encoding_states(table, partition).items()
        if isinstance(state, Dictionary)
    }


def encoding_states(
    table: "Table", partition: int | None = None
) -> dict[str, "Dictionary | str"]:
    """Column → Dictionary or refusal reason, for every TEXT column."""

    def build() -> dict[str, Dictionary | str]:
        if partition is None:
            columns = table.column_snapshot()
        else:
            columns = table.partition_columns(partition)
        states: dict[str, Dictionary | str] = {}
        for column in table.schema.columns:
            if column.dtype.name != "TEXT":
                continue
            states[column.name] = _build_dictionary(columns[column.name])
        return states

    return table.derived(("dict", partition), build)


# -- inspection (CLI ``trace query --stats``) ---------------------------------

def table_statistics_report(table: "Table") -> dict[str, object]:
    """Zone-map, dictionary, and NDV state for one table, building on demand."""
    # Function-level import: cost.py imports this module for its probe
    # machinery, so the enrichment direction must stay lazy.
    from repro.relational.cost import column_ndv

    columns: list[dict[str, object]] = []
    states = encoding_states(table)
    for column in table.schema.columns:
        zone = column_zone_map(table, column.name) or []
        nulls = sum(stats.null_count for stats in zone)
        bands = sorted({stats.band for stats in zone if stats.band is not None})
        entry: dict[str, object] = {
            "column": column.name,
            "dtype": column.dtype.name,
            "chunks": len(zone),
            "nulls": nulls,
            "bands": bands,
            "constant_chunks": sum(1 for stats in zone if stats.constant),
        }
        banded = [stats for stats in zone if stats.band is not None]
        if banded and len(bands) == 1:
            # min/max only make sense within one band; mixed-band values
            # (e.g. after a stray write) are not mutually comparable.
            entry["min"] = min(stats.lo for stats in banded)  # type: ignore[type-var]
            entry["max"] = max(stats.hi for stats in banded)  # type: ignore[type-var]
        ndv = column_ndv(table, column.name)
        if ndv is not None:
            entry["ndv"] = round(ndv[0], 1)
            entry["ndv_source"] = ndv[1]
        state = states.get(column.name)
        if isinstance(state, Dictionary):
            entry["dictionary"] = {
                "state": "built",
                "cardinality": state.cardinality,
            }
        elif state is not None:
            entry["dictionary"] = {"state": "refused", "reason": state}
        columns.append(entry)
    return {
        "table": table.name,
        "rows": len(table),
        "version": table.version,
        "columns": columns,
    }
