"""Row storage with schema enforcement, primary keys, and indexes."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import IntegrityError, SchemaError
from repro.relational.index import HashIndex
from repro.relational.schema import PartitionScheme, TableSchema

Row = dict[str, object]

#: Callbacks fired whenever a table's extent or counters are *restored*
#: (snapshot load, WAL replay) rather than mutated through the normal
#: paths.  Restore can rewind or arbitrarily set the data version, so any
#: cache keyed on (table identity, version) outside the table itself —
#: the cost module's stale-tolerant planning estimates — must drop its
#: entries; modules register a ``callback(table)`` here to be told.
_RESTORE_LISTENERS: list[Callable[["Table"], None]] = []


def register_restore_listener(callback: Callable[["Table"], None]) -> None:
    """Register a callback invoked with a table after any restore."""
    _RESTORE_LISTENERS.append(callback)


class Table:
    """One relation: a schema plus its extent.

    Inserts coerce values through column types, reject unknown columns,
    fill missing columns with ``None``, and enforce NOT NULL and primary-key
    uniqueness.  Rows handed out by :meth:`rows` are copies; the extent can
    only change through the table's own methods, which keep indexes fresh.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: list[Row] = []
        self._indexes: dict[tuple[str, ...], HashIndex] = {}
        self._pk_index: HashIndex | None = None
        self._version = 0
        self._index_epoch = 0
        self._partition_epoch = 0
        self._row_snapshot: tuple[int, list[Row]] | None = None
        self._column_snapshot: tuple[int, dict[str, list[object]]] | None = None
        # Ascending row positions per partition; [] placeholder lists until
        # first build.  None for unpartitioned tables.
        self._partition_positions: list[list[int]] | None = None
        # pid → (version, column → value list), filled lazily per partition.
        self._partition_columns_cache: dict[int, tuple[int, dict[str, list[object]]]] = {}
        # key → (version, value): arbitrary derived artifacts (zone maps,
        # dictionaries) cached per data version; see :meth:`derived`.
        self._derived: dict[object, tuple[int, object]] = {}
        # Mutation listener: the durability layer's redo-log hook.  Called
        # once per successful mutating call with (op, payload) *after* the
        # mutation is applied; None (the default) costs one check per call.
        self._listener: Callable[[str, dict[str, object]], None] | None = None
        if schema.primary_key:
            self._pk_index = HashIndex(schema.primary_key)
        if schema.partitioning is not None:
            self._partition_positions = [
                [] for _ in range(schema.partitioning.partition_count)
            ]

    # -- change notification --------------------------------------------------

    def set_mutation_listener(
        self, listener: Callable[[str, dict[str, object]], None] | None
    ) -> None:
        """Install (or clear) the single mutation listener.

        The durability layer uses this to mirror every successful mutation
        into its write-ahead log; payloads are position/value based so a
        replay reproduces the extent, the insertion order, and the data
        version exactly without re-running predicates.
        """
        self._listener = listener

    def _notify(self, op: str, payload: dict[str, object]) -> None:
        listener = self._listener
        if listener is not None:
            listener(op, payload)

    # -- reading -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def version(self) -> int:
        """Monotone data version: bumps on every mutating call.

        Snapshots persist it and incremental materialization keys refresh
        decisions on it, so two extents with equal rows but different
        histories stay distinguishable.
        """
        return self._version

    @property
    def index_epoch(self) -> int:
        """Monotone index-structure version: bumps when an index is actually
        created or dropped.  ``create_index`` returning an existing index does
        NOT bump it — ``prepare_stream_plan`` re-requests indexes on every
        call, and those no-ops must not churn the plan cache."""
        return self._index_epoch

    def rows(self) -> list[Row]:
        """A defensive copy of the extent, in insertion order."""
        return [dict(row) for row in self._rows]

    def snapshot_rows(self) -> list[Row]:
        """The extent as row dicts, cached per data version and SHARED.

        Unlike :meth:`rows`, repeated calls at the same version return the
        same list of the same dicts.  The vectorized executor hands these out
        as query results, so — like ``iter_rows`` — callers must treat both
        the list and the dicts as read-only.  Any mutation bumps ``version``
        and the next call rebuilds a fresh snapshot.
        """
        cached = self._row_snapshot
        if cached is not None and cached[0] == self._version:
            return cached[1]
        rows = [dict(row) for row in self._rows]
        self._row_snapshot = (self._version, rows)
        return rows

    def column_snapshot(self) -> dict[str, list[object]]:
        """The extent as column → value list, cached per data version.

        Columnar source for the vectorized ``Scan`` kernel.  Shared and
        read-only under the same contract as :meth:`snapshot_rows`.
        """
        cached = self._column_snapshot
        if cached is not None and cached[0] == self._version:
            return cached[1]
        rows = self._rows
        columns = {
            name: [row[name] for row in rows] for name in self.schema.column_names
        }
        self._column_snapshot = (self._version, columns)
        return columns

    def derived(self, key: object, build: Callable[[], object]) -> object:
        """A derived artifact cached per data version (zone maps, encodings).

        ``build()`` runs when the cache misses or the entry was computed at
        an older version; the result is shared and read-only under the same
        contract as :meth:`column_snapshot`.  Mutations invalidate simply by
        bumping ``version`` — no explicit eviction, so derivers need no new
        invalidation channel beyond what the plan cache already uses.
        Partition-scoped keys must be cleared on :meth:`repartition` (which
        does not bump the data version); ``repartition`` drops the whole
        cache for that.
        """
        cached = self._derived.get(key)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        value = build()
        self._derived[key] = (self._version, value)
        return value

    def iter_rows(self) -> Iterator[Row]:
        """Iterate the extent without copying.

        The streaming executor's ``Scan`` uses this; yielded dicts are the
        table's own storage, so callers must treat them as read-only.
        """
        return iter(self._rows)

    def rows_at(self, positions: Iterable[int]) -> Iterator[Row]:
        """Rows at index positions, uncopied (read-only, like iter_rows)."""
        rows = self._rows
        return (rows[position] for position in positions)

    # -- partitioning ---------------------------------------------------------

    @property
    def partitioning(self) -> PartitionScheme | None:
        """The active partition scheme, if any."""
        return self.schema.partitioning

    @property
    def partition_epoch(self) -> int:
        """Monotone partition-structure version: bumps on :meth:`repartition`.

        Folded into :attr:`Database.epoch` so cached plans that baked in a
        pruning decision are invalidated when the scheme changes.
        """
        return self._partition_epoch

    @property
    def partition_count(self) -> int:
        """Number of partitions (1 when unpartitioned)."""
        scheme = self.schema.partitioning
        return scheme.partition_count if scheme is not None else 1

    def repartition(self, partitioning: PartitionScheme | None) -> None:
        """Switch the partition scheme, redistributing every stored row.

        Rows keep their storage positions — only the partition membership
        lists are rebuilt — so scan order is unaffected.  Passing ``None``
        removes partitioning.
        """
        if partitioning is not None and not self.schema.has_column(partitioning.column):
            raise SchemaError(
                f"partition column {partitioning.column!r} not in table {self.name}"
            )
        self.schema = self.schema.repartitioned(partitioning)
        self._partition_epoch += 1
        self._partition_columns_cache.clear()
        # Partition-scoped derived artifacts (per-partition zone maps /
        # dictionaries) are keyed by pid but versioned by data version,
        # which repartition does NOT bump — drop them explicitly.
        self._derived.clear()
        if partitioning is None:
            self._partition_positions = None
        else:
            self._rebuild_partitions()
        self._notify("repartition", {"partitioning": partitioning})

    def partition_positions(self, partition: int) -> list[int]:
        """Ascending row positions stored in ``partition`` (read-only)."""
        positions = self._partition_positions
        if positions is None:
            raise SchemaError(f"table {self.name} is not partitioned")
        return positions[partition]

    def positions_for_partitions(self, partitions: Iterable[int]) -> list[int]:
        """Ascending merged row positions across ``partitions``.

        Insertion order is preserved because per-partition position lists are
        themselves ascending; merging sorted runs keeps the global order.
        """
        lists = self._partition_positions
        if lists is None:
            raise SchemaError(f"table {self.name} is not partitioned")
        selected = [lists[pid] for pid in sorted(set(partitions))]
        selected = [run for run in selected if run]
        if not selected:
            return []
        if len(selected) == 1:
            return selected[0]
        merged: list[int] = []
        for run in selected:
            merged.extend(run)
        merged.sort()
        return merged

    def partition_columns(self, partition: int) -> dict[str, list[object]]:
        """One partition as column → value list, cached per data version.

        Columnar source for partition-pruned and morsel-parallel scans.
        Shared and read-only under the same contract as
        :meth:`column_snapshot`.
        """
        cached = self._partition_columns_cache.get(partition)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        rows = self._rows
        positions = self.partition_positions(partition)
        columns = {
            name: [rows[pos][name] for pos in positions]
            for name in self.schema.column_names
        }
        self._partition_columns_cache[partition] = (self._version, columns)
        return columns

    def partition_row_counts(self) -> list[int]:
        """Row count per partition (single entry when unpartitioned)."""
        if self._partition_positions is None:
            return [len(self._rows)]
        return [len(run) for run in self._partition_positions]

    def _rebuild_partitions(self) -> None:
        scheme = self.schema.partitioning
        if scheme is None:
            self._partition_positions = None
            return
        lists: list[list[int]] = [[] for _ in range(scheme.partition_count)]
        column = scheme.column
        partition_of = scheme.partition_of
        for position, row in enumerate(self._rows):
            lists[partition_of(row[column])].append(position)
        self._partition_positions = lists

    def secondary_index_columns(self) -> list[tuple[str, ...]]:
        """Column tuples of every secondary index, in creation order.

        Snapshots persist indexes as this metadata only — the hash buckets
        themselves rebuild on load, which is both smaller on disk and the
        only correct option for anything keyed on ``hash()`` (per-process
        string-hash randomization makes persisted buckets meaningless).
        """
        return list(self._indexes)

    def matching_index(self, columns: Iterable[str]) -> HashIndex | None:
        """The widest index whose columns all appear in ``columns``."""
        available = set(columns)
        best: HashIndex | None = None
        if self._pk_index is not None and set(self._pk_index.columns) <= available:
            best = self._pk_index
        for index in self._indexes.values():
            if set(index.columns) <= available:
                if best is None or len(index.columns) > len(best.columns):
                    best = index
        return best

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    def find(self, predicate: Callable[[Row], bool]) -> list[Row]:
        """Rows satisfying a Python predicate (copies)."""
        return [dict(row) for row in self._rows if predicate(row)]

    def lookup(self, columns: tuple[str, ...], key: tuple[object, ...]) -> list[Row]:
        """Equality lookup, via an index when one exists on ``columns``."""
        index = self._indexes.get(columns)
        if index is None and self._pk_index is not None and columns == self.schema.primary_key:
            index = self._pk_index
        if index is not None:
            return [dict(self._rows[pos]) for pos in index.lookup(key)]
        return self.find(
            lambda row: tuple(row.get(column) for column in columns) == key
        )

    # -- writing -------------------------------------------------------------

    def insert(self, values: Mapping[str, object]) -> Row:
        """Validate, coerce, store, and return the new row (as a copy)."""
        row = self._validate(values)
        if self._pk_index is not None:
            key = self._pk_index.key_of(row)
            if any(k is None for k in key):
                raise IntegrityError(
                    f"{self.name}: primary key columns {self.schema.primary_key} must not be NULL"
                )
            if self._pk_index.lookup(key):
                raise IntegrityError(f"{self.name}: duplicate primary key {key}")
        position = len(self._rows)
        self._rows.append(row)
        self._version += 1
        if self._pk_index is not None:
            self._pk_index.add(row, position)
        for index in self._indexes.values():
            index.add(row, position)
        scheme = self.schema.partitioning
        if scheme is not None and self._partition_positions is not None:
            self._partition_positions[scheme.partition_of(row[scheme.column])].append(
                position
            )
        self._notify("insert", {"row": row})
        return dict(row)

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> int:
        """Insert several rows; returns the count inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def update(
        self,
        predicate: Callable[[Row], bool],
        changes: Mapping[str, object],
    ) -> int:
        """Apply ``changes`` to rows matching ``predicate``; returns count."""
        for column in changes:
            if not self.schema.has_column(column):
                raise SchemaError(f"table {self.name} has no column {column!r}")
        updated = 0
        positions: list[int] = []
        for position, row in enumerate(self._rows):
            if predicate(row):
                for column, value in changes.items():
                    row[column] = self.schema.column(column).dtype.coerce(value)
                positions.append(position)
                updated += 1
        if updated:
            self._version += 1
            self._rebuild_indexes()
            self._rebuild_partitions()
            self._notify(
                "update", {"positions": positions, "changes": dict(changes)}
            )
        return updated

    def apply_update_at(
        self, positions: Iterable[int], changes: Mapping[str, object]
    ) -> int:
        """Apply ``changes`` to the rows at ``positions`` (the redo path).

        Position-based replay of an :meth:`update`: identical coercion,
        identical single version bump, identical index/partition rebuild —
        so replaying a logged update reproduces the original bit for bit
        without re-evaluating its (unserializable) predicate.
        """
        for column in changes:
            if not self.schema.has_column(column):
                raise SchemaError(f"table {self.name} has no column {column!r}")
        applied = 0
        rows = self._rows
        position_list = list(positions)
        for position in position_list:
            row = rows[position]
            for column, value in changes.items():
                row[column] = self.schema.column(column).dtype.coerce(value)
            applied += 1
        if applied:
            self._version += 1
            self._rebuild_indexes()
            self._rebuild_partitions()
            self._notify(
                "update", {"positions": position_list, "changes": dict(changes)}
            )
        return applied

    def delete(self, predicate: Callable[[Row], bool]) -> int:
        """Remove rows matching ``predicate``; returns count removed."""
        keep: list[Row] = []
        removed_positions: list[int] = []
        for position, row in enumerate(self._rows):
            if predicate(row):
                removed_positions.append(position)
            else:
                keep.append(row)
        removed = len(removed_positions)
        if removed:
            self._rows = keep
            self._version += 1
            self._rebuild_indexes()
            self._rebuild_partitions()
            self._notify("delete", {"positions": removed_positions})
        return removed

    def delete_at(self, positions: Iterable[int]) -> int:
        """Remove the rows at ``positions`` (the redo path of a delete)."""
        doomed = set(positions)
        if not doomed:
            return 0
        position_list = sorted(doomed)
        self._rows = [
            row for position, row in enumerate(self._rows) if position not in doomed
        ]
        self._version += 1
        self._rebuild_indexes()
        self._rebuild_partitions()
        self._notify("delete", {"positions": position_list})
        return len(position_list)

    def create_index(self, columns: tuple[str, ...] | list[str]) -> HashIndex:
        """Add (or return an existing) equality index on ``columns``."""
        key = tuple(columns)
        for column in key:
            if not self.schema.has_column(column):
                raise SchemaError(f"table {self.name} has no column {column!r}")
        if key in self._indexes:
            return self._indexes[key]
        index = HashIndex(key)
        index.rebuild(self._rows)
        self._indexes[key] = index
        self._index_epoch += 1
        self._notify("create_index", {"columns": list(key)})
        return index

    def drop_index(self, columns: tuple[str, ...] | list[str]) -> bool:
        """Remove the equality index on ``columns``; True if one existed.

        The primary-key index is structural and cannot be dropped.
        """
        key = tuple(columns)
        if key not in self._indexes:
            return False
        del self._indexes[key]
        self._index_epoch += 1
        self._notify("drop_index", {"columns": list(key)})
        return True

    # -- restore (snapshot load / WAL replay only) ----------------------------

    def restore_version(self, version: int) -> None:
        """Set the data version (snapshot restore only); never rewinds."""
        if version > self._version:
            self._version = version

    def restore_extent(
        self,
        rows: list[Row],
        columns: dict[str, list[object]] | None = None,
    ) -> None:
        """Replace the whole extent with pre-validated ``rows`` (restore only).

        Rows are adopted as storage (no copies, no re-validation — they came
        from this table's own snapshot), indexes and partition lists are
        rebuilt, and every version-keyed cache is dropped.  ``columns``, when
        given, must be the same data column-major; it pre-seeds the columnar
        snapshot cache so a recovered table is scan-ready without a first
        materialization pass.  Counters are NOT touched — pair with
        :meth:`restore_counters`.
        """
        self._rows = rows
        self._rebuild_indexes()
        self._rebuild_partitions()
        self._drop_version_keyed_caches()
        if columns is not None:
            self._column_snapshot = (self._version, columns)
        for callback in _RESTORE_LISTENERS:
            callback(self)

    def restore_counters(
        self,
        version: int,
        index_epoch: int | None = None,
        partition_epoch: int | None = None,
    ) -> None:
        """Set the monotone counters to exact recovered values (restore only).

        Unlike :meth:`restore_version` this CAN rewind — recovery needs the
        recovered table's counters bit-identical to the crashed process's,
        not merely fresh.  Because an arbitrary version assignment breaks the
        "version equality implies content equality" contract every
        version-keyed cache relies on, all of them are dropped here:
        ``derived`` artifacts (zone maps, dictionaries), row/column
        snapshots, partition column caches, and — via the registered restore
        listeners — the cost module's stale-tolerant planning estimates.
        """
        self._version = version
        if index_epoch is not None:
            self._index_epoch = index_epoch
        if partition_epoch is not None:
            self._partition_epoch = partition_epoch
        self._drop_version_keyed_caches()
        for callback in _RESTORE_LISTENERS:
            callback(self)

    def _drop_version_keyed_caches(self) -> None:
        self._row_snapshot = None
        self._column_snapshot = None
        self._partition_columns_cache.clear()
        self._derived.clear()

    # -- internals -------------------------------------------------------------

    def _validate(self, values: Mapping[str, object]) -> Row:
        unknown = set(values) - set(self.schema.column_names)
        if unknown:
            raise SchemaError(
                f"table {self.name} has no column(s) {sorted(unknown)}"
            )
        row: Row = {}
        for column in self.schema.columns:
            value = column.dtype.coerce(values.get(column.name))
            if value is None and not column.nullable:
                raise IntegrityError(
                    f"{self.name}.{column.name} is NOT NULL but got NULL"
                )
            row[column.name] = value
        return row

    def _rebuild_indexes(self) -> None:
        if self._pk_index is not None:
            self._pk_index.rebuild(self._rows)
        for index in self._indexes.values():
            index.rebuild(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.schema.name}, {len(self)} rows)"
