"""Column data types and value coercion."""

from __future__ import annotations

import enum
from datetime import date, datetime

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """The type system of the in-memory engine.

    Deliberately small: the contributor databases the paper describes are
    form-entry backends, and five scalar types cover every control's
    storage (dates are kept as ISO-formatted ``datetime.date``).
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"

    def coerce(self, value: object) -> object:
        """Coerce ``value`` to this type, or raise :class:`TypeMismatchError`.

        ``None`` passes through unchanged (nullability is the column's
        concern, not the type's).
        """
        if value is None:
            return None
        try:
            return _COERCERS[self](value)
        except (ValueError, TypeError) as exc:
            raise TypeMismatchError(
                f"cannot coerce {value!r} to {self.value}: {exc}"
            ) from exc

    def accepts(self, value: object) -> bool:
        """True when ``value`` coerces cleanly to this type."""
        try:
            self.coerce(value)
            return True
        except TypeMismatchError:
            return False


def _coerce_integer(value: object) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise ValueError(f"{value} has a fractional part")
    if isinstance(value, str):
        return int(value.strip())
    raise TypeError(f"unsupported source type {type(value).__name__}")


def _coerce_float(value: object) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return float(value.strip())
    raise TypeError(f"unsupported source type {type(value).__name__}")


def _coerce_text(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, date):
        return value.isoformat()
    raise TypeError(f"unsupported source type {type(value).__name__}")


_TRUE_TEXT = frozenset({"true", "t", "yes", "y", "1"})
_FALSE_TEXT = frozenset({"false", "f", "no", "n", "0"})


def _coerce_boolean(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        text = value.strip().lower()
        if text in _TRUE_TEXT:
            return True
        if text in _FALSE_TEXT:
            return False
        raise ValueError(f"not a boolean literal: {value!r}")
    raise TypeError(f"unsupported source type {type(value).__name__}")


def _coerce_date(value: object) -> date:
    if isinstance(value, datetime):
        return value.date()
    if isinstance(value, date):
        return value
    if isinstance(value, str):
        return date.fromisoformat(value.strip())
    raise TypeError(f"unsupported source type {type(value).__name__}")


_COERCERS = {
    DataType.INTEGER: _coerce_integer,
    DataType.FLOAT: _coerce_float,
    DataType.TEXT: _coerce_text,
    DataType.BOOLEAN: _coerce_boolean,
    DataType.DATE: _coerce_date,
}
